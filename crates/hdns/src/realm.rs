//! A deployment of HDNS replicas with a synchronous client surface.
//!
//! The realm owns the [`groupcast::Cluster`] and the replicas, and runs the
//! drive loop that pumps messages, processes replica events, and — in
//! bimodal stacks — runs gossip/stability rounds until writes resolve.
//! Fault injection (crash, restart, partition, heal) mirrors the paper's
//! recovery scenarios.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rndi_obs::metrics::names;
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

use groupcast::{Addr, Cluster, StackConfig};

use crate::node::{HdnsEvent, HdnsNode, OpOutcome, Ticket};
use crate::store::{HdnsEntry, HdnsError, Op};

/// Client-visible failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RealmError {
    Store(HdnsError),
    /// The contacted node is down or the write never resolved.
    NodeUnavailable,
}

impl From<HdnsError> for RealmError {
    fn from(e: HdnsError) -> Self {
        RealmError::Store(e)
    }
}

impl std::fmt::Display for RealmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealmError::Store(e) => write!(f, "{e}"),
            RealmError::NodeUnavailable => f.write_str("hdns node unavailable"),
        }
    }
}

impl std::error::Error for RealmError {}

/// A running HDNS deployment.
///
/// ```
/// use groupcast::StackConfig;
/// use hdns::{HdnsEntry, HdnsRealm};
///
/// let realm = HdnsRealm::new("docs", 2, StackConfig::default(), None, 1);
/// realm.bind(0, "svc", HdnsEntry::leaf(b"hello".to_vec())).unwrap();
/// // Reads are replica-local: the other node already has it.
/// assert_eq!(realm.lookup(1, "svc").unwrap().value, b"hello");
/// ```
#[derive(Clone)]
pub struct HdnsRealm {
    cluster: Cluster,
    group: String,
    config: StackConfig,
    nodes: Arc<Mutex<Vec<Arc<Mutex<HdnsNode>>>>>,
    data_dir: Option<PathBuf>,
}

impl HdnsRealm {
    /// Deploy `replicas` nodes into group `group`. With a `data_dir`, each
    /// replica persists snapshots to `<data_dir>/replica-<i>.json`.
    pub fn new(
        group: &str,
        replicas: usize,
        config: StackConfig,
        data_dir: Option<PathBuf>,
        seed: u64,
    ) -> HdnsRealm {
        assert!(replicas >= 1, "a realm needs at least one replica");
        let cluster = Cluster::new(seed);
        let realm = HdnsRealm {
            cluster,
            group: group.to_string(),
            config,
            nodes: Arc::new(Mutex::new(Vec::new())),
            data_dir,
        };
        for i in 0..replicas {
            realm.spawn_replica(i);
        }
        realm.drive();
        realm
    }

    fn snapshot_path(&self, idx: usize) -> Option<PathBuf> {
        self.data_dir
            .as_ref()
            .map(|d| d.join(format!("replica-{idx}.json")))
    }

    fn spawn_replica(&self, idx: usize) {
        let channel = self.cluster.create_channel(self.config.clone());
        let node = HdnsNode::new(channel, self.snapshot_path(idx));
        let _ = node.connect(&self.group);
        let mut nodes = self.nodes.lock();
        if idx < nodes.len() {
            nodes[idx] = Arc::new(Mutex::new(node));
        } else {
            nodes.push(Arc::new(Mutex::new(node)));
        }
    }

    /// Number of replicas (including dead ones).
    pub fn replica_count(&self) -> usize {
        self.nodes.lock().len()
    }

    /// The group address of replica `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.nodes.lock()[i].lock().addr()
    }

    /// Whether replica `i` is alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.nodes.lock()[i].lock().is_alive()
    }

    /// The underlying cluster (for advanced fault scripting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Pump messages and process replica events until quiescent, running
    /// gossip/stability rounds so bimodal stacks repair losses.
    pub fn drive(&self) {
        let nodes: Vec<Arc<Mutex<HdnsNode>>> = self.nodes.lock().clone();
        for round in 0..12 {
            self.cluster.pump_all();
            for n in &nodes {
                n.lock().process();
            }
            if self.cluster.in_flight() == 0 {
                // Anti-entropy: repair bimodal losses, then check whether
                // the repair generated new traffic.
                self.cluster.gossip_round();
                self.cluster.pump_all();
                for n in &nodes {
                    n.lock().process();
                }
                if self.cluster.in_flight() == 0 && round > 0 {
                    break;
                }
            }
        }
        self.cluster.stable_round();
    }

    /// Detach an inbound trace frame (if any) from a bind payload: the
    /// client's context comes back so the server-side span links into its
    /// trace, and the stored bytes end up identical to what an untraced
    /// client would have written.
    fn strip_trace(op: Op) -> (Op, Option<TraceCtx>) {
        match op {
            Op::Bind {
                path,
                mut entry,
                overwrite,
            } => {
                let (ctx, payload) = rndi_obs::frame::strip(&entry.value);
                if ctx.is_some() {
                    entry.value = payload.to_vec();
                }
                (
                    Op::Bind {
                        path,
                        entry,
                        overwrite,
                    },
                    ctx,
                )
            }
            other => (other, None),
        }
    }

    fn op_label(op: &Op) -> &'static str {
        match op {
            Op::Bind {
                overwrite: false, ..
            } => "bind",
            Op::Bind {
                overwrite: true, ..
            } => "rebind",
            Op::Unbind { .. } => "unbind",
            Op::Rename { .. } => "rename",
            Op::CreateContext { .. } => "create_subcontext",
            Op::SetAttrs { .. } => "modify_attributes",
        }
    }

    fn write(&self, node: usize, op: Op) -> Result<(), RealmError> {
        let (op, trace) = Self::strip_trace(op);
        let label = Self::op_label(&op);
        let start = Instant::now();
        let result = self.write_inner(node, op);
        let server = format!("hdns:{}", self.group);
        rndi_obs::metrics::counter(names::SERVER_OPS, &[("server", &server), ("op", label)]).inc();
        rndi_obs::metrics::histogram(
            names::SERVER_DURATION,
            &[("server", &server), ("op", label)],
        )
        .record_duration(start.elapsed());
        // A span is emitted only when the client shipped a trace frame —
        // it becomes a child of the client-side span that wrapped it.
        if let Some(client_ctx) = trace {
            rndi_obs::trace::record(SpanRecord::new(
                &client_ctx.child(),
                "server",
                server.as_str(),
                label,
                if result.is_ok() {
                    SpanOutcome::Ok
                } else {
                    SpanOutcome::Err
                },
                start.elapsed(),
            ));
        }
        result
    }

    fn write_inner(&self, node: usize, op: Op) -> Result<(), RealmError> {
        let handle = self.nodes.lock()[node].clone();
        let ticket: Ticket = handle
            .lock()
            .submit(op)
            .map_err(|_| RealmError::NodeUnavailable)?;
        self.drive();
        // Give gossip a few more chances before declaring the write lost.
        for _ in 0..4 {
            match handle.lock().outcome(ticket) {
                OpOutcome::Done(r) => return r.map_err(RealmError::from),
                OpOutcome::Lost => return Err(RealmError::NodeUnavailable),
                OpOutcome::Pending => self.drive(),
            }
        }
        let outcome = handle.lock().outcome(ticket);
        match outcome {
            OpOutcome::Done(r) => r.map_err(RealmError::from),
            _ => Err(RealmError::NodeUnavailable),
        }
    }

    /// Atomic bind via replica `node`.
    pub fn bind(&self, node: usize, path: &str, entry: HdnsEntry) -> Result<(), RealmError> {
        self.write(
            node,
            Op::Bind {
                path: path.to_string(),
                entry,
                overwrite: false,
            },
        )
    }

    /// Rebind (overwrite) via replica `node`.
    pub fn rebind(&self, node: usize, path: &str, entry: HdnsEntry) -> Result<(), RealmError> {
        self.write(
            node,
            Op::Bind {
                path: path.to_string(),
                entry,
                overwrite: true,
            },
        )
    }

    pub fn unbind(&self, node: usize, path: &str) -> Result<(), RealmError> {
        self.write(
            node,
            Op::Unbind {
                path: path.to_string(),
            },
        )
    }

    pub fn rename(&self, node: usize, from: &str, to: &str) -> Result<(), RealmError> {
        self.write(
            node,
            Op::Rename {
                from: from.to_string(),
                to: to.to_string(),
            },
        )
    }

    pub fn create_context(&self, node: usize, path: &str) -> Result<(), RealmError> {
        self.write(
            node,
            Op::CreateContext {
                path: path.to_string(),
            },
        )
    }

    pub fn set_attrs(
        &self,
        node: usize,
        path: &str,
        attrs: std::collections::BTreeMap<String, String>,
    ) -> Result<(), RealmError> {
        self.write(
            node,
            Op::SetAttrs {
                path: path.to_string(),
                attrs,
            },
        )
    }

    /// Replica-local read on `node`.
    pub fn lookup(&self, node: usize, path: &str) -> Option<HdnsEntry> {
        self.nodes.lock()[node].lock().lookup(path)
    }

    /// Replica-local listing on `node`.
    pub fn list(&self, node: usize, prefix: &str) -> Vec<(String, HdnsEntry)> {
        self.nodes.lock()[node].lock().list(prefix)
    }

    /// Drain replica `node`'s change events.
    pub fn take_events(&self, node: usize) -> Vec<HdnsEvent> {
        self.nodes.lock()[node].lock().take_events()
    }

    /// Serialized store of replica `node` (convergence checks / backups).
    pub fn store_snapshot(&self, node: usize) -> Vec<u8> {
        self.nodes.lock()[node].lock().store_snapshot()
    }

    /// Deploy an additional replica into the running group (§6: "Additional
    /// nodes can be deployed dynamically at a later stage as well, while
    /// the system is already in operation"). The newcomer is brought
    /// current by state transfer; returns its replica index.
    pub fn add_replica(&self) -> usize {
        let idx = self.nodes.lock().len();
        self.spawn_replica(idx);
        self.cluster.detect_failures();
        self.drive();
        idx
    }

    /// Spawn a background thread that drives the realm every `period` —
    /// the deployment mode for applications that do not want to call
    /// [`HdnsRealm::drive`] themselves (writes still force an inline drive,
    /// so this mainly services gossip repair, state transfer, and event
    /// delivery for passive watchers). The driver stops when the returned
    /// handle is dropped.
    pub fn start_auto_drive(&self, period: std::time::Duration) -> AutoDrive {
        let realm = self.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                realm.drive();
                std::thread::sleep(period);
            }
        });
        AutoDrive {
            stop,
            thread: Some(thread),
        }
    }

    // ---------------------------------------------------------------
    // Fault injection
    // ---------------------------------------------------------------

    /// Hard-crash replica `i` (no snapshot flush — disk has whatever the
    /// last periodic snapshot wrote).
    pub fn crash(&self, i: usize) {
        let addr = self.addr(i);
        self.cluster.crash(addr);
        self.cluster.detect_failures();
        let nodes: Vec<Arc<Mutex<HdnsNode>>> = self.nodes.lock().clone();
        for n in &nodes {
            n.lock().process();
        }
        self.drive();
    }

    /// Restart a crashed replica: a fresh incarnation recovers its disk
    /// snapshot, rejoins, and is brought current by state transfer.
    pub fn restart(&self, i: usize) {
        self.spawn_replica(i);
        self.cluster.detect_failures();
        self.drive();
    }

    /// Gracefully stop replica `i` (persists to disk first).
    pub fn shutdown_replica(&self, i: usize) {
        let handle = self.nodes.lock()[i].clone();
        handle.lock().shutdown();
        self.cluster.detect_failures();
        self.drive();
    }

    /// Partition the realm: each listed side is a set of replica indices.
    pub fn partition(&self, sides: &[&[usize]]) {
        let addr_sides: Vec<Vec<Addr>> = sides
            .iter()
            .map(|side| side.iter().map(|i| self.addr(*i)).collect())
            .collect();
        let refs: Vec<&[Addr]> = addr_sides.iter().map(|v| v.as_slice()).collect();
        self.cluster.partition(&refs);
        self.cluster.detect_failures();
        self.drive();
    }

    /// Heal all partitions; PRIMARY_PARTITION reconciles state.
    pub fn heal(&self) {
        self.cluster.heal();
        self.cluster.detect_failures();
        self.drive();
    }
}

/// Handle for a background drive thread; dropping it stops the thread.
pub struct AutoDrive {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for AutoDrive {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupcast::OrderingMode;

    fn realm(n: usize) -> HdnsRealm {
        HdnsRealm::new("test", n, StackConfig::default(), None, 5)
    }

    #[test]
    fn reads_from_any_replica() {
        let r = realm(3);
        r.bind(0, "svc", HdnsEntry::leaf(vec![1])).unwrap();
        for i in 0..3 {
            assert_eq!(r.lookup(i, "svc").unwrap().value, vec![1], "replica {i}");
        }
    }

    #[test]
    fn atomic_bind_conflict_detected() {
        let r = realm(2);
        r.bind(0, "k", HdnsEntry::leaf(vec![1])).unwrap();
        assert_eq!(
            r.bind(1, "k", HdnsEntry::leaf(vec![2])),
            Err(RealmError::Store(HdnsError::AlreadyBound("k".into())))
        );
        r.rebind(1, "k", HdnsEntry::leaf(vec![2])).unwrap();
        assert_eq!(r.lookup(0, "k").unwrap().value, vec![2]);
    }

    #[test]
    fn crash_and_restart_recovers_via_state_transfer() {
        let r = realm(3);
        r.bind(0, "before", HdnsEntry::leaf(vec![1])).unwrap();
        r.crash(2);
        assert!(!r.is_alive(2));
        // Writes continue on the surviving majority.
        r.bind(0, "during", HdnsEntry::leaf(vec![2])).unwrap();
        r.restart(2);
        assert!(r.is_alive(2));
        assert_eq!(r.lookup(2, "before").unwrap().value, vec![1]);
        assert_eq!(r.lookup(2, "during").unwrap().value, vec![2]);
    }

    #[test]
    fn partition_then_primary_partition_resync() {
        let r = realm(3);
        r.bind(0, "base", HdnsEntry::leaf(vec![0])).unwrap();
        // Isolate replica 2; both sides keep serving.
        r.partition(&[&[0, 1], &[2]]);
        r.bind(0, "majority-write", HdnsEntry::leaf(vec![1]))
            .unwrap();
        // The minority side also accepts a (divergent) write.
        r.bind(2, "minority-write", HdnsEntry::leaf(vec![9]))
            .unwrap();
        assert!(r.lookup(0, "minority-write").is_none());

        r.heal();
        // PRIMARY_PARTITION: side {0,1} held the old coordinator → wins;
        // replica 2 resyncs and loses its divergent write.
        for i in 0..3 {
            assert!(
                r.lookup(i, "majority-write").is_some(),
                "replica {i} has the winning state"
            );
            assert!(
                r.lookup(i, "minority-write").is_none(),
                "replica {i} dropped the losing write"
            );
        }
        assert!(r.take_events(2).contains(&HdnsEvent::Resynced));
    }

    #[test]
    fn bimodal_stack_converges_despite_loss() {
        let r = HdnsRealm::new(
            "bimodal",
            3,
            StackConfig {
                ordering: OrderingMode::Bimodal {
                    loss: 0.3,
                    fanout: 2,
                },
                ..Default::default()
            },
            None,
            42,
        );
        for i in 0..10u8 {
            r.rebind(0, &format!("k{i}"), HdnsEntry::leaf(vec![i]))
                .unwrap();
        }
        for node in 0..3 {
            for i in 0..10u8 {
                assert_eq!(
                    r.lookup(node, &format!("k{i}")).map(|e| e.value),
                    Some(vec![i]),
                    "node {node} key k{i}"
                );
            }
        }
    }

    #[test]
    fn graceful_shutdown_persists_and_cold_restart_recovers() {
        let dir = std::env::temp_dir().join(format!("hdns-realm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let r = HdnsRealm::new("p", 1, StackConfig::default(), Some(dir.clone()), 1);
            r.bind(0, "durable", HdnsEntry::leaf(vec![7])).unwrap();
            r.shutdown_replica(0);
        }
        // A brand-new realm over the same data dir: complete-shutdown
        // recovery from disk.
        let r2 = HdnsRealm::new("p", 1, StackConfig::default(), Some(dir.clone()), 2);
        assert_eq!(r2.lookup(0, "durable").unwrap().value, vec![7]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dynamic_replica_deployment() {
        let r = realm(2);
        r.bind(0, "pre-existing", HdnsEntry::leaf(vec![1])).unwrap();
        // Scale out while in operation.
        let idx = r.add_replica();
        assert_eq!(idx, 2);
        assert_eq!(r.replica_count(), 3);
        assert_eq!(
            r.lookup(idx, "pre-existing").unwrap().value,
            vec![1],
            "newcomer received state transfer"
        );
        // The newcomer is a full citizen: it can accept writes.
        r.bind(idx, "from-newcomer", HdnsEntry::leaf(vec![2]))
            .unwrap();
        assert_eq!(r.lookup(0, "from-newcomer").unwrap().value, vec![2]);
    }

    #[test]
    fn auto_drive_services_passive_watchers() {
        let r = realm(2);
        let driver = r.start_auto_drive(std::time::Duration::from_millis(5));
        // Submit a write but *don't* rely on the write path's inline drive
        // for event delivery at the other replica: just wait for the
        // background driver to ferry the events.
        r.bind(0, "watched", HdnsEntry::leaf(vec![1])).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let events = r.take_events(1);
            if events
                .iter()
                .any(|e| matches!(e, HdnsEvent::Bound { path } if path == "watched"))
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "auto-driver never delivered the event"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(driver); // stops and joins the thread
    }

    #[test]
    fn listing_and_contexts() {
        let r = realm(2);
        r.create_context(0, "dept").unwrap();
        r.bind(0, "dept/a", HdnsEntry::leaf(vec![1])).unwrap();
        r.bind(1, "dept/b", HdnsEntry::leaf(vec![2])).unwrap();
        let mut names: Vec<String> = r.list(1, "dept").into_iter().map(|(n, _)| n).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }
}
