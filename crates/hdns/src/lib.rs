//! # hdns — the Harness Distributed Naming Service
//!
//! A fault-tolerant, persistent, replicated naming service (paper §4):
//! "HDNS establishes a group of naming service nodes which maintain
//! consistent replicas of the registration data. Read requests can be
//! handled entirely by any of the nodes … Write requests, in turn, are
//! propagated to each member of the group."
//!
//! * [`store::HdnsStore`] — the hierarchical name→entry store each replica
//!   maintains, with deterministic [`store::Op`] application (so replicas
//!   that apply the same op sequence converge).
//! * [`node::HdnsNode`] — one replica: submits writes as group multicasts,
//!   serves reads locally, answers state-transfer requests, persists
//!   snapshots to disk ("each node maintains persistent view of the
//!   registration data on a local disk"), and re-synchronizes after losing
//!   a PRIMARY_PARTITION decision.
//! * [`realm::HdnsRealm`] — a deployment of replicas over a
//!   [`groupcast::Cluster`], with the synchronous drive loop clients use,
//!   plus crash/restart/partition fault injection.
//!
//! Unlike the Jini lookup service, HDNS was co-designed with the JNDI
//! mapping in mind: `bind` is natively atomic (first delivered bind wins,
//! duplicates are rejected deterministically at every replica), so the
//! JNDI provider needs no distributed locking.

pub mod node;
pub mod realm;
pub mod store;

pub use node::{HdnsEvent, HdnsNode, OpOutcome, ReplicaChannel, Ticket};
pub use realm::{AutoDrive, HdnsRealm};
pub use store::{HdnsEntry, HdnsError, HdnsStore, Op};
