//! Property tests: DIT structural invariants and filter totality.

use proptest::prelude::*;

use dirserv::{Dit, Dn, LdapEntry, LdapFilter, Rdn, Scope};

fn dn_strategy() -> impl Strategy<Value = Dn> {
    proptest::collection::vec(("[a-c]", "[a-d]{1,2}"), 1..4).prop_map(|rdns| {
        // Build root-first so parents are prefixes of children.
        let mut dn = Dn::root();
        for (a, v) in rdns.into_iter().rev() {
            dn = dn.child(Rdn::new(a, v));
        }
        dn
    })
}

#[derive(Clone, Debug)]
enum DitOp {
    Add(Dn),
    Delete(Dn),
    Rename(Dn, String),
}

fn op_strategy() -> impl Strategy<Value = DitOp> {
    prop_oneof![
        3 => dn_strategy().prop_map(DitOp::Add),
        2 => dn_strategy().prop_map(DitOp::Delete),
        1 => (dn_strategy(), "[a-d]{1,2}").prop_map(|(dn, v)| DitOp::Rename(dn, v)),
    ]
}

proptest! {
    /// After any op sequence: every entry's parent exists (except
    /// suffixes), and no delete ever left orphans behind.
    #[test]
    fn dit_structure_invariant(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut dit = Dit::new();
        for op in &ops {
            match op {
                DitOp::Add(dn) => {
                    let _ = dit.add(LdapEntry::new(dn.clone()).with("cn", "x"));
                }
                DitOp::Delete(dn) => {
                    let _ = dit.delete(dn);
                }
                DitOp::Rename(dn, v) => {
                    let _ = dit.modify_rdn(dn, Rdn::new("cn", v.clone()));
                }
            }
            for e in dit.iter() {
                if let Some(parent) = e.dn.parent() {
                    if !parent.is_root() {
                        assert!(
                            dit.contains(&parent),
                            "orphan {} after {:?}",
                            e.dn,
                            ops
                        );
                    }
                }
            }
        }
    }

    /// Subtree search from the root finds exactly the entries matching the
    /// filter — cross-checked against direct iteration.
    #[test]
    fn search_agrees_with_iteration(
        dns in proptest::collection::vec(dn_strategy(), 0..20),
        needle in "[a-d]{1,2}",
    ) {
        let mut dit = Dit::new();
        for dn in dns {
            let value = dn.rdn().map(|r| r.value.clone()).unwrap_or_default();
            let _ = dit.add(LdapEntry::new(dn).with("cn", value));
        }
        let filter = LdapFilter::parse(&format!("(cn={needle})")).unwrap();
        let hits = dit
            .search(&Dn::root(), Scope::Subtree, &filter, 0)
            .unwrap();
        let expected = dit.iter().filter(|e| filter.matches(e)).count();
        prop_assert_eq!(hits.len(), expected);
    }

    /// The filter parser is total (never panics) on arbitrary input.
    #[test]
    fn filter_parser_is_total(input in "[ -~]{0,60}") {
        let _ = LdapFilter::parse(&input);
    }

    /// Parsed-then-printed DNs normalize identically (case folding).
    #[test]
    fn dn_normalization_idempotent(dn in dn_strategy()) {
        let printed = dn.to_string();
        let reparsed = Dn::parse(&printed).unwrap();
        prop_assert_eq!(reparsed.normalized(), dn.normalized());
        prop_assert_eq!(Dn::parse(&reparsed.to_string()).unwrap().normalized(), dn.normalized());
    }

    /// Depth bookkeeping: is_child_of implies is_under and depth+1.
    #[test]
    fn child_relation_consistency(a in dn_strategy(), b in dn_strategy()) {
        if a.is_child_of(&b) {
            prop_assert!(a.is_under(&b));
            prop_assert_eq!(a.depth(), b.depth() + 1);
        }
        prop_assert!(a.is_under(&Dn::root()));
    }

    /// Oracle equivalence: the indexed/range-scan `search` agrees with the
    /// retained full-iteration `search_scan` for every scope, arbitrary
    /// bases (existing or not) and a spread of filters, after arbitrary
    /// add/delete/rename/update interleavings.
    #[test]
    fn indexed_search_matches_scan_oracle(
        ops in proptest::collection::vec(op_strategy(), 0..50),
        bases in proptest::collection::vec(dn_strategy(), 1..4),
        needle in "[a-d]{1,2}",
    ) {
        let mut dit = Dit::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                DitOp::Add(dn) => {
                    let value = dn.rdn().map(|r| r.value.clone()).unwrap_or_default();
                    let _ = dit.add(
                        LdapEntry::new(dn.clone())
                            .with("cn", value)
                            .with("seq", format!("{}", i % 5)),
                    );
                }
                DitOp::Delete(dn) => {
                    let _ = dit.delete(dn);
                }
                DitOp::Rename(dn, v) => {
                    let _ = dit.modify_rdn(dn, Rdn::new("cn", v.clone()));
                }
            }
        }
        // Exercise update (attribute rewrite) on an existing entry too.
        let first = dit.iter().next().map(|e| e.dn.clone());
        if let Some(dn) = first {
            let _ = dit.update(LdapEntry::new(dn).with("cn", needle.clone()));
        }

        let filters = [
            format!("(cn={needle})"),
            format!("(&(cn={needle})(seq=1))"),
            format!("(|(cn={needle})(seq=2))"),
            "(cn=*)".to_string(),
            format!("(!(cn={needle}))"),
        ];
        let mut all_bases = vec![Dn::root()];
        all_bases.extend(bases);
        for base in &all_bases {
            for scope in [Scope::Base, Scope::OneLevel, Scope::Subtree] {
                for (raw, limit) in filters.iter().flat_map(|f| [(f, 0usize), (f, 2)]) {
                    let filter = LdapFilter::parse(raw).unwrap();
                    let indexed = dit.search(base, scope, &filter, limit);
                    let scanned = dit.search_scan(base, scope, &filter, limit);
                    match (&indexed, &scanned) {
                        (Ok(a), Ok(b)) => {
                            let dns = |v: &[&LdapEntry]| {
                                let mut d: Vec<String> =
                                    v.iter().map(|e| e.dn.normalized()).collect();
                                d.sort();
                                d
                            };
                            if limit == 0 {
                                prop_assert_eq!(
                                    dns(a), dns(b),
                                    "scope {:?} base {} filter {}", scope, base, raw
                                );
                            } else {
                                // Capped searches may pick different subsets;
                                // the cap itself must bite identically.
                                prop_assert_eq!(a.len(), b.len());
                            }
                        }
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(
                            false,
                            "divergent error: {:?} vs {:?}", indexed, scanned
                        ),
                    }
                }
            }
        }
    }
}
