//! A miniature object-class schema.
//!
//! Real OpenLDAP validates entries against a schema; we keep a small,
//! practical subset: each object class declares required ("must") and
//! allowed ("may") attributes; an entry must carry at least one known
//! object class and every "must" of every class it declares. Validation is
//! optional per server configuration.

use std::collections::HashMap;

/// An object-class definition.
#[derive(Clone, Debug)]
pub struct ObjectClass {
    pub name: String,
    pub must: Vec<String>,
    pub may: Vec<String>,
}

/// A schema: object classes keyed case-insensitively.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    classes: HashMap<String, ObjectClass>,
    /// When false, attributes outside must/may are tolerated.
    pub strict_attrs: bool,
}

impl Schema {
    /// The built-in default schema covering the entry kinds used in the
    /// paper's scenarios (organizations, OUs, devices, services, people).
    pub fn standard() -> Schema {
        let mut s = Schema::default();
        for (name, must, may) in [
            ("top", vec!["objectClass"], vec![]),
            ("organization", vec!["o"], vec!["description", "l"]),
            ("organizationalUnit", vec!["ou"], vec!["description", "l"]),
            (
                "device",
                vec!["cn"],
                vec!["description", "owner", "serialNumber", "l"],
            ),
            (
                "applicationProcess",
                vec!["cn"],
                vec!["description", "l", "seeAlso"],
            ),
            (
                "person",
                vec!["cn", "sn"],
                vec!["description", "telephoneNumber", "userPassword"],
            ),
            (
                "gridResource",
                vec!["cn"],
                vec!["description", "cpuCount", "memoryMb", "os", "endpoint"],
            ),
            // Free-form container for the JNDI provider's generic tuples.
            (
                "rndiObject",
                vec!["cn"],
                vec!["rndiValue", "rndiClass", "description"],
            ),
        ] {
            s.add(ObjectClass {
                name: name.to_string(),
                must: must.into_iter().map(String::from).collect(),
                may: may.into_iter().map(String::from).collect(),
            });
        }
        s
    }

    pub fn add(&mut self, class: ObjectClass) {
        self.classes.insert(class.name.to_ascii_lowercase(), class);
    }

    pub fn get(&self, name: &str) -> Option<&ObjectClass> {
        self.classes.get(&name.to_ascii_lowercase())
    }

    /// Validate an entry; `Ok(())` or a human-readable violation.
    pub fn validate(&self, entry: &crate::entry::LdapEntry) -> Result<(), String> {
        let Some(classes_attr) = entry.get("objectClass") else {
            return Err("entry has no objectClass".into());
        };
        let mut allowed: Vec<String> = vec!["objectclass".into()];
        for class_name in &classes_attr.values {
            let Some(class) = self.get(class_name) else {
                return Err(format!("unknown objectClass {class_name:?}"));
            };
            for must in &class.must {
                if !entry.has(must) {
                    return Err(format!(
                        "missing required attribute {must:?} for objectClass {class_name:?}"
                    ));
                }
            }
            allowed.extend(class.must.iter().map(|a| a.to_ascii_lowercase()));
            allowed.extend(class.may.iter().map(|a| a.to_ascii_lowercase()));
        }
        if self.strict_attrs {
            for attr in entry.attrs() {
                if !allowed.contains(&attr.id.to_ascii_lowercase()) {
                    return Err(format!("attribute {:?} not allowed by schema", attr.id));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;
    use crate::entry::LdapEntry;

    fn device() -> LdapEntry {
        LdapEntry::new(Dn::parse("cn=printer,o=emory").unwrap())
            .with("objectClass", "device")
            .with("cn", "printer")
    }

    #[test]
    fn valid_entry_passes() {
        assert!(Schema::standard().validate(&device()).is_ok());
    }

    #[test]
    fn missing_must_fails() {
        let e = LdapEntry::new(Dn::root()).with("objectClass", "device");
        let err = Schema::standard().validate(&e).unwrap_err();
        assert!(err.contains("cn"));
    }

    #[test]
    fn unknown_class_fails() {
        let e = LdapEntry::new(Dn::root()).with("objectClass", "martian");
        assert!(Schema::standard().validate(&e).is_err());
    }

    #[test]
    fn no_object_class_fails() {
        let e = LdapEntry::new(Dn::root()).with("cn", "x");
        assert!(Schema::standard().validate(&e).is_err());
    }

    #[test]
    fn strict_attrs_rejects_extras() {
        let mut schema = Schema::standard();
        let e = device().with("color", "red");
        assert!(schema.validate(&e).is_ok(), "lenient by default");
        schema.strict_attrs = true;
        assert!(schema.validate(&e).is_err());
    }

    #[test]
    fn multiple_classes_union_allowed() {
        let mut schema = Schema::standard();
        schema.strict_attrs = true;
        let e = LdapEntry::new(Dn::root())
            .with("objectClass", "device")
            .with("objectClass", "gridResource")
            .with("cn", "node")
            .with("cpuCount", "8")
            .with("owner", "dcl");
        assert!(schema.validate(&e).is_ok());
    }
}
