//! The directory server: connections, authentication, result codes.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rndi_obs::metrics::names;
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

use crate::dit::{Dit, DitError, Scope};
use crate::dn::{Dn, Rdn};
use crate::entry::LdapEntry;
use crate::filter::LdapFilter;
use crate::schema::Schema;
use crate::throttle::{Admit, ReadThrottle};

/// LDAP result codes (the subset this server produces), with their
/// protocol numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultCode {
    Success = 0,
    OperationsError = 1,
    SizeLimitExceeded = 4,
    CompareFalse = 5,
    CompareTrue = 6,
    NoSuchObject = 32,
    InvalidDnSyntax = 34,
    InvalidCredentials = 49,
    InsufficientAccessRights = 50,
    UnwillingToPerform = 53,
    ObjectClassViolation = 65,
    NotAllowedOnNonLeaf = 66,
    EntryAlreadyExists = 68,
}

/// Operation outcome: `Ok(T)` or a result code with diagnostic text.
pub type LdapResult<T> = Result<T, (ResultCode, String)>;

fn dit_err(e: DitError) -> (ResultCode, String) {
    match e {
        DitError::NoSuchObject(d) => (ResultCode::NoSuchObject, d),
        DitError::AlreadyExists(d) => (ResultCode::EntryAlreadyExists, d),
        DitError::NotAllowedOnNonLeaf(d) => (ResultCode::NotAllowedOnNonLeaf, d),
        DitError::NoSuchParent(d) => (ResultCode::NoSuchObject, format!("parent {d}")),
    }
}

/// Attribute modifications (LDAP `modify`).
#[derive(Clone, Debug)]
pub enum Modification {
    Add(String, Vec<String>),
    Replace(String, Vec<String>),
    /// Empty value list deletes the whole attribute.
    Delete(String, Vec<String>),
}

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// The administrative identity allowed to write.
    pub root_dn: Dn,
    pub root_password: String,
    /// Validate entries against the schema on add/modify.
    pub validate_schema: bool,
    pub schema: Schema,
    /// Reads per second before the anti-DoS throttle kicks in;
    /// `None` disables throttling.
    pub read_throttle_per_sec: Option<u64>,
    /// Search results cap (0 = unlimited).
    pub size_limit: usize,
    /// When true, anonymous connections may not write.
    pub writes_require_auth: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            root_dn: Dn::parse("cn=admin").expect("static dn"),
            root_password: "secret".into(),
            validate_schema: true,
            schema: Schema::standard(),
            read_throttle_per_sec: Some(800),
            size_limit: 0,
            writes_require_auth: false,
        }
    }
}

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub searches: u64,
    pub throttled: u64,
    pub writes: u64,
}

struct Inner {
    dit: Dit,
    throttle: Option<ReadThrottle>,
    stats: ServerStats,
}

/// The directory server (cheaply cloneable handle).
///
/// ```
/// use dirserv::{DirectoryServer, Dn, LdapEntry, LdapFilter, Scope, ServerConfig};
///
/// let server = DirectoryServer::new(ServerConfig::default());
/// let conn = server.connect_anonymous();
/// conn.add(
///     LdapEntry::new(Dn::parse("o=emory").unwrap())
///         .with("objectClass", "organization")
///         .with("o", "emory"),
/// )
/// .unwrap();
/// let out = conn
///     .search(
///         &Dn::parse("o=emory").unwrap(),
///         Scope::Base,
///         &LdapFilter::match_all(),
///         None,
///         0,
///     )
///     .unwrap();
/// assert_eq!(out.entries.len(), 1);
/// ```
#[derive(Clone)]
pub struct DirectoryServer {
    config: Arc<ServerConfig>,
    inner: Arc<Mutex<Inner>>,
}

/// A bound (or anonymous) connection to the server.
#[derive(Clone)]
pub struct Connection {
    server: DirectoryServer,
    authenticated: bool,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("authenticated", &self.authenticated)
            .finish()
    }
}

/// What a search returns: the matched (projected) entries plus the
/// artificial delay imposed by the anti-DoS throttle — callers modelling
/// latency (the benchmark harness) add it to their response time.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    pub entries: Vec<LdapEntry>,
    pub delay_ms: u64,
}

impl DirectoryServer {
    pub fn new(config: ServerConfig) -> Self {
        let throttle = config.read_throttle_per_sec.map(ReadThrottle::per_second);
        DirectoryServer {
            config: Arc::new(config),
            inner: Arc::new(Mutex::new(Inner {
                dit: Dit::new(),
                throttle,
                stats: ServerStats::default(),
            })),
        }
    }

    /// Open an anonymous connection.
    pub fn connect_anonymous(&self) -> Connection {
        Connection {
            server: self.clone(),
            authenticated: false,
        }
    }

    /// Simple bind. Empty DN + empty password = anonymous.
    pub fn simple_bind(&self, dn: &Dn, password: &str) -> LdapResult<Connection> {
        if dn.is_root() && password.is_empty() {
            return Ok(self.connect_anonymous());
        }
        if dn.normalized() == self.config.root_dn.normalized()
            && password == self.config.root_password
        {
            Ok(Connection {
                server: self.clone(),
                authenticated: true,
            })
        } else {
            Err((ResultCode::InvalidCredentials, dn.to_string()))
        }
    }

    /// Number of entries.
    pub fn entry_count(&self) -> usize {
        self.inner.lock().dit.len()
    }

    pub fn stats(&self) -> ServerStats {
        self.inner.lock().stats
    }
}

impl Connection {
    /// Count and time a server-side operation; when the caller shipped a
    /// trace context (a traced RNDI client), also emit a `server`-layer
    /// span linked into the client's trace.
    fn observe<T>(
        &self,
        op: &'static str,
        trace: Option<&TraceCtx>,
        f: impl FnOnce() -> LdapResult<T>,
    ) -> LdapResult<T> {
        let start = Instant::now();
        let result = f();
        rndi_obs::metrics::counter(names::SERVER_OPS, &[("server", "dirserv"), ("op", op)]).inc();
        rndi_obs::metrics::histogram(names::SERVER_DURATION, &[("server", "dirserv"), ("op", op)])
            .record_duration(start.elapsed());
        if let Some(ctx) = trace {
            rndi_obs::trace::record(SpanRecord::new(
                &ctx.child(),
                "server",
                "dirserv",
                op,
                if result.is_ok() {
                    SpanOutcome::Ok
                } else {
                    SpanOutcome::Err
                },
                start.elapsed(),
            ));
        }
        result
    }

    fn guard_write(&self) -> LdapResult<()> {
        if self.server.config.writes_require_auth && !self.authenticated {
            return Err((
                ResultCode::InsufficientAccessRights,
                "anonymous write".into(),
            ));
        }
        Ok(())
    }

    /// Add an entry.
    pub fn add(&self, entry: LdapEntry) -> LdapResult<()> {
        self.add_traced(entry, None)
    }

    /// [`Connection::add`] carrying the caller's trace context.
    pub fn add_traced(&self, entry: LdapEntry, trace: Option<&TraceCtx>) -> LdapResult<()> {
        self.observe("add", trace, || {
            self.guard_write()?;
            if self.server.config.validate_schema {
                if let Err(reason) = self.server.config.schema.validate(&entry) {
                    return Err((ResultCode::ObjectClassViolation, reason));
                }
            }
            let mut inner = self.server.inner.lock();
            inner.stats.writes += 1;
            inner.dit.add(entry).map_err(dit_err)
        })
    }

    /// Delete a leaf entry.
    pub fn delete(&self, dn: &Dn) -> LdapResult<()> {
        self.delete_traced(dn, None)
    }

    /// [`Connection::delete`] carrying the caller's trace context.
    pub fn delete_traced(&self, dn: &Dn, trace: Option<&TraceCtx>) -> LdapResult<()> {
        self.observe("delete", trace, || {
            self.guard_write()?;
            let mut inner = self.server.inner.lock();
            inner.stats.writes += 1;
            inner.dit.delete(dn).map(|_| ()).map_err(dit_err)
        })
    }

    /// Apply modifications to an entry.
    pub fn modify(&self, dn: &Dn, mods: &[Modification]) -> LdapResult<()> {
        self.modify_traced(dn, mods, None)
    }

    /// [`Connection::modify`] carrying the caller's trace context.
    pub fn modify_traced(
        &self,
        dn: &Dn,
        mods: &[Modification],
        trace: Option<&TraceCtx>,
    ) -> LdapResult<()> {
        self.observe("modify", trace, || self.modify_inner(dn, mods))
    }

    fn modify_inner(&self, dn: &Dn, mods: &[Modification]) -> LdapResult<()> {
        self.guard_write()?;
        let config = &self.server.config;
        let mut inner = self.server.inner.lock();
        inner.stats.writes += 1;
        let mut entry = inner
            .dit
            .get(dn)
            .cloned()
            .ok_or_else(|| (ResultCode::NoSuchObject, dn.to_string()))?;
        for m in mods {
            match m {
                Modification::Add(id, values) => {
                    for v in values {
                        entry.add_value(id, v.clone());
                    }
                }
                Modification::Replace(id, values) => entry.replace(id, values.clone()),
                Modification::Delete(id, values) => entry.remove_values(id, values),
            }
        }
        if config.validate_schema {
            if let Err(reason) = config.schema.validate(&entry) {
                return Err((ResultCode::ObjectClassViolation, reason));
            }
        }
        inner.dit.update(entry).map_err(dit_err)
    }

    /// Rename an entry's RDN.
    pub fn modify_rdn(&self, dn: &Dn, new_rdn: Rdn) -> LdapResult<Dn> {
        self.guard_write()?;
        let mut inner = self.server.inner.lock();
        inner.stats.writes += 1;
        inner.dit.modify_rdn(dn, new_rdn).map_err(dit_err)
    }

    /// Search. `now_ms` feeds the anti-DoS throttle; callers without a
    /// meaningful clock can pass 0 (throttle then acts per-"second" of
    /// request count only).
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &LdapFilter,
        attrs: Option<&[String]>,
        now_ms: u64,
    ) -> LdapResult<SearchOutcome> {
        self.search_traced(base, scope, filter, attrs, now_ms, None)
    }

    /// [`Connection::search`] carrying the caller's trace context.
    #[allow(clippy::too_many_arguments)]
    pub fn search_traced(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &LdapFilter,
        attrs: Option<&[String]>,
        now_ms: u64,
        trace: Option<&TraceCtx>,
    ) -> LdapResult<SearchOutcome> {
        self.observe("search", trace, || {
            self.search_inner(base, scope, filter, attrs, now_ms)
        })
    }

    fn search_inner(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &LdapFilter,
        attrs: Option<&[String]>,
        now_ms: u64,
    ) -> LdapResult<SearchOutcome> {
        let size_limit = self.server.config.size_limit;
        let mut inner = self.server.inner.lock();
        inner.stats.searches += 1;
        let delay_ms = match inner.throttle.as_mut().map(|t| t.admit(now_ms)) {
            Some(Admit::After(d)) => {
                inner.stats.throttled += 1;
                d
            }
            _ => 0,
        };
        let entries = inner
            .dit
            .search(base, scope, filter, size_limit)
            .map_err(dit_err)?
            .into_iter()
            .map(|e| e.project(attrs))
            .collect();
        Ok(SearchOutcome { entries, delay_ms })
    }

    /// Fetch one entry by DN (a base-scope search convenience).
    pub fn read(&self, dn: &Dn, now_ms: u64) -> LdapResult<(LdapEntry, u64)> {
        let out = self.search(dn, Scope::Base, &LdapFilter::match_all(), None, now_ms)?;
        out.entries
            .into_iter()
            .next()
            .map(|e| (e, out.delay_ms))
            .ok_or_else(|| (ResultCode::NoSuchObject, dn.to_string()))
    }

    /// LDAP compare: does `dn` carry `attr=value`?
    pub fn compare(&self, dn: &Dn, attr: &str, value: &str) -> LdapResult<bool> {
        let inner = self.server.inner.lock();
        let entry = inner
            .dit
            .get(dn)
            .ok_or_else(|| (ResultCode::NoSuchObject, dn.to_string()))?;
        Ok(entry.has_value(attr, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> DirectoryServer {
        DirectoryServer::new(ServerConfig {
            read_throttle_per_sec: None,
            ..Default::default()
        })
    }

    fn seed(conn: &Connection) {
        conn.add(
            LdapEntry::new(Dn::parse("o=emory").unwrap())
                .with("objectClass", "organization")
                .with("o", "emory"),
        )
        .unwrap();
        conn.add(
            LdapEntry::new(Dn::parse("ou=dcl,o=emory").unwrap())
                .with("objectClass", "organizationalUnit")
                .with("ou", "dcl"),
        )
        .unwrap();
    }

    #[test]
    fn add_search_delete_cycle() {
        let s = server();
        let conn = s.connect_anonymous();
        seed(&conn);
        conn.add(
            LdapEntry::new(Dn::parse("cn=mokey,ou=dcl,o=emory").unwrap())
                .with("objectClass", "device")
                .with("cn", "mokey"),
        )
        .unwrap();
        assert_eq!(s.entry_count(), 3);

        let out = conn
            .search(
                &Dn::parse("o=emory").unwrap(),
                Scope::Subtree,
                &LdapFilter::parse("(cn=mokey)").unwrap(),
                None,
                0,
            )
            .unwrap();
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.delay_ms, 0);

        conn.delete(&Dn::parse("cn=mokey,ou=dcl,o=emory").unwrap())
            .unwrap();
        assert_eq!(s.entry_count(), 2);
    }

    #[test]
    fn schema_violation_rejected() {
        let s = server();
        let conn = s.connect_anonymous();
        let bad = LdapEntry::new(Dn::parse("o=x").unwrap()).with("objectClass", "organization");
        let (code, _) = conn.add(bad).unwrap_err();
        assert_eq!(code, ResultCode::ObjectClassViolation);
    }

    #[test]
    fn authentication() {
        let s = server();
        assert!(s
            .simple_bind(&Dn::parse("cn=admin").unwrap(), "secret")
            .is_ok());
        let (code, _) = s
            .simple_bind(&Dn::parse("cn=admin").unwrap(), "wrong")
            .unwrap_err();
        assert_eq!(code, ResultCode::InvalidCredentials);
        assert!(s.simple_bind(&Dn::root(), "").is_ok(), "anonymous bind");
    }

    #[test]
    fn writes_require_auth_when_configured() {
        let s = DirectoryServer::new(ServerConfig {
            writes_require_auth: true,
            read_throttle_per_sec: None,
            ..Default::default()
        });
        let anon = s.connect_anonymous();
        let e = LdapEntry::new(Dn::parse("o=x").unwrap())
            .with("objectClass", "organization")
            .with("o", "x");
        let (code, _) = anon.add(e.clone()).unwrap_err();
        assert_eq!(code, ResultCode::InsufficientAccessRights);

        let admin = s
            .simple_bind(&Dn::parse("cn=admin").unwrap(), "secret")
            .unwrap();
        admin.add(e).unwrap();
        // Anonymous reads still fine.
        assert!(anon.read(&Dn::parse("o=x").unwrap(), 0).is_ok());
    }

    #[test]
    fn modify_and_compare() {
        let s = server();
        let conn = s.connect_anonymous();
        seed(&conn);
        let dn = Dn::parse("ou=dcl,o=emory").unwrap();
        conn.modify(
            &dn,
            &[Modification::Add("description".into(), vec!["lab".into()])],
        )
        .unwrap();
        assert_eq!(conn.compare(&dn, "description", "LAB"), Ok(true));
        assert_eq!(conn.compare(&dn, "description", "other"), Ok(false));

        conn.modify(
            &dn,
            &[Modification::Replace(
                "description".into(),
                vec!["cluster".into()],
            )],
        )
        .unwrap();
        assert_eq!(conn.compare(&dn, "description", "cluster"), Ok(true));

        conn.modify(&dn, &[Modification::Delete("description".into(), vec![])])
            .unwrap();
        assert_eq!(conn.compare(&dn, "description", "cluster"), Ok(false));
    }

    #[test]
    fn modify_cannot_break_schema() {
        let s = server();
        let conn = s.connect_anonymous();
        seed(&conn);
        let dn = Dn::parse("ou=dcl,o=emory").unwrap();
        let (code, _) = conn
            .modify(&dn, &[Modification::Delete("ou".into(), vec![])])
            .unwrap_err();
        assert_eq!(code, ResultCode::ObjectClassViolation);
        // Entry unchanged.
        assert_eq!(conn.compare(&dn, "ou", "dcl"), Ok(true));
    }

    #[test]
    fn throttle_reports_delay() {
        let s = DirectoryServer::new(ServerConfig {
            read_throttle_per_sec: Some(2),
            ..Default::default()
        });
        let conn = s.connect_anonymous();
        seed(&conn);
        let base = Dn::parse("o=emory").unwrap();
        let all = LdapFilter::match_all();
        assert_eq!(
            conn.search(&base, Scope::Base, &all, None, 100)
                .unwrap()
                .delay_ms,
            0
        );
        assert_eq!(
            conn.search(&base, Scope::Base, &all, None, 150)
                .unwrap()
                .delay_ms,
            0
        );
        let delayed = conn.search(&base, Scope::Base, &all, None, 200).unwrap();
        assert!(delayed.delay_ms > 0, "third read in the window throttled");
        assert_eq!(s.stats().throttled, 1);
    }

    #[test]
    fn read_convenience() {
        let s = server();
        let conn = s.connect_anonymous();
        seed(&conn);
        let (e, _) = conn.read(&Dn::parse("ou=dcl,o=emory").unwrap(), 0).unwrap();
        assert_eq!(e.first("ou"), Some("dcl"));
        let (code, _) = conn
            .read(&Dn::parse("ou=ghost,o=emory").unwrap(), 0)
            .unwrap_err();
        assert_eq!(code, ResultCode::NoSuchObject);
    }

    #[test]
    fn size_limit_caps_results() {
        let s = DirectoryServer::new(ServerConfig {
            read_throttle_per_sec: None,
            size_limit: 2,
            ..Default::default()
        });
        let conn = s.connect_anonymous();
        seed(&conn);
        conn.add(
            LdapEntry::new(Dn::parse("cn=a,ou=dcl,o=emory").unwrap())
                .with("objectClass", "device")
                .with("cn", "a"),
        )
        .unwrap();
        let out = conn
            .search(
                &Dn::parse("o=emory").unwrap(),
                Scope::Subtree,
                &LdapFilter::match_all(),
                None,
                0,
            )
            .unwrap();
        assert_eq!(out.entries.len(), 2);
    }
}
