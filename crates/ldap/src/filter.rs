//! RFC 2254 search filters, evaluated over [`LdapEntry`] values.
//!
//! Independent from the `rndi-core` filter module on purpose: this crate
//! models a pre-existing server with its own (similar but separately
//! evolved) filter dialect, as real OpenLDAP is to real JNDI.

use crate::entry::LdapEntry;

/// A parsed filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LdapFilter {
    And(Vec<LdapFilter>),
    Or(Vec<LdapFilter>),
    Not(Box<LdapFilter>),
    Present(String),
    Equality(String, String),
    Greater(String, String),
    Less(String, String),
    Approx(String, String),
    /// `attr=*sub*strings*` — fragments in order; empty leading/trailing
    /// fragment means unanchored.
    Substrings {
        attr: String,
        initial: Option<String>,
        any: Vec<String>,
        final_: Option<String>,
    },
}

impl LdapFilter {
    /// `(objectClass=*)` — the conventional match-all filter.
    pub fn match_all() -> LdapFilter {
        LdapFilter::Present("objectClass".into())
    }

    /// Parse an RFC 2254 filter string.
    pub fn parse(s: &str) -> Result<LdapFilter, String> {
        let mut p = P {
            b: s.as_bytes(),
            i: 0,
        };
        let f = p.filter()?;
        if p.i != p.b.len() {
            return Err(format!("trailing input at byte {}", p.i));
        }
        Ok(f)
    }

    /// Evaluate against an entry.
    pub fn matches(&self, e: &LdapEntry) -> bool {
        match self {
            LdapFilter::And(fs) => fs.iter().all(|f| f.matches(e)),
            LdapFilter::Or(fs) => fs.iter().any(|f| f.matches(e)),
            LdapFilter::Not(f) => !f.matches(e),
            LdapFilter::Present(a) => e.has(a),
            LdapFilter::Equality(a, v) => e.has_value(a, v),
            LdapFilter::Greater(a, v) => any_val(e, a, |x| ord(x, v).is_ge()),
            LdapFilter::Less(a, v) => any_val(e, a, |x| ord(x, v).is_le()),
            LdapFilter::Approx(a, v) => any_val(e, a, |x| squash(x) == squash(v)),
            LdapFilter::Substrings {
                attr,
                initial,
                any,
                final_,
            } => any_val(e, attr, |x| {
                sub_match(x, initial.as_deref(), any, final_.as_deref())
            }),
        }
    }
}

fn any_val(e: &LdapEntry, attr: &str, pred: impl Fn(&str) -> bool) -> bool {
    e.get(attr)
        .is_some_and(|a| a.values.iter().any(|v| pred(v)))
}

fn ord(a: &str, b: &str) -> std::cmp::Ordering {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()),
    }
}

fn squash(s: &str) -> String {
    s.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_ascii_lowercase()
}

fn sub_match(s: &str, initial: Option<&str>, any: &[String], final_: Option<&str>) -> bool {
    let lower = s.to_ascii_lowercase();
    let mut pos = 0;
    if let Some(ini) = initial {
        let ini = ini.to_ascii_lowercase();
        if !lower.starts_with(&ini) {
            return false;
        }
        pos = ini.len();
    }
    for frag in any {
        let frag = frag.to_ascii_lowercase();
        match lower[pos..].find(&frag) {
            Some(at) => pos += at + frag.len(),
            None => return false,
        }
    }
    match final_ {
        Some(fin) => {
            let fin = fin.to_ascii_lowercase();
            lower.len() >= pos + fin.len() && lower.ends_with(&fin)
        }
        None => true,
    }
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn filter(&mut self) -> Result<LdapFilter, String> {
        self.eat(b'(')?;
        let out = match self.peek() {
            Some(b'&') => {
                self.i += 1;
                LdapFilter::And(self.list()?)
            }
            Some(b'|') => {
                self.i += 1;
                let l = self.list()?;
                if l.is_empty() {
                    return Err("empty OR".into());
                }
                LdapFilter::Or(l)
            }
            Some(b'!') => {
                self.i += 1;
                LdapFilter::Not(Box::new(self.filter()?))
            }
            Some(_) => self.item()?,
            None => return Err("unexpected end".into()),
        };
        self.eat(b')')?;
        Ok(out)
    }

    fn list(&mut self) -> Result<Vec<LdapFilter>, String> {
        let mut out = Vec::new();
        while self.peek() == Some(b'(') {
            out.push(self.filter()?);
        }
        Ok(out)
    }

    fn item(&mut self) -> Result<LdapFilter, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if matches!(c, b'=' | b'~' | b'>' | b'<' | b'(' | b')') {
                break;
            }
            self.i += 1;
        }
        let attr = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "non-utf8 attribute")?
            .trim()
            .to_string();
        if attr.is_empty() {
            return Err(format!("empty attribute at byte {start}"));
        }
        let op = self.peek().ok_or("truncated item")?;
        self.i += 1;
        if op != b'=' {
            self.eat(b'=')?;
        }
        let raw = self.value()?;
        Ok(match op {
            b'~' => LdapFilter::Approx(attr, raw.text),
            b'>' => LdapFilter::Greater(attr, raw.text),
            b'<' => LdapFilter::Less(attr, raw.text),
            b'=' => {
                if !raw.wild {
                    LdapFilter::Equality(attr, raw.text)
                } else if raw.text == "*" {
                    LdapFilter::Present(attr)
                } else {
                    let parts: Vec<&str> = raw.text.split('*').collect();
                    let n = parts.len();
                    let mut any = Vec::new();
                    let mut initial = None;
                    let mut final_ = None;
                    for (idx, p) in parts.iter().enumerate() {
                        if p.is_empty() {
                            continue;
                        }
                        if idx == 0 {
                            initial = Some(p.to_string());
                        } else if idx == n - 1 {
                            final_ = Some(p.to_string());
                        } else {
                            any.push(p.to_string());
                        }
                    }
                    LdapFilter::Substrings {
                        attr,
                        initial,
                        any,
                        final_,
                    }
                }
            }
            other => return Err(format!("bad operator {:?}", other as char)),
        })
    }

    fn value(&mut self) -> Result<RawValue, String> {
        let mut text = String::new();
        let mut wild = false;
        while let Some(c) = self.peek() {
            match c {
                b')' => break,
                b'(' => return Err("unescaped '(' in value".into()),
                b'\\' => {
                    self.i += 1;
                    let hi = self.peek().ok_or("truncated escape")?;
                    self.i += 1;
                    let lo = self.peek().ok_or("truncated escape")?;
                    self.i += 1;
                    let byte = u8::from_str_radix(
                        std::str::from_utf8(&[hi, lo]).map_err(|_| "bad escape")?,
                        16,
                    )
                    .map_err(|_| "bad hex escape")?;
                    text.push(byte as char);
                }
                b'*' => {
                    wild = true;
                    text.push('*');
                    self.i += 1;
                }
                _ => {
                    text.push(c as char);
                    self.i += 1;
                }
            }
        }
        Ok(RawValue { text, wild })
    }
}

struct RawValue {
    text: String,
    wild: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn entry() -> LdapEntry {
        LdapEntry::new(Dn::parse("cn=srv1,o=emory").unwrap())
            .with("objectClass", "applicationProcess")
            .with("cn", "srv1")
            .with("port", "8085")
            .with("description", "grid  gateway   node")
    }

    #[test]
    fn equality_and_presence() {
        let e = entry();
        assert!(LdapFilter::parse("(cn=SRV1)").unwrap().matches(&e));
        assert!(LdapFilter::parse("(cn=*)").unwrap().matches(&e));
        assert!(!LdapFilter::parse("(cn=srv2)").unwrap().matches(&e));
        assert!(!LdapFilter::parse("(missing=*)").unwrap().matches(&e));
        assert!(LdapFilter::match_all().matches(&e));
    }

    #[test]
    fn combinators() {
        let e = entry();
        assert!(LdapFilter::parse("(&(cn=srv1)(port>=8000))")
            .unwrap()
            .matches(&e));
        assert!(LdapFilter::parse("(|(cn=xxx)(port<=9000))")
            .unwrap()
            .matches(&e));
        assert!(LdapFilter::parse("(!(cn=xxx))").unwrap().matches(&e));
        assert!(!LdapFilter::parse("(&(cn=srv1)(cn=xxx))")
            .unwrap()
            .matches(&e));
    }

    #[test]
    fn substrings_and_approx() {
        let e = entry();
        assert!(LdapFilter::parse("(cn=srv*)").unwrap().matches(&e));
        assert!(LdapFilter::parse("(cn=*rv1)").unwrap().matches(&e));
        assert!(LdapFilter::parse("(cn=s*v*1)").unwrap().matches(&e));
        assert!(!LdapFilter::parse("(cn=x*)").unwrap().matches(&e));
        assert!(LdapFilter::parse("(description~=grid gateway node)")
            .unwrap()
            .matches(&e));
    }

    #[test]
    fn numeric_ordering() {
        let e = entry();
        assert!(LdapFilter::parse("(port>=8085)").unwrap().matches(&e));
        assert!(!LdapFilter::parse("(port>=10000)").unwrap().matches(&e));
        assert!(LdapFilter::parse("(port<=8085)").unwrap().matches(&e));
    }

    #[test]
    fn hex_escape() {
        let e = LdapEntry::new(Dn::root()).with("v", "a*b");
        let f = LdapFilter::parse(r"(v=a\2ab)").unwrap();
        assert_eq!(f, LdapFilter::Equality("v".into(), "a*b".into()));
        assert!(f.matches(&e));
    }

    #[test]
    fn parse_errors() {
        for bad in ["", "(", "(a=b", "a=b", "(a=b))", "(|)", "(a=(x))"] {
            assert!(LdapFilter::parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
