//! Distinguished names.
//!
//! A DN is a sequence of RDNs, written leaf-first: in
//! `cn=mokey,ou=dcl,o=emory`, `cn=mokey` names the entry and `o=emory` the
//! root. Attribute types compare case-insensitively; values are normalized
//! for comparison but preserved for display. Commas inside values are
//! escaped with `\`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One relative distinguished name: `attr=value`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rdn {
    /// Attribute type, lower-cased.
    pub attr: String,
    /// Value with original case.
    pub value: String,
}

impl Rdn {
    pub fn new(attr: impl Into<String>, value: impl Into<String>) -> Self {
        Rdn {
            attr: attr.into().to_ascii_lowercase(),
            value: value.into(),
        }
    }

    /// Parse `attr=value` (value may contain escaped separators).
    pub fn parse(s: &str) -> Result<Rdn, String> {
        let (attr, value) = s
            .split_once('=')
            .ok_or_else(|| format!("RDN {s:?} missing '='"))?;
        let attr = attr.trim();
        let value = value.trim();
        if attr.is_empty() || value.is_empty() {
            return Err(format!("RDN {s:?} has empty attribute or value"));
        }
        Ok(Rdn::new(attr, value))
    }

    /// Case-insensitive equivalence.
    pub fn matches(&self, other: &Rdn) -> bool {
        self.attr == other.attr && self.value.eq_ignore_ascii_case(&other.value)
    }

    /// Normalized form used as a map key.
    pub fn normalized(&self) -> String {
        format!("{}={}", self.attr, self.value.to_ascii_lowercase())
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut escaped = String::with_capacity(self.value.len());
        for c in self.value.chars() {
            if matches!(c, ',' | '\\' | '=') {
                escaped.push('\\');
            }
            escaped.push(c);
        }
        write!(f, "{}={}", self.attr, escaped)
    }
}

/// A distinguished name; `rdns[0]` is the leaf.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Dn {
    rdns: Vec<Rdn>,
}

impl Dn {
    /// The root DSE (empty DN).
    pub fn root() -> Self {
        Dn::default()
    }

    pub fn from_rdns(rdns: Vec<Rdn>) -> Self {
        Dn { rdns }
    }

    /// Parse a leaf-first comma-separated DN with `\` escapes.
    pub fn parse(s: &str) -> Result<Dn, String> {
        if s.trim().is_empty() {
            return Ok(Dn::root());
        }
        let mut parts = Vec::new();
        let mut current = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some(n) => current.push(n),
                    None => return Err(format!("DN {s:?} ends with dangling escape")),
                },
                ',' => parts.push(std::mem::take(&mut current)),
                _ => current.push(c),
            }
        }
        parts.push(current);
        let rdns: Result<Vec<Rdn>, String> = parts.iter().map(|p| Rdn::parse(p)).collect();
        Ok(Dn { rdns: rdns? })
    }

    /// The leaf RDN (None for the root DSE).
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// The parent DN (dropping the leaf RDN); `None` for the root.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[1..].to_vec(),
            })
        }
    }

    /// Child DN: `rdn,self`.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(rdn);
        rdns.extend(self.rdns.iter().cloned());
        Dn { rdns }
    }

    /// Number of RDNs.
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// RDNs, leaf first.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// Whether `self` is (an entry in) the subtree rooted at `base`
    /// (inclusive).
    pub fn is_under(&self, base: &Dn) -> bool {
        if base.rdns.len() > self.rdns.len() {
            return false;
        }
        let offset = self.rdns.len() - base.rdns.len();
        self.rdns[offset..]
            .iter()
            .zip(&base.rdns)
            .all(|(a, b)| a.matches(b))
    }

    /// Whether `self` is a *direct* child of `base`.
    pub fn is_child_of(&self, base: &Dn) -> bool {
        self.rdns.len() == base.rdns.len() + 1 && self.is_under(base)
    }

    /// Normalized key for maps / equality under LDAP case rules.
    pub fn normalized(&self) -> String {
        self.rdns
            .iter()
            .map(|r| r.normalized())
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.rdns.iter().map(|r| r.to_string()).collect();
        f.write_str(&parts.join(","))
    }
}

impl std::str::FromStr for Dn {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Dn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let dn = Dn::parse("cn=mokey, ou=dcl, o=emory").unwrap();
        assert_eq!(dn.depth(), 3);
        assert_eq!(dn.rdn().unwrap().attr, "cn");
        assert_eq!(dn.rdn().unwrap().value, "mokey");
        assert_eq!(dn.to_string(), "cn=mokey,ou=dcl,o=emory");
    }

    #[test]
    fn root_dse() {
        let dn = Dn::parse("").unwrap();
        assert!(dn.is_root());
        assert!(dn.parent().is_none());
        assert!(dn.rdn().is_none());
    }

    #[test]
    fn parent_child_navigation() {
        let dn = Dn::parse("cn=a,o=b").unwrap();
        let parent = dn.parent().unwrap();
        assert_eq!(parent.to_string(), "o=b");
        let back = parent.child(Rdn::new("cn", "a"));
        assert_eq!(back, dn);
    }

    #[test]
    fn subtree_relationships() {
        let base = Dn::parse("ou=dcl,o=emory").unwrap();
        let entry = Dn::parse("cn=mokey,ou=dcl,o=emory").unwrap();
        let deep = Dn::parse("cn=x,cn=mokey,ou=dcl,o=emory").unwrap();
        let other = Dn::parse("cn=mokey,ou=other,o=emory").unwrap();

        assert!(entry.is_under(&base));
        assert!(deep.is_under(&base));
        assert!(base.is_under(&base), "inclusive");
        assert!(!other.is_under(&base));

        assert!(entry.is_child_of(&base));
        assert!(!deep.is_child_of(&base));
        assert!(!base.is_child_of(&base));
        assert!(entry.is_under(&Dn::root()));
    }

    #[test]
    fn case_insensitive_normalization() {
        let a = Dn::parse("CN=Mokey,O=Emory").unwrap();
        let b = Dn::parse("cn=mokey,o=emory").unwrap();
        assert_eq!(a.normalized(), b.normalized());
        assert!(a.is_under(&b));
    }

    #[test]
    fn escaped_commas() {
        let dn = Dn::parse(r"cn=Lastname\, Firstname,o=emory").unwrap();
        assert_eq!(dn.depth(), 2);
        assert_eq!(dn.rdn().unwrap().value, "Lastname, Firstname");
        let printed = dn.to_string();
        assert_eq!(Dn::parse(&printed).unwrap(), dn, "display roundtrips");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Dn::parse("noequals").is_err());
        assert!(Dn::parse("=v").is_err());
        assert!(Dn::parse("a=").is_err());
        assert!(Dn::parse(r"a=b\").is_err());
    }
}
