//! # dirserv — a simplified LDAP-style directory server (OpenLDAP analogue)
//!
//! Implements the slice of LDAP the paper's evaluation exercises:
//!
//! * [`dn::Dn`] — distinguished names (`cn=mokey,ou=dcl,o=emory`), parsed,
//!   normalized, and ordered leaf-first as in LDAP.
//! * [`entry::LdapEntry`] — entries with case-insensitive, multi-valued
//!   attributes.
//! * [`filter::LdapFilter`] — RFC 2254 search filters (this server's own
//!   implementation — the backends are deliberately heterogeneous).
//! * [`dit::Dit`] — the Directory Information Tree with add / delete /
//!   modify / modify-RDN / search (base, one-level, subtree scopes).
//! * [`server::DirectoryServer`] — result-code based operations with
//!   simple-bind authentication.
//! * [`throttle::ReadThrottle`] — the anti-DoS read limiter. The paper
//!   observed OpenLDAP's read throughput plateau near 800 ops/s "leaving
//!   server resources unsaturated" and conjectured "some automatic slowdown
//!   mechanism, such as a countermeasure against Denial-of-Service
//!   attacks"; this module makes that mechanism explicit so the benchmark
//!   harness can reproduce Figure 7.
//!
//! Independent of `rndi-core` by design: it models a pre-existing backend
//! that the integration middleware adapts to.

pub mod dit;
pub mod dn;
pub mod entry;
pub mod filter;
pub mod schema;
pub mod server;
pub mod throttle;

pub use dit::{Dit, Scope};
pub use dn::{Dn, Rdn};
pub use entry::{LdapAttr, LdapEntry};
pub use filter::LdapFilter;
pub use server::{DirectoryServer, LdapResult, ResultCode, ServerConfig};
pub use throttle::{Admit, ReadThrottle};
