//! The Directory Information Tree.
//!
//! Entries keyed by normalized DN, with structural invariants enforced:
//! an entry's parent must exist (except suffixes at the tree root) and only
//! leaf entries can be deleted.

use std::collections::BTreeMap;

use crate::dn::{Dn, Rdn};
use crate::entry::LdapEntry;
use crate::filter::LdapFilter;

/// Search scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Direct children of the base.
    OneLevel,
    /// Base and all descendants.
    Subtree,
}

/// DIT operation errors (mapped to LDAP result codes by the server layer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DitError {
    NoSuchObject(String),
    AlreadyExists(String),
    NotAllowedOnNonLeaf(String),
    NoSuchParent(String),
}

/// The tree. BTreeMap keeps deterministic enumeration order.
#[derive(Default, Debug, Clone)]
pub struct Dit {
    entries: BTreeMap<String, LdapEntry>,
}

impl Dit {
    pub fn new() -> Self {
        Dit::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, dn: &Dn) -> bool {
        self.entries.contains_key(&dn.normalized())
    }

    pub fn get(&self, dn: &Dn) -> Option<&LdapEntry> {
        self.entries.get(&dn.normalized())
    }

    /// Add an entry. The parent must already exist unless the entry is a
    /// suffix (depth 1) or the root itself.
    pub fn add(&mut self, entry: LdapEntry) -> Result<(), DitError> {
        let key = entry.dn.normalized();
        if self.entries.contains_key(&key) {
            return Err(DitError::AlreadyExists(entry.dn.to_string()));
        }
        if let Some(parent) = entry.dn.parent() {
            if !parent.is_root() && !self.contains(&parent) {
                return Err(DitError::NoSuchParent(parent.to_string()));
            }
        }
        self.entries.insert(key, entry);
        Ok(())
    }

    /// Delete a leaf entry.
    pub fn delete(&mut self, dn: &Dn) -> Result<LdapEntry, DitError> {
        let key = dn.normalized();
        if !self.entries.contains_key(&key) {
            return Err(DitError::NoSuchObject(dn.to_string()));
        }
        if self.has_children(dn) {
            return Err(DitError::NotAllowedOnNonLeaf(dn.to_string()));
        }
        Ok(self.entries.remove(&key).expect("checked present"))
    }

    /// Whether the entry has any children.
    pub fn has_children(&self, dn: &Dn) -> bool {
        self.entries.values().any(|e| e.dn.is_child_of(dn))
    }

    /// Replace an entry's content in place (same DN).
    pub fn update(&mut self, entry: LdapEntry) -> Result<(), DitError> {
        let key = entry.dn.normalized();
        if !self.entries.contains_key(&key) {
            return Err(DitError::NoSuchObject(entry.dn.to_string()));
        }
        self.entries.insert(key, entry);
        Ok(())
    }

    /// Rename a leaf entry's RDN (LDAP `modifyRDN`).
    pub fn modify_rdn(&mut self, dn: &Dn, new_rdn: Rdn) -> Result<Dn, DitError> {
        if self.has_children(dn) {
            return Err(DitError::NotAllowedOnNonLeaf(dn.to_string()));
        }
        let parent = dn.parent().unwrap_or_else(Dn::root);
        let new_dn = parent.child(new_rdn.clone());
        if self.contains(&new_dn) {
            return Err(DitError::AlreadyExists(new_dn.to_string()));
        }
        let mut entry = self.delete(dn)?;
        entry.dn = new_dn.clone();
        // The new RDN's attribute value must be present on the entry.
        if !entry.has_value(&new_rdn.attr, &new_rdn.value) {
            entry.add_value(&new_rdn.attr, new_rdn.value.clone());
        }
        self.entries.insert(new_dn.normalized(), entry);
        Ok(new_dn)
    }

    /// Search from `base` with the given scope and filter.
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &LdapFilter,
        size_limit: usize,
    ) -> Result<Vec<&LdapEntry>, DitError> {
        if !base.is_root() && !self.contains(base) {
            return Err(DitError::NoSuchObject(base.to_string()));
        }
        let mut out = Vec::new();
        for e in self.entries.values() {
            let in_scope = match scope {
                Scope::Base => e.dn == *base,
                Scope::OneLevel => e.dn.is_child_of(base),
                Scope::Subtree => e.dn.is_under(base),
            };
            if in_scope && filter.matches(e) {
                out.push(e);
                if size_limit > 0 && out.len() >= size_limit {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Iterate all entries (diagnostics, persistence).
    pub fn iter(&self) -> impl Iterator<Item = &LdapEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> Dit {
        let mut d = Dit::new();
        d.add(
            LdapEntry::new(Dn::parse("o=emory").unwrap())
                .with("objectClass", "organization")
                .with("o", "emory"),
        )
        .unwrap();
        d.add(
            LdapEntry::new(Dn::parse("ou=mathcs,o=emory").unwrap())
                .with("objectClass", "organizationalUnit")
                .with("ou", "mathcs"),
        )
        .unwrap();
        d.add(
            LdapEntry::new(Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap())
                .with("objectClass", "device")
                .with("cn", "mokey"),
        )
        .unwrap();
        d
    }

    #[test]
    fn add_requires_parent() {
        let mut d = Dit::new();
        let orphan = LdapEntry::new(Dn::parse("cn=x,ou=nowhere,o=gone").unwrap());
        assert!(matches!(d.add(orphan), Err(DitError::NoSuchParent(_))));
        // Suffix at depth 1 is fine.
        assert!(d.add(LdapEntry::new(Dn::parse("o=emory").unwrap())).is_ok());
    }

    #[test]
    fn add_rejects_duplicate() {
        let mut d = seeded();
        let dup = LdapEntry::new(Dn::parse("O=EMORY").unwrap());
        assert!(matches!(d.add(dup), Err(DitError::AlreadyExists(_))));
    }

    #[test]
    fn delete_leaf_only() {
        let mut d = seeded();
        let ou = Dn::parse("ou=mathcs,o=emory").unwrap();
        assert!(matches!(
            d.delete(&ou),
            Err(DitError::NotAllowedOnNonLeaf(_))
        ));
        d.delete(&Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap())
            .unwrap();
        d.delete(&ou).unwrap();
        assert_eq!(d.len(), 1);
        assert!(matches!(d.delete(&ou), Err(DitError::NoSuchObject(_))));
    }

    #[test]
    fn scoped_search() {
        let d = seeded();
        let base = Dn::parse("o=emory").unwrap();
        let all = LdapFilter::match_all();

        let hits = d.search(&base, Scope::Base, &all, 0).unwrap();
        assert_eq!(hits.len(), 1);

        let hits = d.search(&base, Scope::OneLevel, &all, 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn.to_string(), "ou=mathcs,o=emory");

        let hits = d.search(&base, Scope::Subtree, &all, 0).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn search_filter_and_limit() {
        let d = seeded();
        let base = Dn::parse("o=emory").unwrap();
        let f = LdapFilter::parse("(objectClass=device)").unwrap();
        let hits = d.search(&base, Scope::Subtree, &f, 0).unwrap();
        assert_eq!(hits.len(), 1);
        let all = LdapFilter::match_all();
        let hits = d.search(&base, Scope::Subtree, &all, 2).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_missing_base_errors() {
        let d = seeded();
        let err = d
            .search(
                &Dn::parse("o=nowhere").unwrap(),
                Scope::Subtree,
                &LdapFilter::match_all(),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, DitError::NoSuchObject(_)));
    }

    #[test]
    fn modify_rdn_renames_leaf() {
        let mut d = seeded();
        let old = Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap();
        let new_dn = d.modify_rdn(&old, Rdn::new("cn", "monkey")).unwrap();
        assert_eq!(new_dn.to_string(), "cn=monkey,ou=mathcs,o=emory");
        assert!(!d.contains(&old));
        let e = d.get(&new_dn).unwrap();
        assert!(e.has_value("cn", "monkey"), "RDN value added to entry");
    }

    #[test]
    fn modify_rdn_conflicts_and_nonleaf() {
        let mut d = seeded();
        d.add(
            LdapEntry::new(Dn::parse("cn=taken,ou=mathcs,o=emory").unwrap())
                .with("objectClass", "device")
                .with("cn", "taken"),
        )
        .unwrap();
        let mokey = Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap();
        assert!(matches!(
            d.modify_rdn(&mokey, Rdn::new("cn", "taken")),
            Err(DitError::AlreadyExists(_))
        ));
        let ou = Dn::parse("ou=mathcs,o=emory").unwrap();
        assert!(matches!(
            d.modify_rdn(&ou, Rdn::new("ou", "x")),
            Err(DitError::NotAllowedOnNonLeaf(_))
        ));
    }

    #[test]
    fn update_replaces_content() {
        let mut d = seeded();
        let dn = Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap();
        let mut e = d.get(&dn).unwrap().clone();
        e.add_value("description", "test monkey");
        d.update(e).unwrap();
        assert_eq!(
            d.get(&dn).unwrap().first("description"),
            Some("test monkey")
        );
        let ghost = LdapEntry::new(Dn::parse("cn=ghost,o=emory").unwrap());
        assert!(matches!(d.update(ghost), Err(DitError::NoSuchObject(_))));
    }
}
