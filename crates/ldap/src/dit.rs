//! The Directory Information Tree.
//!
//! Entries keyed by normalized DN, with structural invariants enforced:
//! an entry's parent must exist (except suffixes at the tree root) and only
//! leaf entries can be deleted.
//!
//! Read-path layout: the entry map is keyed by the *root-first* normalized
//! DN (RDNs reversed, joined with an unprintable separator), so every
//! subtree is one contiguous key range and `OneLevel`/`Subtree` searches
//! are bounded range scans instead of full-tree walks. An equality index
//! over `(attribute, value)` pairs additionally lets searches whose filter
//! contains an equality conjunct start from the posting set instead of the
//! scope range. Both structures only *prune*: every candidate is still
//! verified with the real scope predicate and `LdapFilter::matches`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use crate::dn::{Dn, Rdn};
use crate::entry::LdapEntry;
use crate::filter::LdapFilter;

/// Separator between RDNs in root-first tree keys. An information
/// separator that normal DN text never contains; even if a value smuggles
/// one in, candidates are re-verified against the actual `Dn`, so the
/// range scan stays a pruning step rather than a correctness assumption.
const KEY_SEP: char = '\u{1f}';

/// Search scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Direct children of the base.
    OneLevel,
    /// Base and all descendants.
    Subtree,
}

/// DIT operation errors (mapped to LDAP result codes by the server layer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DitError {
    NoSuchObject(String),
    AlreadyExists(String),
    NotAllowedOnNonLeaf(String),
    NoSuchParent(String),
}

/// The best read strategy the equality index offers for a filter.
enum Posting<'a> {
    /// No equality conjunct indexed — fall back to the scope range scan.
    Unindexed,
    /// An equality conjunct nothing satisfies — the result is empty.
    Empty,
    /// Candidate tree keys (a superset of the matches).
    Keys(&'a BTreeSet<String>),
}

/// `[index, scan]` read-path counters, resolved once per process.
fn read_path_counters() -> &'static [Arc<rndi_obs::metrics::Counter>; 2] {
    static COUNTERS: OnceLock<[Arc<rndi_obs::metrics::Counter>; 2]> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let name = rndi_obs::metrics::names::INDEX_READS;
        [
            rndi_obs::metrics::counter(name, &[("server", "dirserv"), ("path", "index")]),
            rndi_obs::metrics::counter(name, &[("server", "dirserv"), ("path", "scan")]),
        ]
    })
}

/// The tree. BTreeMap keeps deterministic enumeration order (root-first).
#[derive(Default, Debug, Clone)]
pub struct Dit {
    /// Root-first tree key → entry; each subtree is a contiguous range.
    entries: BTreeMap<String, LdapEntry>,
    /// `(attr lowercase, value lowercase)` → tree keys of entries holding
    /// that value. Maintained by every mutation, alongside `entries`.
    eq_index: HashMap<(String, String), BTreeSet<String>>,
}

impl Dit {
    pub fn new() -> Self {
        Dit::default()
    }

    /// Root-first map key: `o=emory` before its whole subtree, which makes
    /// the subtree a contiguous `entries` range.
    fn tree_key(dn: &Dn) -> String {
        let mut parts: Vec<String> = dn.rdns().iter().map(|r| r.normalized()).collect();
        parts.reverse();
        parts.join(&KEY_SEP.to_string())
    }

    fn index_entry(&mut self, key: &str, entry: &LdapEntry) {
        for attr in entry.attrs() {
            let id = attr.id.to_ascii_lowercase();
            for value in &attr.values {
                self.eq_index
                    .entry((id.clone(), value.to_ascii_lowercase()))
                    .or_default()
                    .insert(key.to_string());
            }
        }
    }

    fn unindex_entry(&mut self, key: &str, entry: &LdapEntry) {
        for attr in entry.attrs() {
            let id = attr.id.to_ascii_lowercase();
            for value in &attr.values {
                let ik = (id.clone(), value.to_ascii_lowercase());
                if let Some(set) = self.eq_index.get_mut(&ik) {
                    set.remove(key);
                    if set.is_empty() {
                        self.eq_index.remove(&ik);
                    }
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, dn: &Dn) -> bool {
        self.entries.contains_key(&Self::tree_key(dn))
    }

    pub fn get(&self, dn: &Dn) -> Option<&LdapEntry> {
        self.entries.get(&Self::tree_key(dn))
    }

    /// Add an entry. The parent must already exist unless the entry is a
    /// suffix (depth 1) or the root itself.
    pub fn add(&mut self, entry: LdapEntry) -> Result<(), DitError> {
        let key = Self::tree_key(&entry.dn);
        if self.entries.contains_key(&key) {
            return Err(DitError::AlreadyExists(entry.dn.to_string()));
        }
        if let Some(parent) = entry.dn.parent() {
            if !parent.is_root() && !self.contains(&parent) {
                return Err(DitError::NoSuchParent(parent.to_string()));
            }
        }
        self.index_entry(&key, &entry);
        self.entries.insert(key, entry);
        Ok(())
    }

    /// Delete a leaf entry.
    pub fn delete(&mut self, dn: &Dn) -> Result<LdapEntry, DitError> {
        let key = Self::tree_key(dn);
        if !self.entries.contains_key(&key) {
            return Err(DitError::NoSuchObject(dn.to_string()));
        }
        if self.has_children(dn) {
            return Err(DitError::NotAllowedOnNonLeaf(dn.to_string()));
        }
        let entry = self.entries.remove(&key).expect("checked present");
        self.unindex_entry(&key, &entry);
        Ok(entry)
    }

    /// Whether the entry has any children.
    ///
    /// A range probe over the entry's key block: because parents must exist
    /// and only leaves can be deleted, any descendant implies a direct
    /// child, so probing for *descendants* answers the child question.
    pub fn has_children(&self, dn: &Dn) -> bool {
        if dn.is_root() {
            return self.entries.keys().any(|k| !k.is_empty());
        }
        let mut prefix = Self::tree_key(dn);
        prefix.push(KEY_SEP);
        self.entries
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .any(|(_, e)| e.dn != *dn && e.dn.is_under(dn))
    }

    /// Replace an entry's content in place (same DN).
    pub fn update(&mut self, entry: LdapEntry) -> Result<(), DitError> {
        let key = Self::tree_key(&entry.dn);
        if !self.entries.contains_key(&key) {
            return Err(DitError::NoSuchObject(entry.dn.to_string()));
        }
        if let Some(old) = self.entries.remove(&key) {
            self.unindex_entry(&key, &old);
        }
        self.index_entry(&key, &entry);
        self.entries.insert(key, entry);
        Ok(())
    }

    /// Rename a leaf entry's RDN (LDAP `modifyRDN`).
    pub fn modify_rdn(&mut self, dn: &Dn, new_rdn: Rdn) -> Result<Dn, DitError> {
        if self.has_children(dn) {
            return Err(DitError::NotAllowedOnNonLeaf(dn.to_string()));
        }
        let parent = dn.parent().unwrap_or_else(Dn::root);
        let new_dn = parent.child(new_rdn.clone());
        if self.contains(&new_dn) {
            return Err(DitError::AlreadyExists(new_dn.to_string()));
        }
        let mut entry = self.delete(dn)?;
        entry.dn = new_dn.clone();
        // The new RDN's attribute value must be present on the entry.
        if !entry.has_value(&new_rdn.attr, &new_rdn.value) {
            entry.add_value(&new_rdn.attr, new_rdn.value.clone());
        }
        let new_key = Self::tree_key(&new_dn);
        self.index_entry(&new_key, &entry);
        self.entries.insert(new_key, entry);
        Ok(new_dn)
    }

    /// The most selective indexed read strategy for `filter`: the smallest
    /// equality posting among conjuncts that *must* hold for a match.
    /// Recurses through `And` only — `Or`/`Not` arms don't constrain the
    /// candidate set.
    fn filter_posting(&self, filter: &LdapFilter) -> Posting<'_> {
        match filter {
            LdapFilter::Equality(attr, value) => {
                match self
                    .eq_index
                    .get(&(attr.to_ascii_lowercase(), value.to_ascii_lowercase()))
                {
                    Some(set) => Posting::Keys(set),
                    None => Posting::Empty,
                }
            }
            LdapFilter::And(fs) => {
                let mut best = Posting::Unindexed;
                for f in fs {
                    match self.filter_posting(f) {
                        Posting::Empty => return Posting::Empty,
                        Posting::Keys(set) => {
                            best = match best {
                                Posting::Keys(b) if b.len() <= set.len() => Posting::Keys(b),
                                _ => Posting::Keys(set),
                            };
                        }
                        Posting::Unindexed => {}
                    }
                }
                best
            }
            _ => Posting::Unindexed,
        }
    }

    /// Search from `base` with the given scope and filter.
    ///
    /// Index-driven: an equality conjunct in the filter turns the search
    /// into a walk of that posting set; otherwise `OneLevel`/`Subtree`
    /// scan only the base's contiguous key range and `Base` is a direct
    /// map probe. Every candidate is verified against the real scope
    /// predicate and the full filter.
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &LdapFilter,
        size_limit: usize,
    ) -> Result<Vec<&LdapEntry>, DitError> {
        if !base.is_root() && !self.contains(base) {
            return Err(DitError::NoSuchObject(base.to_string()));
        }
        let in_scope = |e: &LdapEntry| match scope {
            Scope::Base => e.dn == *base,
            Scope::OneLevel => e.dn.is_child_of(base),
            Scope::Subtree => e.dn.is_under(base),
        };
        let cap = if size_limit == 0 {
            usize::MAX
        } else {
            size_limit
        };
        let mut out = Vec::new();
        let posting = self.filter_posting(filter);
        // Record which read path served the search: a posting-set walk
        // (index) or the scope range scan. Handles are cached in a static
        // so the hot path pays one atomic increment, not a registry lock.
        let [index_reads, scan_reads] = read_path_counters();
        if matches!(posting, Posting::Unindexed) {
            scan_reads.inc();
        } else {
            index_reads.inc();
        }
        match posting {
            Posting::Empty => {}
            Posting::Keys(keys) => {
                for key in keys {
                    let Some(e) = self.entries.get(key) else {
                        continue;
                    };
                    if in_scope(e) && filter.matches(e) {
                        out.push(e);
                        if out.len() >= cap {
                            break;
                        }
                    }
                }
            }
            Posting::Unindexed => match scope {
                Scope::Base => {
                    // Keyed probe; `in_scope` re-checks exact (case-
                    // preserving) DN equality, matching the scan semantics.
                    if let Some(e) = self.get(base) {
                        if in_scope(e) && filter.matches(e) {
                            out.push(e);
                        }
                    }
                }
                Scope::OneLevel | Scope::Subtree if base.is_root() => {
                    for e in self.entries.values() {
                        if in_scope(e) && filter.matches(e) {
                            out.push(e);
                            if out.len() >= cap {
                                break;
                            }
                        }
                    }
                }
                Scope::OneLevel | Scope::Subtree => {
                    let base_key = Self::tree_key(base);
                    let mut prefix = base_key.clone();
                    prefix.push(KEY_SEP);
                    let range = self
                        .entries
                        .range(base_key.clone()..)
                        .take_while(|(k, _)| **k == base_key || k.starts_with(&prefix));
                    for (_, e) in range {
                        if in_scope(e) && filter.matches(e) {
                            out.push(e);
                            if out.len() >= cap {
                                break;
                            }
                        }
                    }
                }
            },
        }
        Ok(out)
    }

    /// Reference implementation of [`Dit::search`]: a linear scan over
    /// every entry, ignoring both indexes. Retained as the oracle the
    /// property tests and the `readpath_scale` bench compare against.
    pub fn search_scan(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &LdapFilter,
        size_limit: usize,
    ) -> Result<Vec<&LdapEntry>, DitError> {
        if !base.is_root() && !self.contains(base) {
            return Err(DitError::NoSuchObject(base.to_string()));
        }
        let mut out = Vec::new();
        for e in self.entries.values() {
            let in_scope = match scope {
                Scope::Base => e.dn == *base,
                Scope::OneLevel => e.dn.is_child_of(base),
                Scope::Subtree => e.dn.is_under(base),
            };
            if in_scope && filter.matches(e) {
                out.push(e);
                if size_limit > 0 && out.len() >= size_limit {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Iterate all entries (diagnostics, persistence), root-first.
    pub fn iter(&self) -> impl Iterator<Item = &LdapEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> Dit {
        let mut d = Dit::new();
        d.add(
            LdapEntry::new(Dn::parse("o=emory").unwrap())
                .with("objectClass", "organization")
                .with("o", "emory"),
        )
        .unwrap();
        d.add(
            LdapEntry::new(Dn::parse("ou=mathcs,o=emory").unwrap())
                .with("objectClass", "organizationalUnit")
                .with("ou", "mathcs"),
        )
        .unwrap();
        d.add(
            LdapEntry::new(Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap())
                .with("objectClass", "device")
                .with("cn", "mokey"),
        )
        .unwrap();
        d
    }

    #[test]
    fn add_requires_parent() {
        let mut d = Dit::new();
        let orphan = LdapEntry::new(Dn::parse("cn=x,ou=nowhere,o=gone").unwrap());
        assert!(matches!(d.add(orphan), Err(DitError::NoSuchParent(_))));
        // Suffix at depth 1 is fine.
        assert!(d.add(LdapEntry::new(Dn::parse("o=emory").unwrap())).is_ok());
    }

    #[test]
    fn add_rejects_duplicate() {
        let mut d = seeded();
        let dup = LdapEntry::new(Dn::parse("O=EMORY").unwrap());
        assert!(matches!(d.add(dup), Err(DitError::AlreadyExists(_))));
    }

    #[test]
    fn delete_leaf_only() {
        let mut d = seeded();
        let ou = Dn::parse("ou=mathcs,o=emory").unwrap();
        assert!(matches!(
            d.delete(&ou),
            Err(DitError::NotAllowedOnNonLeaf(_))
        ));
        d.delete(&Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap())
            .unwrap();
        d.delete(&ou).unwrap();
        assert_eq!(d.len(), 1);
        assert!(matches!(d.delete(&ou), Err(DitError::NoSuchObject(_))));
    }

    #[test]
    fn scoped_search() {
        let d = seeded();
        let base = Dn::parse("o=emory").unwrap();
        let all = LdapFilter::match_all();

        let hits = d.search(&base, Scope::Base, &all, 0).unwrap();
        assert_eq!(hits.len(), 1);

        let hits = d.search(&base, Scope::OneLevel, &all, 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn.to_string(), "ou=mathcs,o=emory");

        let hits = d.search(&base, Scope::Subtree, &all, 0).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn search_filter_and_limit() {
        let d = seeded();
        let base = Dn::parse("o=emory").unwrap();
        let f = LdapFilter::parse("(objectClass=device)").unwrap();
        let hits = d.search(&base, Scope::Subtree, &f, 0).unwrap();
        assert_eq!(hits.len(), 1);
        let all = LdapFilter::match_all();
        let hits = d.search(&base, Scope::Subtree, &all, 2).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_missing_base_errors() {
        let d = seeded();
        let err = d
            .search(
                &Dn::parse("o=nowhere").unwrap(),
                Scope::Subtree,
                &LdapFilter::match_all(),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, DitError::NoSuchObject(_)));
    }

    #[test]
    fn modify_rdn_renames_leaf() {
        let mut d = seeded();
        let old = Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap();
        let new_dn = d.modify_rdn(&old, Rdn::new("cn", "monkey")).unwrap();
        assert_eq!(new_dn.to_string(), "cn=monkey,ou=mathcs,o=emory");
        assert!(!d.contains(&old));
        let e = d.get(&new_dn).unwrap();
        assert!(e.has_value("cn", "monkey"), "RDN value added to entry");
    }

    #[test]
    fn modify_rdn_conflicts_and_nonleaf() {
        let mut d = seeded();
        d.add(
            LdapEntry::new(Dn::parse("cn=taken,ou=mathcs,o=emory").unwrap())
                .with("objectClass", "device")
                .with("cn", "taken"),
        )
        .unwrap();
        let mokey = Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap();
        assert!(matches!(
            d.modify_rdn(&mokey, Rdn::new("cn", "taken")),
            Err(DitError::AlreadyExists(_))
        ));
        let ou = Dn::parse("ou=mathcs,o=emory").unwrap();
        assert!(matches!(
            d.modify_rdn(&ou, Rdn::new("ou", "x")),
            Err(DitError::NotAllowedOnNonLeaf(_))
        ));
    }

    #[test]
    fn update_replaces_content() {
        let mut d = seeded();
        let dn = Dn::parse("cn=mokey,ou=mathcs,o=emory").unwrap();
        let mut e = d.get(&dn).unwrap().clone();
        e.add_value("description", "test monkey");
        d.update(e).unwrap();
        assert_eq!(
            d.get(&dn).unwrap().first("description"),
            Some("test monkey")
        );
        let ghost = LdapEntry::new(Dn::parse("cn=ghost,o=emory").unwrap());
        assert!(matches!(d.update(ghost), Err(DitError::NoSuchObject(_))));
    }
}
