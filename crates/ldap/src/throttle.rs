//! The anti-DoS read throttle.
//!
//! The paper measured OpenLDAP read throughput flattening near 800
//! operations/second while CPU, network and memory stayed unsaturated, and
//! conjectured "some automatic slowdown mechanism, such as a countermeasure
//! against Denial-of-Service attacks". [`ReadThrottle`] is that mechanism,
//! made explicit: a fixed-window rate limiter that, once the window's quota
//! is consumed, *delays* (rather than rejects) further requests to the next
//! window boundary — producing exactly the observed plateau: latency grows
//! with offered load while goodput stays pinned at the cap.

/// Admission decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Serve immediately.
    Now,
    /// Serve after the given delay (milliseconds).
    After(u64),
}

/// Fixed-window read rate limiter.
#[derive(Debug, Clone)]
pub struct ReadThrottle {
    max_per_window: u64,
    window_ms: u64,
    /// Start of the window currently being filled (absolute ms).
    window_start: u64,
    /// Requests admitted into the window starting at `window_start`.
    admitted: u64,
}

impl ReadThrottle {
    /// Limit to `max_per_sec` reads per second.
    pub fn per_second(max_per_sec: u64) -> Self {
        ReadThrottle {
            max_per_window: max_per_sec.max(1),
            window_ms: 1000,
            window_start: 0,
            admitted: 0,
        }
    }

    /// The configured cap (requests per window).
    pub fn limit(&self) -> u64 {
        self.max_per_window
    }

    /// Decide admission for a request arriving at `now_ms`. When the
    /// current window's quota is exhausted, the request is scheduled into
    /// the earliest window with room, preserving arrival order. Requests
    /// already promised into future windows keep their reservations when
    /// the clock rolls forward.
    pub fn admit(&mut self, now_ms: u64) -> Admit {
        if now_ms >= self.window_start + self.window_ms {
            // Roll the window forward, carrying over reservations that
            // earlier overflow requests made against future windows.
            let windows_passed = (now_ms - self.window_start) / self.window_ms;
            self.window_start += windows_passed * self.window_ms;
            self.admitted = self
                .admitted
                .saturating_sub(windows_passed * self.max_per_window);
        }
        if self.admitted < self.max_per_window {
            self.admitted += 1;
            return Admit::Now;
        }
        // Full: the request lands in the window holding its reservation.
        let windows_ahead = self.admitted / self.max_per_window;
        let target = self.window_start + windows_ahead * self.window_ms;
        self.admitted += 1;
        Admit::After(target.saturating_sub(now_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_limit_always_now() {
        let mut t = ReadThrottle::per_second(10);
        for i in 0..10 {
            assert_eq!(t.admit(i * 10), Admit::Now);
        }
    }

    #[test]
    fn over_limit_delays_to_next_window() {
        let mut t = ReadThrottle::per_second(2);
        assert_eq!(t.admit(100), Admit::Now);
        assert_eq!(t.admit(200), Admit::Now);
        // Third request in the same second waits until t=1000.
        assert_eq!(t.admit(300), Admit::After(700));
        // Fourth also lands in the next window (room for 2 there).
        assert_eq!(t.admit(300), Admit::After(700));
        // Fifth spills to the window after that.
        assert_eq!(t.admit(300), Admit::After(1700));
    }

    #[test]
    fn window_rolls_forward() {
        let mut t = ReadThrottle::per_second(1);
        assert_eq!(t.admit(0), Admit::Now);
        assert_eq!(t.admit(1000), Admit::Now, "idle window admits again");
        // Overflow reservations survive the roll: the delayed request holds
        // window [2000,3000), so a request arriving there waits for [3000+).
        assert_eq!(t.admit(1001), Admit::After(999));
        assert_eq!(t.admit(2000), Admit::After(1000));
    }

    #[test]
    fn plateau_emerges_under_overload() {
        // Offer 2000 req/s for 5 s against an 800/s cap; goodput within a
        // window never exceeds the cap.
        let mut t = ReadThrottle::per_second(800);
        let mut served_at = Vec::new();
        for i in 0..10_000u64 {
            let now = i / 2; // one request every 0.5 ms
            match t.admit(now) {
                Admit::Now => served_at.push(now),
                Admit::After(d) => served_at.push(now + d),
            }
        }
        for w in 0..5 {
            let in_window = served_at
                .iter()
                .filter(|&&t| t >= w * 1000 && t < (w + 1) * 1000)
                .count();
            assert!(in_window <= 800, "window {w} served {in_window}");
        }
    }
}
