//! Directory entries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::dn::Dn;

/// A multi-valued attribute (string values, per common LDAP usage).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LdapAttr {
    /// Original-case identifier.
    pub id: String,
    pub values: Vec<String>,
}

/// An entry: a DN plus attributes keyed case-insensitively.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LdapEntry {
    pub dn: Dn,
    attrs: BTreeMap<String, LdapAttr>,
}

impl LdapEntry {
    pub fn new(dn: Dn) -> Self {
        LdapEntry {
            dn,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute insertion (adds a value).
    pub fn with(mut self, id: &str, value: impl Into<String>) -> Self {
        self.add_value(id, value);
        self
    }

    pub fn add_value(&mut self, id: &str, value: impl Into<String>) {
        self.attrs
            .entry(id.to_ascii_lowercase())
            .or_insert_with(|| LdapAttr {
                id: id.to_string(),
                values: Vec::new(),
            })
            .values
            .push(value.into());
    }

    /// Replace an attribute's values wholesale; empty removes it.
    pub fn replace(&mut self, id: &str, values: Vec<String>) {
        let key = id.to_ascii_lowercase();
        if values.is_empty() {
            self.attrs.remove(&key);
        } else {
            self.attrs.insert(
                key,
                LdapAttr {
                    id: id.to_string(),
                    values,
                },
            );
        }
    }

    /// Remove specific values (removes the attribute when none remain);
    /// with an empty `values` list, removes the attribute entirely.
    pub fn remove_values(&mut self, id: &str, values: &[String]) {
        let key = id.to_ascii_lowercase();
        if values.is_empty() {
            self.attrs.remove(&key);
            return;
        }
        if let Some(attr) = self.attrs.get_mut(&key) {
            attr.values
                .retain(|v| !values.iter().any(|rm| rm.eq_ignore_ascii_case(v)));
            if attr.values.is_empty() {
                self.attrs.remove(&key);
            }
        }
    }

    pub fn get(&self, id: &str) -> Option<&LdapAttr> {
        self.attrs.get(&id.to_ascii_lowercase())
    }

    /// First value of an attribute.
    pub fn first(&self, id: &str) -> Option<&str> {
        self.get(id)
            .and_then(|a| a.values.first())
            .map(|s| s.as_str())
    }

    pub fn has(&self, id: &str) -> bool {
        self.attrs.contains_key(&id.to_ascii_lowercase())
    }

    /// Whether the attribute holds `value` (case-insensitive).
    pub fn has_value(&self, id: &str, value: &str) -> bool {
        self.get(id)
            .is_some_and(|a| a.values.iter().any(|v| v.eq_ignore_ascii_case(value)))
    }

    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    pub fn attrs(&self) -> impl Iterator<Item = &LdapAttr> {
        self.attrs.values()
    }

    /// A copy with only the requested attribute ids (`None` = all) — the
    /// projection applied to search results.
    pub fn project(&self, ids: Option<&[String]>) -> LdapEntry {
        match ids {
            None => self.clone(),
            Some(ids) => {
                let mut out = LdapEntry::new(self.dn.clone());
                for id in ids {
                    if let Some(a) = self.get(id) {
                        out.attrs.insert(id.to_ascii_lowercase(), a.clone());
                    }
                }
                out
            }
        }
    }

    /// Approximate serialized size (bytes), for cost models.
    pub fn size(&self) -> usize {
        self.dn.to_string().len()
            + self
                .attrs
                .values()
                .map(|a| a.id.len() + a.values.iter().map(|v| v.len()).sum::<usize>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> LdapEntry {
        LdapEntry::new(Dn::parse("cn=x,o=y").unwrap())
            .with("objectClass", "device")
            .with("objectClass", "top")
            .with("cn", "x")
    }

    #[test]
    fn multivalued_case_insensitive() {
        let e = entry();
        assert_eq!(e.get("OBJECTCLASS").unwrap().values.len(), 2);
        assert!(e.has_value("objectclass", "TOP"));
        assert!(!e.has_value("objectclass", "person"));
        assert_eq!(e.first("cn"), Some("x"));
        assert_eq!(e.attr_count(), 2);
    }

    #[test]
    fn replace_and_remove() {
        let mut e = entry();
        e.replace("cn", vec!["y".into()]);
        assert_eq!(e.first("cn"), Some("y"));
        e.replace("cn", vec![]);
        assert!(!e.has("cn"));

        e.remove_values("objectClass", &["top".into()]);
        assert_eq!(e.get("objectclass").unwrap().values, vec!["device"]);
        e.remove_values("objectClass", &[]);
        assert!(!e.has("objectclass"));
    }

    #[test]
    fn remove_last_value_drops_attr() {
        let mut e = LdapEntry::new(Dn::root()).with("a", "1");
        e.remove_values("a", &["1".into()]);
        assert!(!e.has("a"));
    }

    #[test]
    fn projection() {
        let e = entry();
        let p = e.project(Some(&["cn".to_string()]));
        assert!(p.has("cn") && !p.has("objectclass"));
        let all = e.project(None);
        assert_eq!(all, e);
    }
}
