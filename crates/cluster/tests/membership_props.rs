//! Property tests for the membership state machine. The SWIM merge rules
//! only keep a cluster convergent if they behave like a lattice join:
//! incarnations never run backwards, suspicion is refuted exclusively by
//! an incarnation bump, quarantine is a hard time gate no rumour can
//! tunnel through, and merging the same rumours in any order lands every
//! node on the same belief.

use proptest::prelude::*;

use rndi_cluster::MembershipTable;
use rndi_net::proto::{MemberEntry, MemberState};

const QUARANTINE_MS: u64 = 1_000;

fn entry(name: &str, incarnation: u64, state: MemberState) -> MemberEntry {
    MemberEntry {
        name: name.to_string(),
        endpoint: format!("{name}:1"),
        incarnation,
        state,
    }
}

fn arb_state() -> impl Strategy<Value = MemberState> {
    prop_oneof![
        Just(MemberState::Alive),
        Just(MemberState::Suspect),
        Just(MemberState::Dead),
        Just(MemberState::Quarantined),
    ]
}

/// An arbitrary rumour about peer `b`: any incarnation, any state.
fn arb_rumour() -> impl Strategy<Value = MemberEntry> {
    (1u64..16, arb_state()).prop_map(|(inc, state)| entry("b", inc, state))
}

proptest! {
    /// A peer's stored incarnation never decreases, whatever rumours
    /// arrive in whatever order — stale news can never rewind a record.
    #[test]
    fn incarnation_is_monotone(rumours in proptest::collection::vec(arb_rumour(), 1..40)) {
        let mut t = MembershipTable::new("a", "a:1", QUARANTINE_MS);
        let mut high = 0u64;
        for (i, r) in rumours.iter().enumerate() {
            t.observe(r, i as u64);
            let now = t.get("b").map_or(0, |m| m.incarnation);
            prop_assert!(now >= high, "incarnation went {high} -> {now}");
            high = now;
        }
    }

    /// This node's own incarnation is monotone too: rumours about self
    /// either change nothing or force a refutation bump *past* them.
    #[test]
    fn self_incarnation_is_monotone_and_refutes(
        rumours in proptest::collection::vec((1u64..16, arb_state()), 1..40),
    ) {
        let mut t = MembershipTable::new("a", "a:1", QUARANTINE_MS);
        for (i, (inc, state)) in rumours.iter().enumerate() {
            let before = t.incarnation();
            t.observe(&entry("a", *inc, *state), i as u64);
            prop_assert!(t.incarnation() >= before);
            // Whatever was said, this node never believes itself down.
            prop_assert_eq!(t.me().state, MemberState::Alive);
            // A graver-than-Alive rumour at inc >= ours must be outranked.
            if *state > MemberState::Alive && *inc >= before {
                prop_assert!(t.incarnation() > *inc, "bump must leapfrog the rumour");
            }
        }
    }

    /// Once Suspect at incarnation `i`, no Alive claim at incarnation
    /// <= `i` restores Alive — refutation happens only via a bump.
    #[test]
    fn suspicion_refuted_only_by_bump(suspect_inc in 1u64..8, claim_inc in 1u64..16) {
        let mut t = MembershipTable::new("a", "a:1", QUARANTINE_MS);
        t.observe(&entry("b", suspect_inc, MemberState::Suspect), 0);
        t.observe(&entry("b", claim_inc, MemberState::Alive), 1);
        let m = t.get("b").expect("b is known");
        if claim_inc > suspect_inc {
            prop_assert_eq!(m.state, MemberState::Alive);
            prop_assert_eq!(m.incarnation, claim_inc);
        } else {
            prop_assert_eq!(m.state, MemberState::Suspect);
            prop_assert_eq!(m.incarnation, suspect_inc);
        }
    }

    /// Quarantine is strictly time-gated: after a local Dead verdict, no
    /// Alive claim lands before the cooldown expires — no matter how high
    /// its incarnation — and after the cooldown a claim lands exactly
    /// when it carries a strictly higher incarnation.
    #[test]
    fn quarantine_readmits_only_after_cooldown_and_bump(
        died_at in 0u64..500,
        claim_inc in 1u64..16,
        claim_delay in 0u64..3 * QUARANTINE_MS,
    ) {
        let mut t = MembershipTable::new("a", "a:1", QUARANTINE_MS);
        let dead_inc = 3u64;
        t.observe(&entry("b", dead_inc, MemberState::Alive), died_at);
        t.demote("b", MemberState::Dead, died_at);
        let claim_at = died_at + claim_delay;
        t.tick(claim_at);
        let admitted = t.observe(&entry("b", claim_inc, MemberState::Alive), claim_at);
        let cooled = claim_at >= died_at + QUARANTINE_MS;
        let bumped = claim_inc > dead_inc;
        prop_assert_eq!(
            admitted,
            cooled && bumped,
            "died_at={} claim_at={} inc {} vs {}: cooldown and bump are both required",
            died_at, claim_at, claim_inc, dead_inc
        );
        let expect = if cooled && bumped {
            MemberState::Alive
        } else if cooled {
            MemberState::Dead
        } else {
            MemberState::Quarantined
        };
        prop_assert_eq!(t.get("b").expect("known").state, expect);
    }

    /// Merge order independence: two nodes that hear the same rumours in
    /// different orders converge on the same `(incarnation, state)`
    /// belief. (Endpoints are excluded: at equal belief the *latest*
    /// rumour's endpoint wins by design, to carry restarts to new ports.)
    #[test]
    fn merge_is_order_independent(
        rumours in proptest::collection::vec(arb_rumour(), 1..24),
        seed in 0u64..u64::MAX,
    ) {
        let mut forward = MembershipTable::new("a", "a:1", QUARANTINE_MS);
        for r in &rumours {
            forward.observe(r, 0);
        }
        // A deterministic shuffle of the same rumours.
        let mut shuffled = rumours.clone();
        let mut s = seed | 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut backward = MembershipTable::new("a", "a:1", QUARANTINE_MS);
        for r in &shuffled {
            backward.observe(r, 0);
        }
        let f = forward.get("b").expect("heard at least one rumour");
        let b = backward.get("b").expect("heard at least one rumour");
        prop_assert_eq!(f.incarnation, b.incarnation);
        prop_assert_eq!(f.state, b.state);
    }
}
