//! The membership table: what this node believes about every peer.
//!
//! Beliefs are SWIM-style `(incarnation, state)` pairs merged under a
//! total precedence order, so any two nodes exchanging tables converge
//! on the same belief regardless of message order:
//!
//! 1. a **higher incarnation** wins outright — the node itself is the
//!    only producer of its incarnation, so a higher number is always
//!    fresher first-hand news;
//! 2. at **equal incarnation** the graver state wins
//!    (`Alive < Suspect < Dead < Quarantined`) — third parties can only
//!    push a node *down* the lifecycle; only the node itself (by bumping
//!    its incarnation) can refute suspicion.
//!
//! Refutation is automatic: when a node sees *itself* reported Suspect or
//! worse at an incarnation at least its own, it adopts
//! `incarnation + 1` and re-asserts Alive, which outranks the rumour
//! everywhere it has spread. A restarted node rejoins the same way — its
//! first gossip exchange teaches it that the cluster holds it Dead, and
//! it bumps — but the bump alone is not enough: the [`QuarantineTable`]
//! additionally time-gates re-admission until the death's cooldown has
//! elapsed, so a crash-looping process cannot churn views on every lap.

use std::collections::BTreeMap;

use rndi_net::proto::{MemberEntry, MemberState};

use crate::quarantine::QuarantineTable;

/// One peer's record.
#[derive(Clone, Debug)]
pub struct MemberInfo {
    pub name: String,
    /// `host:port` the peer's gossip/data server listens on.
    pub endpoint: String,
    pub incarnation: u64,
    pub state: MemberState,
    /// When (caller clock, ms) the current state was recorded locally.
    pub since_ms: u64,
}

impl MemberInfo {
    pub fn entry(&self) -> MemberEntry {
        MemberEntry {
            name: self.name.clone(),
            endpoint: self.endpoint.clone(),
            incarnation: self.incarnation,
            state: self.state,
        }
    }
}

/// This node's view of the cluster membership.
pub struct MembershipTable {
    me: String,
    members: BTreeMap<String, MemberInfo>,
    quarantine: QuarantineTable,
    quarantine_ms: u64,
}

impl MembershipTable {
    pub fn new(
        me: impl Into<String>,
        endpoint: impl Into<String>,
        quarantine_ms: u64,
    ) -> MembershipTable {
        let me = me.into();
        let mut members = BTreeMap::new();
        members.insert(
            me.clone(),
            MemberInfo {
                name: me.clone(),
                endpoint: endpoint.into(),
                incarnation: 1,
                state: MemberState::Alive,
                since_ms: 0,
            },
        );
        MembershipTable {
            me,
            members,
            quarantine: QuarantineTable::new(),
            quarantine_ms,
        }
    }

    pub fn me(&self) -> &MemberInfo {
        self.members.get(&self.me).expect("self is always present")
    }

    pub fn my_name(&self) -> &str {
        &self.me
    }

    /// Record where this node actually listens (known only after the
    /// server binds its — possibly ephemeral — port).
    pub fn set_my_endpoint(&mut self, endpoint: impl Into<String>) {
        let me = self.members.get_mut(&self.me).expect("self present");
        me.endpoint = endpoint.into();
    }

    pub fn incarnation(&self) -> u64 {
        self.me().incarnation
    }

    pub fn get(&self, name: &str) -> Option<&MemberInfo> {
        self.members.get(name)
    }

    /// Every record, for gossip exchange (deterministic name order).
    pub fn entries(&self) -> Vec<MemberEntry> {
        self.members.values().map(MemberInfo::entry).collect()
    }

    /// Names in `state`, deterministic order.
    pub fn in_state(&self, state: MemberState) -> Vec<&MemberInfo> {
        self.members.values().filter(|m| m.state == state).collect()
    }

    pub fn count(&self, state: MemberState) -> usize {
        self.members.values().filter(|m| m.state == state).count()
    }

    /// Every name ever seen, whatever its state — the denominator for
    /// quorum ("strict majority of known member names").
    pub fn known_count(&self) -> usize {
        self.members.len()
    }

    /// Merge one gossiped record; returns `true` if anything changed.
    pub fn observe(&mut self, entry: &MemberEntry, now_ms: u64) -> bool {
        if entry.name == self.me {
            return self.observe_self(entry);
        }
        match self.members.get_mut(&entry.name) {
            None => {
                if entry.state == MemberState::Alive && !self.quarantine.admit(&entry.name, now_ms)
                {
                    return false;
                }
                self.members.insert(
                    entry.name.clone(),
                    MemberInfo {
                        name: entry.name.clone(),
                        endpoint: entry.endpoint.clone(),
                        incarnation: entry.incarnation,
                        state: entry.state,
                        since_ms: now_ms,
                    },
                );
                true
            }
            Some(existing) => {
                let fresher = entry.incarnation > existing.incarnation
                    || (entry.incarnation == existing.incarnation && entry.state > existing.state);
                if !fresher {
                    // Still take an endpoint update at equal belief: a
                    // restarted node reuses its incarnation bump to carry
                    // the new port.
                    if entry.incarnation == existing.incarnation
                        && entry.state == existing.state
                        && !entry.endpoint.is_empty()
                        && entry.endpoint != existing.endpoint
                    {
                        existing.endpoint = entry.endpoint.clone();
                        return true;
                    }
                    return false;
                }
                // A node coming back Alive must pass quarantine: the
                // bumped incarnation got it past merge precedence, but
                // only the elapsed cooldown re-admits it.
                let rejoining = entry.state == MemberState::Alive
                    && matches!(existing.state, MemberState::Dead | MemberState::Quarantined);
                if rejoining && !self.quarantine.admit(&entry.name, now_ms) {
                    return false;
                }
                existing.incarnation = entry.incarnation;
                existing.state = entry.state;
                if !entry.endpoint.is_empty() {
                    existing.endpoint = entry.endpoint.clone();
                }
                existing.since_ms = now_ms;
                true
            }
        }
    }

    /// Gossip about *me*: refute anything graver than Alive at my
    /// incarnation or newer by bumping past it.
    fn observe_self(&mut self, entry: &MemberEntry) -> bool {
        let my_inc = self.incarnation();
        if entry.state > MemberState::Alive && entry.incarnation >= my_inc {
            let me = self.members.get_mut(&self.me).expect("self present");
            me.incarnation = entry.incarnation + 1;
            me.state = MemberState::Alive;
            return true;
        }
        false
    }

    /// Local failure-detector verdict: push `name` down the lifecycle.
    /// Transitions to `Dead` start the quarantine cooldown. Returns
    /// `true` if the state actually changed.
    pub fn demote(&mut self, name: &str, to: MemberState, now_ms: u64) -> bool {
        if name == self.me {
            return false;
        }
        let quarantine_ms = self.quarantine_ms;
        let Some(m) = self.members.get_mut(name) else {
            return false;
        };
        if to <= m.state {
            return false;
        }
        m.state = to;
        m.since_ms = now_ms;
        if to >= MemberState::Dead {
            let incarnation = m.incarnation;
            self.quarantine
                .bar(name, incarnation, now_ms + quarantine_ms);
        }
        true
    }

    /// Housekeeping: expire quarantine bars and roll `Dead` records over
    /// to `Quarantined` while their bar is active (the gossiped state
    /// that tells the rest of the cluster "not yet").
    pub fn tick(&mut self, now_ms: u64) {
        for m in self.members.values_mut() {
            if m.state == MemberState::Dead && self.quarantine.is_barred(&m.name, now_ms) {
                m.state = MemberState::Quarantined;
                m.since_ms = now_ms;
            } else if m.state == MemberState::Quarantined
                && !self.quarantine.is_barred(&m.name, now_ms)
            {
                // Cooldown served; downgrade to plain Dead so an
                // unchanged-incarnation rejoin is possible again.
                m.state = MemberState::Dead;
                m.since_ms = now_ms;
            }
        }
        self.quarantine.sweep(now_ms);
    }

    pub fn quarantine(&self) -> &QuarantineTable {
        &self.quarantine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, inc: u64, state: MemberState) -> MemberEntry {
        MemberEntry {
            name: name.to_string(),
            endpoint: format!("{name}:1"),
            incarnation: inc,
            state,
        }
    }

    #[test]
    fn higher_incarnation_wins() {
        let mut t = MembershipTable::new("a", "a:1", 1_000);
        assert!(t.observe(&entry("b", 1, MemberState::Alive), 0));
        assert!(t.observe(&entry("b", 2, MemberState::Alive), 0));
        assert!(
            !t.observe(&entry("b", 1, MemberState::Dead), 0),
            "stale incarnation ignored even when graver"
        );
        assert_eq!(t.get("b").unwrap().incarnation, 2);
    }

    #[test]
    fn same_incarnation_graver_state_wins() {
        let mut t = MembershipTable::new("a", "a:1", 1_000);
        t.observe(&entry("b", 1, MemberState::Alive), 0);
        assert!(t.observe(&entry("b", 1, MemberState::Suspect), 0));
        assert!(
            !t.observe(&entry("b", 1, MemberState::Alive), 0),
            "cannot refute suspicion without a bump"
        );
        assert!(t.observe(&entry("b", 2, MemberState::Alive), 0));
        assert_eq!(t.get("b").unwrap().state, MemberState::Alive);
    }

    #[test]
    fn self_suspicion_is_refuted_by_bump() {
        let mut t = MembershipTable::new("a", "a:1", 1_000);
        assert_eq!(t.incarnation(), 1);
        assert!(t.observe(&entry("a", 1, MemberState::Suspect), 0));
        assert_eq!(t.incarnation(), 2);
        assert_eq!(t.me().state, MemberState::Alive);
        // A rumour about an even newer incarnation is leapfrogged too.
        assert!(t.observe(&entry("a", 7, MemberState::Dead), 0));
        assert_eq!(t.incarnation(), 8);
    }

    #[test]
    fn dead_rejoin_gated_by_quarantine() {
        let mut t = MembershipTable::new("a", "a:1", 1_000);
        t.observe(&entry("b", 3, MemberState::Alive), 0);
        assert!(t.demote("b", MemberState::Suspect, 10));
        assert!(t.demote("b", MemberState::Dead, 20));
        // Alive claims bounce until the cooldown (died at 20, bar to
        // 1020) — even with a bumped incarnation…
        assert!(!t.observe(&entry("b", 3, MemberState::Alive), 500));
        assert!(!t.observe(&entry("b", 4, MemberState::Alive), 600));
        // (tick rolls Dead into the gossiped Quarantined state)
        t.tick(700);
        assert_eq!(t.get("b").unwrap().state, MemberState::Quarantined);
        // …and the bumped incarnation re-admits once it has elapsed.
        assert!(t.observe(&entry("b", 4, MemberState::Alive), 1_020));
        assert_eq!(t.get("b").unwrap().state, MemberState::Alive);
    }

    #[test]
    fn cooldown_expiry_still_requires_a_bump() {
        let mut t = MembershipTable::new("a", "a:1", 1_000);
        t.observe(&entry("b", 3, MemberState::Alive), 0);
        t.demote("b", MemberState::Dead, 0);
        t.tick(100);
        assert_eq!(t.get("b").unwrap().state, MemberState::Quarantined);
        t.tick(1_000);
        assert_eq!(t.get("b").unwrap().state, MemberState::Dead);
        // Merge precedence: a same-incarnation alive claim never
        // resurrects a Dead record, cooldown or not.
        assert!(!t.observe(&entry("b", 3, MemberState::Alive), 1_001));
        assert!(t.observe(&entry("b", 4, MemberState::Alive), 1_001));
    }

    #[test]
    fn demote_never_targets_self_and_never_promotes() {
        let mut t = MembershipTable::new("a", "a:1", 1_000);
        assert!(!t.demote("a", MemberState::Dead, 0));
        t.observe(&entry("b", 1, MemberState::Dead), 0);
        assert!(!t.demote("b", MemberState::Suspect, 0));
    }
}
