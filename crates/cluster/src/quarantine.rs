//! Quarantine: keeping flapping nodes out until they cool down.
//!
//! A node declared dead is *barred* for a cooldown window, and the bar is
//! strictly time-gated: **no** claim of life re-admits the name before
//! the window elapses, not even one carrying a bumped incarnation. A
//! flapping process that crashes and restarts in a tight loop therefore
//! costs the cluster one view change per cooldown, not one per flap.
//!
//! The incarnation recorded with the bar is the one the node died at;
//! after the cooldown the membership merge precedence still requires a
//! strictly higher incarnation to resurrect a Dead record — which the
//! restarted node acquires automatically by refuting the death rumour
//! (see [`MembershipTable::observe`](crate::membership::MembershipTable::observe)).
//! Re-admission is thus exactly "cooldown served *and* incarnation
//! bumped".

use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug)]
struct Bar {
    /// The quarantine expires at this instant.
    until_ms: u64,
    /// The incarnation the node died at (diagnostics; merge precedence
    /// enforces the bump, the table enforces the time gate).
    incarnation: u64,
}

/// Names currently barred from re-admission.
#[derive(Clone, Debug, Default)]
pub struct QuarantineTable {
    barred: BTreeMap<String, Bar>,
}

impl QuarantineTable {
    pub fn new() -> QuarantineTable {
        QuarantineTable::default()
    }

    /// Bar `name` (which died at `incarnation`) until `until_ms`. A later
    /// bar for the same name extends/replaces the earlier one.
    pub fn bar(&mut self, name: &str, incarnation: u64, until_ms: u64) {
        let bar = Bar {
            until_ms,
            incarnation,
        };
        self.barred
            .entry(name.to_string())
            .and_modify(|b| {
                b.until_ms = b.until_ms.max(bar.until_ms);
                b.incarnation = b.incarnation.max(bar.incarnation);
            })
            .or_insert(bar);
    }

    /// May `name` rejoin at `now_ms`? Only when it was never barred or
    /// the cooldown has fully elapsed.
    pub fn admit(&self, name: &str, now_ms: u64) -> bool {
        !self.is_barred(name, now_ms)
    }

    /// Is `name` still inside an active cooldown window?
    pub fn is_barred(&self, name: &str, now_ms: u64) -> bool {
        self.barred
            .get(name)
            .is_some_and(|bar| now_ms < bar.until_ms)
    }

    /// The incarnation `name` died at, while barred.
    pub fn barred_incarnation(&self, name: &str) -> Option<u64> {
        self.barred.get(name).map(|b| b.incarnation)
    }

    /// Drop expired bars.
    pub fn sweep(&mut self, now_ms: u64) {
        self.barred.retain(|_, bar| now_ms < bar.until_ms);
    }

    pub fn len(&self) -> usize {
        self.barred.len()
    }

    pub fn is_empty(&self) -> bool {
        self.barred.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barred_until_cooldown() {
        let mut q = QuarantineTable::new();
        q.bar("n1", 3, 1_000);
        assert!(!q.admit("n1", 500));
        assert!(!q.admit("n1", 999));
        assert!(q.admit("n1", 1_000), "cooldown expiry re-admits");
        assert!(q.admit("other", 0), "unbarred names unaffected");
    }

    #[test]
    fn bump_does_not_bypass_the_clock() {
        let mut q = QuarantineTable::new();
        q.bar("n1", 3, 1_000);
        // The time gate is absolute; the incarnation is bookkeeping.
        assert!(!q.admit("n1", 999));
        assert_eq!(q.barred_incarnation("n1"), Some(3));
    }

    #[test]
    fn rebar_extends() {
        let mut q = QuarantineTable::new();
        q.bar("n1", 3, 1_000);
        q.bar("n1", 4, 800);
        assert!(!q.admit("n1", 900), "deadline kept at the max");
        assert_eq!(q.barred_incarnation("n1"), Some(4));
        q.sweep(1_000);
        assert!(q.is_empty());
    }
}
