//! The gossip engine: periodic anti-entropy over the membership table.
//!
//! Each round a node exchanges its full table (clusters here are tens of
//! nodes, not thousands — delta compression would be complexity without
//! a payoff) with every peer it believes reachable, piggybacking the
//! highest-sequence group **view** it knows. That piggyback is a safety
//! property, not an optimisation: liveness information never travels
//! without the view lineage, so a node healing from a partition cannot
//! learn "the others are back" without simultaneously learning that a
//! higher-sequence view exists — at which point it stops considering
//! itself a coordinator candidate and waits to be merged in.
//!
//! Every gossip contact doubles as a heartbeat into the per-peer
//! [`PhiFailureDetector`]; [`GossipEngine::tick`] turns accrued phi into
//! `Suspect` (≥ threshold) and `Dead` (≥ 2× threshold) demotions, which
//! then disseminate like any other rumour.

use std::collections::BTreeMap;

use rndi_net::proto::{GossipReply, GossipRequest, MemberEntry, MemberState, ViewSummary};

use crate::membership::MembershipTable;
use crate::phi::PhiFailureDetector;

/// Orders two view summaries: higher sequence wins; at equal sequence the
/// lexicographically smaller coordinator (first member) wins, so ties
/// resolve identically everywhere.
fn view_precedes(old: &ViewSummary, new: &ViewSummary) -> bool {
    if new.seq != old.seq {
        return new.seq > old.seq;
    }
    match (new.members.first(), old.members.first()) {
        (Some(n), Some(o)) => n < o,
        (Some(_), None) => true,
        _ => false,
    }
}

/// Dead/Quarantined peers are probed once every this many rounds (see
/// [`GossipEngine::gossip_targets`]).
const PROBE_EVERY: u64 = 8;

/// One node's gossip state.
pub struct GossipEngine {
    pub table: MembershipTable,
    phi: BTreeMap<String, PhiFailureDetector>,
    phi_threshold: f64,
    interval_ms: u64,
    /// Highest-precedence view heard anywhere (including installed
    /// locally); the lineage every coordinator decision anchors to.
    best_view: Option<ViewSummary>,
    /// Completed gossip rounds (exported as a counter).
    pub rounds: u64,
}

impl GossipEngine {
    pub fn new(table: MembershipTable, phi_threshold: f64, interval_ms: u64) -> GossipEngine {
        GossipEngine {
            table,
            phi: BTreeMap::new(),
            phi_threshold: phi_threshold.max(0.5),
            interval_ms: interval_ms.max(1),
            best_view: None,
            rounds: 0,
        }
    }

    /// The Sync request this node sends a peer.
    pub fn sync_request(&self) -> GossipRequest {
        GossipRequest::Sync {
            from: self.table.me().entry(),
            entries: self.table.entries(),
            view: self.best_view.clone(),
        }
    }

    /// Serve a peer's Sync: merge its table and view, heartbeat it, and
    /// answer with ours.
    pub fn handle_sync(
        &mut self,
        from: &MemberEntry,
        entries: &[MemberEntry],
        view: Option<&ViewSummary>,
        now_ms: u64,
    ) -> GossipReply {
        self.note_contact(&from.name, now_ms);
        self.merge(from, now_ms);
        for e in entries {
            self.merge(e, now_ms);
        }
        if let Some(v) = view {
            self.observe_view(v);
        }
        GossipReply::Sync {
            entries: self.table.entries(),
            view: self.best_view.clone(),
        }
    }

    /// Absorb the reply to a Sync we initiated. Only a substantive
    /// `Sync` reply counts as a heartbeat — a bare `Ack` (what a
    /// partition-simulating handler returns) proves a TCP path, not a
    /// cooperating peer.
    pub fn absorb_reply(&mut self, peer: &str, reply: &GossipReply, now_ms: u64) {
        if let GossipReply::Sync { entries, view } = reply {
            self.note_contact(peer, now_ms);
            for e in entries {
                self.merge(e, now_ms);
            }
            if let Some(v) = view {
                self.observe_view(v);
            }
        }
    }

    /// Merge one rumour, re-seeding the failure detector of any peer the
    /// merge brings (back) to `Alive`. A rumour of life carries no
    /// heartbeat, so without the reset the detector would still be
    /// scoring the silence that killed the peer in the first place and
    /// re-demote it on the next tick — a flap loop that churns views
    /// forever. Dropping the detector instead means phi stays 0 until
    /// the first *direct* contact restarts the clock.
    fn merge(&mut self, entry: &MemberEntry, now_ms: u64) {
        let before = self.table.get(&entry.name).map(|m| m.state);
        if !self.table.observe(entry, now_ms) {
            return;
        }
        let after = self.table.get(&entry.name).map(|m| m.state);
        if after == Some(MemberState::Alive) && before != Some(MemberState::Alive) {
            self.phi.remove(&entry.name);
        }
    }

    /// Record a heartbeat from `peer` (any authenticated contact counts:
    /// Sync either direction, or a group wire).
    pub fn note_contact(&mut self, peer: &str, now_ms: u64) {
        if peer == self.table.my_name() {
            return;
        }
        self.phi
            .entry(peer.to_string())
            .or_insert_with(|| PhiFailureDetector::new(self.interval_ms))
            .heartbeat(now_ms);
    }

    /// Fold a view (heard or installed) into the lineage.
    pub fn observe_view(&mut self, view: &ViewSummary) {
        match &self.best_view {
            Some(best) if !view_precedes(best, view) => {}
            _ => self.best_view = Some(view.clone()),
        }
    }

    pub fn best_view(&self) -> Option<&ViewSummary> {
        self.best_view.as_ref()
    }

    /// Current phi for `peer` (0.0 for unknown peers).
    pub fn phi_of(&self, peer: &str, now_ms: u64) -> f64 {
        self.phi.get(peer).map_or(0.0, |d| d.phi(now_ms))
    }

    /// Largest phi across peers this node still counts on (diagnostics).
    pub fn max_phi(&self, now_ms: u64) -> f64 {
        self.phi
            .values()
            .map(|d| d.phi(now_ms))
            .fold(0.0_f64, f64::max)
    }

    /// One failure-detection pass: accrue suspicion into demotions.
    /// Returns the names whose state changed.
    pub fn tick(&mut self, now_ms: u64) -> Vec<String> {
        let mut changed = Vec::new();
        let verdicts: Vec<(String, MemberState)> = self
            .phi
            .iter()
            .filter_map(|(name, det)| {
                let phi = det.phi(now_ms);
                if phi >= 2.0 * self.phi_threshold {
                    Some((name.clone(), MemberState::Dead))
                } else if phi >= self.phi_threshold {
                    Some((name.clone(), MemberState::Suspect))
                } else {
                    None
                }
            })
            .collect();
        for (name, state) in verdicts {
            if self.table.demote(&name, state, now_ms) {
                changed.push(name);
            }
        }
        self.table.tick(now_ms);
        changed
    }

    /// Peers worth gossiping with this round: everyone not written off.
    /// Suspects stay included so they can refute. Dead / Quarantined
    /// peers get a probe every [`PROBE_EVERY`]th round — without it two
    /// sides of a healed partition would each hold the other Dead, never
    /// initiate contact, and stay split forever; the probe delivers the
    /// "you are Dead" rumour that triggers the peer's refutation bump.
    pub fn gossip_targets(&self) -> Vec<(String, String)> {
        let probe_round = self.rounds.is_multiple_of(PROBE_EVERY);
        self.table
            .entries()
            .into_iter()
            .filter(|e| {
                e.name != self.table.my_name()
                    && (probe_round || matches!(e.state, MemberState::Alive | MemberState::Suspect))
            })
            .map(|e| (e.name, e.endpoint))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(name: &str) -> GossipEngine {
        GossipEngine::new(
            MembershipTable::new(name, format!("{name}:1"), 1_000),
            8.0,
            25,
        )
    }

    fn exchange(a: &mut GossipEngine, b: &mut GossipEngine, now: u64) {
        let GossipRequest::Sync {
            from,
            entries,
            view,
        } = a.sync_request()
        else {
            unreachable!()
        };
        let reply = b.handle_sync(&from, &entries, view.as_ref(), now);
        let peer = b.table.my_name().to_string();
        a.absorb_reply(&peer, &reply, now);
    }

    #[test]
    fn sync_converges_two_tables() {
        let mut a = engine("a");
        let mut b = engine("b");
        exchange(&mut a, &mut b, 10);
        assert_eq!(a.table.known_count(), 2);
        assert_eq!(b.table.known_count(), 2);
        assert_eq!(a.table.get("b").unwrap().endpoint, "b:1");
    }

    #[test]
    fn silence_accrues_to_suspect_then_dead() {
        let mut a = engine("a");
        let mut b = engine("b");
        for i in 0..10 {
            exchange(&mut a, &mut b, 10 + i * 25);
        }
        assert!(a.tick(260).is_empty(), "fresh contact: no demotion");
        // Silence: phi crosses threshold, then 2× threshold.
        // Mean interval 25ms: threshold 8 crosses at ~460ms of silence,
        // 2× threshold at ~921ms.
        let suspect_at = 235 + 500;
        let changed = a.tick(suspect_at);
        assert_eq!(changed, vec!["b".to_string()]);
        assert_eq!(a.table.get("b").unwrap().state, MemberState::Suspect);
        let dead_at = 235 + 1_000;
        a.tick(dead_at);
        assert!(a.table.get("b").unwrap().state >= MemberState::Dead);
    }

    #[test]
    fn view_lineage_prefers_higher_seq_then_smaller_coord() {
        let mut a = engine("a");
        a.observe_view(&ViewSummary {
            seq: 3,
            members: vec!["b".into()],
        });
        a.observe_view(&ViewSummary {
            seq: 2,
            members: vec!["a".into()],
        });
        assert_eq!(a.best_view().unwrap().seq, 3);
        a.observe_view(&ViewSummary {
            seq: 3,
            members: vec!["a".into()],
        });
        assert_eq!(a.best_view().unwrap().members[0], "a");
        a.observe_view(&ViewSummary {
            seq: 4,
            members: vec!["z".into()],
        });
        assert_eq!(a.best_view().unwrap().seq, 4);
    }

    #[test]
    fn gossip_targets_skip_dead_except_on_probe_rounds() {
        let mut a = engine("a");
        let mut b = engine("b");
        exchange(&mut a, &mut b, 10);
        a.rounds = 1;
        assert_eq!(a.gossip_targets(), vec![("b".into(), "b:1".into())]);
        a.table.demote("b", MemberState::Dead, 20);
        assert!(a.gossip_targets().is_empty(), "dead peers skipped");
        a.rounds = 2 * PROBE_EVERY;
        assert_eq!(
            a.gossip_targets(),
            vec![("b".into(), "b:1".into())],
            "probe rounds reach dead peers so a healed side can refute"
        );
    }
}
