//! Cluster-plane configuration, read from `rndi.cluster.*` keys.

use rndi_core::env::{keys, Environment};
use rndi_core::error::Result;

/// Everything one [`ClusterNode`](crate::node::ClusterNode) needs to
/// boot: its identity, where to find the cluster, and the failure
/// detector's temperament.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// This node's stable name (survives restarts; the unit of identity,
    /// incarnation, and quarantine).
    pub name: String,
    /// The replication group the node's HDNS replica joins.
    pub group: String,
    /// Seed endpoint (`host:port`) to gossip with first; `None` makes
    /// this node the seed.
    pub seed: Option<String>,
    /// Milliseconds between gossip rounds.
    pub gossip_interval_ms: u64,
    /// Phi at which a silent peer turns `Suspect` (`Dead` at 2×).
    pub phi_threshold: f64,
    /// Cooldown a dead node stays quarantined.
    pub quarantine_ms: u64,
    /// The environment the node's `NetServer`/`NetClient`s are built
    /// from (`rndi.net.*` keys: listen address, protocol, deadlines).
    pub env: Environment,
}

impl ClusterConfig {
    /// Read the `rndi.cluster.*` keys strictly (present-but-unparsable
    /// values error) with the documented defaults.
    pub fn from_env(
        name: impl Into<String>,
        group: impl Into<String>,
        env: &Environment,
    ) -> Result<ClusterConfig> {
        let seed = env
            .get(keys::CLUSTER_SEED)
            .filter(|s| !s.is_empty())
            .map(|s| s.to_string());
        // Phi is fractional; parse via f64 from the raw string.
        let phi_threshold = match env.get(keys::CLUSTER_PHI_THRESHOLD) {
            None => 8.0,
            Some(raw) => raw.trim().parse::<f64>().map_err(|_| {
                rndi_core::error::NamingError::ConfigurationError {
                    detail: format!("{}: not a number: {raw:?}", keys::CLUSTER_PHI_THRESHOLD),
                }
            })?,
        };
        Ok(ClusterConfig {
            name: name.into(),
            group: group.into(),
            seed,
            gossip_interval_ms: env
                .try_get_u64(keys::CLUSTER_GOSSIP_INTERVAL_MS, 25)?
                .max(1),
            phi_threshold,
            quarantine_ms: env.try_get_u64(keys::CLUSTER_QUARANTINE_MS, 2_000)?,
            env: env.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let env = Environment::new();
        let c = ClusterConfig::from_env("n0", "g", &env).unwrap();
        assert_eq!(c.seed, None);
        assert_eq!(c.gossip_interval_ms, 25);
        assert_eq!(c.phi_threshold, 8.0);
        assert_eq!(c.quarantine_ms, 2_000);

        let env = Environment::new()
            .with(keys::CLUSTER_SEED, "127.0.0.1:9000")
            .with(keys::CLUSTER_GOSSIP_INTERVAL_MS, "10")
            .with(keys::CLUSTER_PHI_THRESHOLD, "4.5")
            .with(keys::CLUSTER_QUARANTINE_MS, "300");
        let c = ClusterConfig::from_env("n1", "g", &env).unwrap();
        assert_eq!(c.seed.as_deref(), Some("127.0.0.1:9000"));
        assert_eq!(c.gossip_interval_ms, 10);
        assert_eq!(c.phi_threshold, 4.5);
        assert_eq!(c.quarantine_ms, 300);
    }

    #[test]
    fn bad_phi_is_a_config_error() {
        let env = Environment::new().with(keys::CLUSTER_PHI_THRESHOLD, "eight");
        assert!(ClusterConfig::from_env("n", "g", &env).is_err());
    }
}
