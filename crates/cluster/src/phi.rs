//! Phi-accrual failure detection (Hayashibara et al.).
//!
//! Instead of a binary timeout, the detector accrues *suspicion* on a
//! continuous scale: `phi(t)` is `-log10` of the probability that a peer
//! whose heartbeats historically arrived every `mean` milliseconds is
//! still alive after `t` milliseconds of silence. Under the exponential
//! inter-arrival model that is simply
//!
//! ```text
//! phi(t) = (t / mean) · log10(e) ≈ 0.4343 · t / mean
//! ```
//!
//! so a threshold of 8 tolerates ~18× the observed mean interval before
//! suspecting, and flappy links that deliver *some* heartbeats keep the
//! mean honest instead of resetting a timeout. The membership plane
//! suspects a peer at `phi ≥ threshold` and declares it dead at
//! `phi ≥ 2 × threshold`.

use std::collections::VecDeque;

/// log10(e): converts nats of silence to the phi scale.
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// Heartbeat samples kept per peer; enough to adapt, small enough that a
/// long-stable mean still reacts to a changed gossip cadence.
const WINDOW: usize = 32;

/// Suspicion accrual for one peer, fed by heartbeat arrival times.
#[derive(Clone, Debug)]
pub struct PhiFailureDetector {
    /// Observed inter-arrival gaps, milliseconds.
    window: VecDeque<u64>,
    /// Last heartbeat arrival, milliseconds on the caller's clock.
    last: Option<u64>,
    /// Mean assumed before any gap has been observed.
    initial_interval_ms: u64,
}

impl PhiFailureDetector {
    /// A detector that assumes `initial_interval_ms` between heartbeats
    /// until it has observed real gaps (use the gossip interval).
    pub fn new(initial_interval_ms: u64) -> PhiFailureDetector {
        PhiFailureDetector {
            window: VecDeque::new(),
            last: None,
            initial_interval_ms: initial_interval_ms.max(1),
        }
    }

    /// Record a heartbeat (any authenticated contact from the peer).
    pub fn heartbeat(&mut self, now_ms: u64) {
        if let Some(last) = self.last {
            if self.window.len() == WINDOW {
                self.window.pop_front();
            }
            self.window.push_back(now_ms.saturating_sub(last));
        }
        self.last = Some(now_ms);
    }

    /// Mean observed inter-arrival, floored at the configured interval:
    /// a peer may heartbeat *faster* than the gossip cadence (syncs from
    /// both directions plus group wires interleave), but judging silence
    /// against that inflated rate would let a couple of quiet rounds
    /// read as death. The cadence everyone actually promises is one
    /// contact per gossip interval, so that is the floor.
    fn mean_ms(&self) -> f64 {
        if self.window.is_empty() {
            return self.initial_interval_ms as f64;
        }
        let sum: u64 = self.window.iter().sum();
        (sum as f64 / self.window.len() as f64).max(self.initial_interval_ms as f64)
    }

    /// Current suspicion level. `0.0` until the first heartbeat — a peer
    /// we have never heard from is judged by the join timeout, not phi.
    pub fn phi(&self, now_ms: u64) -> f64 {
        let Some(last) = self.last else {
            return 0.0;
        };
        let elapsed = now_ms.saturating_sub(last) as f64;
        LOG10_E * elapsed / self.mean_ms()
    }

    /// Milliseconds since the last heartbeat (`None` before the first).
    pub fn silence_ms(&self, now_ms: u64) -> Option<u64> {
        self.last.map(|l| now_ms.saturating_sub(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_grows_with_silence() {
        let mut d = PhiFailureDetector::new(25);
        for t in (0..=250).step_by(25) {
            d.heartbeat(t);
        }
        let quiet = d.phi(275);
        let quieter = d.phi(1_000);
        assert!(quiet < quieter, "{quiet} !< {quieter}");
        assert!(d.phi(250) < 1.0, "fresh heartbeat keeps phi low");
    }

    #[test]
    fn phi_zero_before_first_heartbeat() {
        let d = PhiFailureDetector::new(25);
        assert_eq!(d.phi(10_000), 0.0);
        assert_eq!(d.silence_ms(10_000), None);
    }

    #[test]
    fn threshold_crossing_matches_mean_multiple() {
        let mut d = PhiFailureDetector::new(25);
        for t in (0..=320).step_by(40) {
            d.heartbeat(t); // mean settles at 40ms
        }
        // phi = 8 at elapsed = 8/0.4343 × 40 ≈ 737ms of silence.
        assert!(d.phi(320 + 700) < 8.0);
        assert!(d.phi(320 + 800) > 8.0);
    }

    #[test]
    fn slow_cadence_widens_tolerance() {
        let mut fast = PhiFailureDetector::new(25);
        let mut slow = PhiFailureDetector::new(25);
        for i in 0..20 {
            fast.heartbeat(i * 10);
            slow.heartbeat(i * 200);
        }
        // Same absolute silence accrues far more suspicion on the fast
        // cadence peer.
        assert!(fast.phi(190 + 500) > slow.phi(3_800 + 500));
    }
}
