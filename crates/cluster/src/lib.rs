//! rndi-cluster: the cluster membership plane.
//!
//! Where the simnet-backed group stack (crates/groupcomm, crates/hdns)
//! proves the replication protocols against a deterministic oracle, this
//! crate runs the same protocols between real processes on real TCP:
//!
//! * [`MembershipTable`] — SWIM-style `(incarnation, state)` beliefs
//!   merged under a total precedence order
//!   (`Alive < Suspect < Dead < Quarantined`);
//! * [`GossipEngine`] — periodic anti-entropy Syncs over the v2 envelope
//!   protocol's `Gossip` family, piggybacking the group-view lineage;
//! * [`PhiFailureDetector`] — phi-accrual suspicion over gossip
//!   inter-arrival times (`Suspect` at the configured threshold, `Dead`
//!   at twice it);
//! * [`QuarantineTable`] — time-gated re-admission of flapping nodes;
//! * [`bridge`] — converged beliefs → [`groupcast::View`] proposals
//!   (lineage-anchored candidate, strict-majority quorum);
//! * [`ClusterNode`] — one booted member: `NetServer` + HDNS replica +
//!   gossip pacer, with membership exported through `Admin::Health` and
//!   the node's metrics registry.
//!
//! Knobs (`rndi.cluster.*`): `seed`, `gossip-interval-ms`,
//! `phi-threshold`, `quarantine-ms` — see [`ClusterConfig`].

pub mod bridge;
pub mod config;
pub mod gossip;
pub mod membership;
pub mod node;
pub mod phi;
pub mod quarantine;

pub use bridge::addr_of;
pub use config::ClusterConfig;
pub use gossip::GossipEngine;
pub use membership::{MemberInfo, MembershipTable};
pub use node::{ClusterNode, TcpChannel};
pub use phi::PhiFailureDetector;
pub use quarantine::QuarantineTable;
