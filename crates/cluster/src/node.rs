//! [`ClusterNode`]: one member of the TCP membership plane.
//!
//! Each node hosts a [`NetServer`] whose v2 envelope protocol carries
//! three planes over the *same* listener: naming calls (a lean
//! [`ProviderBackend`] over the local HDNS replica), admin telemetry
//! (scrapes see membership through `Admin::Health`), and the new
//! `Gossip` family — membership Syncs plus `Group`-wrapped
//! [`groupcast::Wire`] frames that carry the replication protocol
//! (sequencer forwards, ordered deliveries, view installs, state
//! snapshots) peer-to-peer.
//!
//! Concurrency model: all protocol state lives in one `Inner` behind a
//! mutex, and **no TCP I/O ever happens while it is held**. The server's
//! gossip handler runs inline on a shard event loop, so it only mutates
//! state and appends wire frames to an *outbox*; a per-node pacer thread
//! drains the outbox, runs gossip rounds, evaluates phi, drives view
//! proposals, pumps the HDNS replica, and exports telemetry.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use groupcast::{Addr, MemberCore, OrderingMode, Outgoing, SendError, Wire};
use hdns::{HdnsEntry, HdnsNode, Op, OpOutcome as HdnsOutcome, ReplicaChannel, Ticket};
use rndi_core::context::NameClassPair;
use rndi_core::error::{NamingError, Result};
use rndi_core::op::{NamingOp, OpKind, OpOutcome};
use rndi_core::spi::ProviderBackend;
use rndi_net::proto::{GossipReply, GossipRequest, MemberEntry, MemberState, ViewSummary};
use rndi_net::{GossipHandler, MembershipStats, NetClient, NetServer, ServerConfig};
use rndi_obs::metrics::{names, Registry};

use crate::bridge::{self, addr_of};
use crate::config::ClusterConfig;
use crate::gossip::GossipEngine;
use crate::membership::MembershipTable;

/// How long an in-process [`ClusterNode::write_sync`] waits for its
/// ordered self-delivery.
const WRITE_BUDGET: Duration = Duration::from_millis(3_000);

/// How long the *served* backend waits. Backend calls run inline on a
/// server shard's event loop, so this must stay well under the phi
/// suspect bound (~18× the gossip interval at the default threshold) —
/// a stalled wait must surface as a retryable error to the remote
/// caller, not as seconds of inbound-frame starvation that read as this
/// node going silent.
const BACKEND_WRITE_BUDGET: Duration = Duration::from_millis(250);

/// All protocol state of one node. See the module doc for the locking
/// rule: mutate freely, never touch a socket while holding this.
struct Inner {
    engine: GossipEngine,
    core: MemberCore,
    group: String,
    connected: bool,
    /// Reverse of [`bridge::addr_of`] over every known member name.
    names_by_addr: BTreeMap<Addr, String>,
    /// Group wires awaiting the pacer's flush, per target endpoint.
    outbox: Vec<(String, GossipRequest)>,
    /// Endpoints this node refuses to exchange with (fault injection:
    /// a symmetric pair of blocks simulates a network partition).
    blocked: BTreeSet<String>,
    /// Seed endpoint still being courted (dropped once it appears in the
    /// membership table).
    seed: Option<String>,
}

impl Inner {
    fn now_names(&mut self) {
        self.names_by_addr = self
            .engine
            .table
            .entries()
            .into_iter()
            .map(|e| (addr_of(&e.name), e.name))
            .collect();
    }

    fn endpoint_of(&self, name: &str) -> Option<String> {
        self.engine
            .table
            .get(name)
            .map(|m| m.endpoint.clone())
            .filter(|ep| !ep.is_empty())
    }

    /// Route protocol sends: self-targeted wires loop straight back into
    /// the core (worklist, not recursion — a Forward to myself yields the
    /// Ordered fan-out in the same pass); peer wires go to the outbox.
    fn deliver(&mut self, outgoing: Vec<Outgoing>) {
        let me = self.core.me();
        let mut work: Vec<Outgoing> = outgoing;
        while let Some(out) = work.pop() {
            if out.to == me {
                work.extend(self.core.on_wire(me, out.wire));
                continue;
            }
            let Some(name) = self.names_by_addr.get(&out.to).cloned() else {
                continue;
            };
            let Some(ep) = self.endpoint_of(&name) else {
                continue;
            };
            if self.blocked.contains(&ep) {
                continue;
            }
            let bytes = serde_json::to_vec(&out.wire).expect("wires serialize");
            self.outbox.push((
                ep,
                GossipRequest::Group {
                    group: self.group.clone(),
                    from: me.0,
                    wire: bytes,
                },
            ));
        }
    }

    /// Strict-majority write gate: the installed view must contain a
    /// strict majority of *all known* member names still believed Alive.
    /// A minority partition fails this and refuses writes, which is what
    /// makes "no acknowledged write lost" hold across heals.
    fn writes_allowed(&self) -> bool {
        let Some(view) = self.core.view() else {
            return false;
        };
        // A node whose installed view trails the lineage it has *heard*
        // is healing from a partition: the gossip piggyback guarantees it
        // learned the higher-sequence view no later than it learned its
        // peers were back, so refusing here closes the window where a
        // stale five-member view would pass the quorum count again.
        if self
            .engine
            .best_view()
            .is_some_and(|best| best.seq > view.id.seq)
        {
            return false;
        }
        let alive_in_view = view
            .members
            .iter()
            .filter(|a| {
                self.names_by_addr
                    .get(a)
                    .and_then(|n| self.engine.table.get(n))
                    .is_some_and(|m| m.state == MemberState::Alive)
            })
            .count();
        alive_in_view * 2 > self.engine.table.known_count()
    }

    /// The installed view rendered in names (for gossip and telemetry).
    fn installed_summary(&self) -> Option<ViewSummary> {
        let view = self.core.view()?;
        let members = view
            .members
            .iter()
            .map(|a| {
                self.names_by_addr
                    .get(a)
                    .cloned()
                    .unwrap_or_else(|| format!("?{}", a.0))
            })
            .collect();
        Some(ViewSummary {
            seq: view.id.seq,
            members,
        })
    }
}

/// The replica's transport handle: routes [`HdnsNode`]'s group traffic
/// through the shared [`Inner`] onto real TCP.
#[derive(Clone)]
pub struct TcpChannel {
    inner: Arc<Mutex<Inner>>,
}

impl ReplicaChannel for TcpChannel {
    fn addr(&self) -> Addr {
        self.inner.lock().core.me()
    }

    fn connect(&self, group: &str) -> std::result::Result<(), SendError> {
        let mut inner = self.inner.lock();
        inner.group = group.to_string();
        inner.connected = true;
        Ok(())
    }

    fn disconnect(&self) {
        let mut inner = self.inner.lock();
        inner.connected = false;
        inner.core.clear_view();
    }

    fn mcast(&self, bytes: Vec<u8>) -> std::result::Result<(), SendError> {
        let mut inner = self.inner.lock();
        if !inner.connected {
            return Err(SendError::NotConnected);
        }
        let outgoing = inner.core.mcast(bytes)?;
        inner.deliver(outgoing);
        Ok(())
    }

    fn poll(&self) -> Vec<groupcast::ChannelEvent> {
        self.inner.lock().core.take_events()
    }

    fn provide_state(&self, to: Addr, bytes: Vec<u8>) -> std::result::Result<(), SendError> {
        let mut inner = self.inner.lock();
        let out = inner.core.provide_state(to, bytes);
        inner.deliver(vec![out]);
        Ok(())
    }
}

/// Serves inbound `Gossip` envelopes on the server's event loop: quick
/// state merges only, every resulting send deferred to the outbox.
struct Handler {
    inner: Arc<Mutex<Inner>>,
    epoch: Instant,
}

impl GossipHandler for Handler {
    fn handle(&self, req: GossipRequest) -> GossipReply {
        let now = self.epoch.elapsed().as_millis() as u64;
        let mut inner = self.inner.lock();
        match req {
            GossipRequest::Sync {
                from,
                entries,
                view,
            } => {
                if inner.blocked.contains(&from.endpoint) {
                    // Partitioned-off peer: reveal nothing, learn nothing.
                    return GossipReply::Ack;
                }
                let reply = inner
                    .engine
                    .handle_sync(&from, &entries, view.as_ref(), now);
                inner.now_names();
                reply
            }
            GossipRequest::Group { group, from, wire } => {
                if group != inner.group || !inner.connected {
                    return GossipReply::Ack;
                }
                let from = Addr(from);
                if let Some(name) = inner.names_by_addr.get(&from).cloned() {
                    if let Some(ep) = inner.endpoint_of(&name) {
                        if inner.blocked.contains(&ep) {
                            return GossipReply::Ack;
                        }
                    }
                    inner.engine.note_contact(&name, now);
                }
                if let Ok(w) = serde_json::from_slice::<Wire>(&wire) {
                    // Never regress the lineage: a candidate that healed
                    // out of a minority partition keeps re-asserting its
                    // stale view until gossip catches it up, and blindly
                    // installing that would roll a majority-side member
                    // back. (Same-seq conflicts cannot arise — a minority
                    // can never reach the quorum needed to mint one.)
                    let stale_install = match &w {
                        Wire::InstallView(v) => {
                            inner.core.view().is_some_and(|cur| v.id.seq < cur.id.seq)
                        }
                        _ => false,
                    };
                    if !stale_install {
                        let outgoing = inner.core.on_wire(from, w);
                        inner.deliver(outgoing);
                    }
                }
                GossipReply::Ack
            }
        }
    }
}

/// The lean naming backend each node hosts: reads answer from the local
/// replica ("nearest node" semantics); writes replicate through the
/// group and only acknowledge after ordered self-delivery — and only
/// while this node sits in the primary partition.
struct ClusterBackend {
    name: String,
    inner: Arc<Mutex<Inner>>,
    hdns: Arc<Mutex<HdnsNode<TcpChannel>>>,
}

impl ClusterBackend {
    fn path(op: &NamingOp) -> Result<String> {
        if op.name.is_empty() {
            return Err(NamingError::invalid_name("", "empty name"));
        }
        Ok(op.name.components().join("/"))
    }

    fn write(&self, op: Op) -> Result<()> {
        if !self.inner.lock().writes_allowed() {
            return Err(NamingError::service(
                "not in the primary partition: writes refused",
            ));
        }
        let ticket = self
            .hdns
            .lock()
            .submit(op)
            .map_err(|e| NamingError::service(format!("replicate: {e}")))?;
        let deadline = Instant::now() + BACKEND_WRITE_BUDGET;
        loop {
            {
                let mut node = self.hdns.lock();
                node.process();
                match node.outcome(ticket) {
                    HdnsOutcome::Pending => {}
                    HdnsOutcome::Done(Ok(())) => return Ok(()),
                    HdnsOutcome::Done(Err(e)) => {
                        return Err(NamingError::service(format!("hdns: {e}")))
                    }
                    HdnsOutcome::Lost => return Err(NamingError::service("replica lost the op")),
                }
            }
            if Instant::now() >= deadline {
                return Err(NamingError::service("write not ordered within budget"));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl ProviderBackend for ClusterBackend {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        match op.kind {
            OpKind::Lookup => {
                let path = Self::path(op)?;
                let entry = self
                    .hdns
                    .lock()
                    .lookup(&path)
                    .ok_or_else(|| NamingError::not_found(&path))?;
                if entry.is_context {
                    return Err(NamingError::service(format!("{path}: is a context")));
                }
                Ok(OpOutcome::Wire(entry.value))
            }
            OpKind::List => {
                let prefix = if op.name.is_empty() {
                    String::new()
                } else {
                    Self::path(op)?
                };
                let pairs = self
                    .hdns
                    .lock()
                    .list(&prefix)
                    .into_iter()
                    .map(|(name, e)| NameClassPair {
                        name,
                        class_name: if e.is_context { "context" } else { "object" }.to_string(),
                    })
                    .collect();
                Ok(OpOutcome::Names(pairs))
            }
            OpKind::Bind | OpKind::Rebind => {
                let (payload, _) = op.wire_value()?;
                self.write(Op::Bind {
                    path: Self::path(op)?,
                    entry: HdnsEntry::leaf(payload),
                    overwrite: op.kind == OpKind::Rebind,
                })?;
                Ok(OpOutcome::Done)
            }
            OpKind::Unbind => {
                self.write(Op::Unbind {
                    path: Self::path(op)?,
                })?;
                Ok(OpOutcome::Done)
            }
            OpKind::CreateSubcontext => {
                self.write(Op::CreateContext {
                    path: Self::path(op)?,
                })?;
                Ok(OpOutcome::Done)
            }
            _ => Err(NamingError::unsupported(format!(
                "cluster backend: {:?}",
                op.kind
            ))),
        }
    }

    fn provider_id(&self) -> String {
        format!("cluster:{}", self.name)
    }
}

/// One booted member of the cluster membership plane.
pub struct ClusterNode {
    config: ClusterConfig,
    endpoint: String,
    inner: Arc<Mutex<Inner>>,
    hdns: Arc<Mutex<HdnsNode<TcpChannel>>>,
    server: Option<NetServer>,
    registry: Arc<Registry>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    pacer: Option<JoinHandle<()>>,
}

impl ClusterNode {
    /// Boot a node: bind the server, join the group, start gossiping.
    /// With no seed configured the node bootstraps the view lineage as a
    /// singleton; otherwise it courts the seed until absorbed.
    pub fn start(config: ClusterConfig) -> Result<ClusterNode> {
        let epoch = Instant::now();
        let me = addr_of(&config.name);
        let table = MembershipTable::new(&config.name, "", config.quarantine_ms);
        let engine = GossipEngine::new(table, config.phi_threshold, config.gossip_interval_ms);
        let inner = Arc::new(Mutex::new(Inner {
            engine,
            core: MemberCore::new(me, OrderingMode::Sequencer),
            group: config.group.clone(),
            connected: false,
            names_by_addr: BTreeMap::new(),
            outbox: Vec::new(),
            blocked: BTreeSet::new(),
            seed: config.seed.clone(),
        }));
        let channel = TcpChannel {
            inner: inner.clone(),
        };
        let hdns = Arc::new(Mutex::new(HdnsNode::new(channel, None)));
        let registry = Arc::new(Registry::new());
        let backend = Arc::new(ClusterBackend {
            name: config.name.clone(),
            inner: inner.clone(),
            hdns: hdns.clone(),
        });
        let server = NetServer::with_registry(
            backend,
            ServerConfig::from_env(&config.env)?,
            registry.clone(),
        )?;
        let endpoint = server.local_addr().to_string();
        server.set_gossip_handler(Arc::new(Handler {
            inner: inner.clone(),
            epoch,
        }));
        let membership = server.membership_stats();

        {
            let mut i = inner.lock();
            i.engine.table.set_my_endpoint(&endpoint);
            i.now_names();
        }
        hdns.lock()
            .connect(&config.group)
            .map_err(|e| NamingError::service(format!("join group: {e}")))?;
        if config.seed.is_none() {
            let mut i = inner.lock();
            let (view, summary) = bridge::bootstrap(&config.name);
            i.engine.observe_view(&summary);
            i.core.install_view(view);
        }

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let pacer = {
            let inner = inner.clone();
            let hdns = hdns.clone();
            let stop = stop.clone();
            let registry = registry.clone();
            let membership = membership.clone();
            let config = config.clone();
            let endpoint = endpoint.clone();
            std::thread::Builder::new()
                .name(format!("cluster-pacer-{}", config.name))
                .spawn(move || {
                    pace(
                        inner, hdns, stop, registry, membership, config, endpoint, epoch,
                    )
                })
                .map_err(|e| NamingError::service(format!("spawn pacer: {e}")))?
        };

        Ok(ClusterNode {
            config,
            endpoint,
            inner,
            hdns,
            server: Some(server),
            registry,
            stop,
            pacer: Some(pacer),
        })
    }

    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// `host:port` this node's server (naming + admin + gossip) is on.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    pub fn incarnation(&self) -> u64 {
        self.inner.lock().engine.table.incarnation()
    }

    /// This node's current belief about every member.
    pub fn members(&self) -> Vec<MemberEntry> {
        self.inner.lock().engine.table.entries()
    }

    /// The installed group view, in member names.
    pub fn view(&self) -> Option<ViewSummary> {
        self.inner.lock().installed_summary()
    }

    /// Is this node currently allowed to acknowledge writes?
    pub fn writes_allowed(&self) -> bool {
        self.inner.lock().writes_allowed()
    }

    /// Entries in the local replica store.
    pub fn entry_count(&self) -> usize {
        self.hdns.lock().entry_count()
    }

    /// Replica-local read.
    pub fn lookup(&self, path: &str) -> Option<HdnsEntry> {
        self.hdns.lock().lookup(path)
    }

    /// Submit a replicated write (primary partition only). The returned
    /// ticket resolves via [`ClusterNode::outcome`] once the op's ordered
    /// self-delivery lands.
    pub fn submit(&self, op: Op) -> std::result::Result<Ticket, SendError> {
        if !self.inner.lock().writes_allowed() {
            return Err(SendError::NotConnected);
        }
        self.hdns.lock().submit(op)
    }

    /// Check (and, when resolved, consume) a ticket.
    pub fn outcome(&self, ticket: Ticket) -> HdnsOutcome {
        let mut node = self.hdns.lock();
        node.process();
        node.outcome(ticket)
    }

    /// Submit and wait for the ordered outcome (test/demo convenience).
    pub fn write_sync(&self, op: Op) -> HdnsOutcome {
        let ticket = match self.submit(op) {
            Ok(t) => t,
            Err(_) => return HdnsOutcome::Lost,
        };
        let deadline = Instant::now() + WRITE_BUDGET;
        loop {
            match self.outcome(ticket) {
                HdnsOutcome::Pending => {}
                resolved => return resolved,
            }
            if Instant::now() >= deadline {
                return HdnsOutcome::Pending;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Fault injection: refuse all exchange with `endpoints` (apply the
    /// mirror-image block on the other side for a symmetric partition).
    pub fn block_endpoints(&self, endpoints: &[String]) {
        let mut inner = self.inner.lock();
        inner.blocked.extend(endpoints.iter().cloned());
    }

    /// Heal all injected partitions on this node.
    pub fn clear_blocked(&self) {
        self.inner.lock().blocked.clear();
    }

    /// The node's private metrics registry (scraped remotely via admin).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Crash the node: tear sockets down mid-request, no goodbyes. The
    /// rest of the cluster finds out the phi-accrual way.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(p) = self.pacer.take() {
            let _ = p.join();
        }
        if let Some(s) = self.server.take() {
            s.abort();
        }
    }

    /// Graceful exit: persist, leave the group, drain the server.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(p) = self.pacer.take() {
            let _ = p.join();
        }
        self.hdns.lock().shutdown();
        if let Some(s) = self.server.take() {
            s.shutdown();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(p) = self.pacer.take() {
            let _ = p.join();
        }
        if let Some(s) = self.server.take() {
            s.abort();
        }
    }
}

/// One gossip round's outbound work, computed under the lock, executed
/// off it.
struct RoundPlan {
    sync: GossipRequest,
    /// `(peer name if known, endpoint)` to Sync with.
    targets: Vec<(Option<String>, String)>,
    wires: Vec<(String, GossipRequest)>,
}

#[allow(clippy::too_many_arguments)]
fn pace(
    inner: Arc<Mutex<Inner>>,
    hdns: Arc<Mutex<HdnsNode<TcpChannel>>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    registry: Arc<Registry>,
    membership: Arc<MembershipStats>,
    config: ClusterConfig,
    my_endpoint: String,
    epoch: Instant,
) {
    let mut clients: BTreeMap<String, NetClient> = BTreeMap::new();
    let interval = Duration::from_millis(config.gossip_interval_ms);
    while !stop.load(Ordering::SeqCst) {
        let now = epoch.elapsed().as_millis() as u64;

        // Phase 1: state only, under the lock.
        let plan = {
            let mut i = inner.lock();
            i.engine.tick(now);
            i.now_names();
            maintain_views(&mut i, &config.name);
            let mut targets: Vec<(Option<String>, String)> = i
                .engine
                .gossip_targets()
                .into_iter()
                .map(|(n, ep)| (Some(n), ep))
                .collect();
            if let Some(seed) = i.seed.clone() {
                let known = targets.iter().any(|(_, ep)| *ep == seed);
                if known || i.engine.table.known_count() > 1 {
                    i.seed = None; // absorbed; normal gossip takes over
                } else {
                    targets.push((None, seed));
                }
            }
            targets
                .retain(|(_, ep)| !ep.is_empty() && *ep != my_endpoint && !i.blocked.contains(ep));
            i.engine.rounds += 1;
            RoundPlan {
                sync: i.engine.sync_request(),
                targets,
                wires: std::mem::take(&mut i.outbox),
            }
        };

        // Phase 2: network, no lock. Failed peers just miss heartbeats —
        // that is the signal, not an error to handle.
        for (peer, ep) in &plan.targets {
            let Some(client) = client_for(&mut clients, ep, &config) else {
                continue;
            };
            match client.gossip(plan.sync.clone()) {
                Ok(reply) => {
                    let now = epoch.elapsed().as_millis() as u64;
                    let mut i = inner.lock();
                    let name = peer.clone().or_else(|| {
                        // Seed contact: identify the peer by endpoint.
                        if let GossipReply::Sync { entries, .. } = &reply {
                            entries
                                .iter()
                                .find(|e| e.endpoint == *ep)
                                .map(|e| e.name.clone())
                        } else {
                            None
                        }
                    });
                    if let Some(name) = name {
                        i.engine.absorb_reply(&name, &reply, now);
                        i.now_names();
                    }
                }
                Err(_) => {
                    clients.remove(ep);
                }
            }
        }
        for (ep, wire) in plan.wires {
            if let Some(client) = client_for(&mut clients, &ep, &config) {
                if client.gossip(wire).is_err() {
                    clients.remove(&ep);
                }
            }
        }

        // Phase 3: pump the replica (applies deliveries, answers state
        // requests into the outbox for the next flush).
        hdns.lock().process();

        // Phase 4: telemetry.
        export(&inner, &registry, &membership, epoch);

        std::thread::sleep(interval);
    }
}

fn client_for<'a>(
    clients: &'a mut BTreeMap<String, NetClient>,
    ep: &str,
    config: &ClusterConfig,
) -> Option<&'a NetClient> {
    if !clients.contains_key(ep) {
        match NetClient::new(ep, &config.env) {
            Ok(c) => {
                clients.insert(ep.to_string(), c);
            }
            Err(_) => return None,
        }
    }
    clients.get(ep)
}

/// Drive the view lineage: fold the installed view in, let the (unique)
/// candidate propose the next view when the alive-set changed and quorum
/// holds, and keep re-asserting the current view to its members so a
/// dropped `InstallView` heals instead of wedging a joiner.
fn maintain_views(inner: &mut Inner, me: &str) {
    if !inner.connected {
        return;
    }
    if let Some(summary) = inner.installed_summary() {
        inner.engine.observe_view(&summary);
    }
    if let Some(p) = bridge::propose(&inner.engine, me) {
        let summary = bridge::summarize(&p.view, &p.names);
        inner.engine.observe_view(&summary);
        inner.core.install_view(p.view.clone());
        queue_install(inner, &p.view, &p.names, me);
        return;
    }
    // Steady state: the candidate re-asserts (idempotent at receivers).
    if bridge::is_candidate(&inner.engine, me) {
        if let (Some(view), Some(summary)) = (inner.core.view().cloned(), inner.installed_summary())
        {
            queue_install(inner, &view, &summary.members, me);
        }
    }
}

fn queue_install(inner: &mut Inner, view: &groupcast::View, names: &[String], me: &str) {
    for name in names {
        if name == me {
            continue;
        }
        let Some(ep) = inner.endpoint_of(name) else {
            continue;
        };
        if inner.blocked.contains(&ep) {
            continue;
        }
        let bytes = serde_json::to_vec(&Wire::InstallView(view.clone())).expect("wires serialize");
        inner.outbox.push((
            ep,
            GossipRequest::Group {
                group: inner.group.clone(),
                from: inner.core.me().0,
                wire: bytes,
            },
        ));
    }
}

/// Export membership into the health atomics (served by `Admin::Health`)
/// and the node's registry (merged by cluster scrapes).
fn export(
    inner: &Arc<Mutex<Inner>>,
    registry: &Arc<Registry>,
    membership: &Arc<MembershipStats>,
    epoch: Instant,
) {
    let now = epoch.elapsed().as_millis() as u64;
    let i = inner.lock();
    let alive = i.engine.table.count(MemberState::Alive) as u64;
    let suspect = i.engine.table.count(MemberState::Suspect) as u64;
    let dead = (i.engine.table.count(MemberState::Dead)
        + i.engine.table.count(MemberState::Quarantined)) as u64;
    let epoch_seq = i.core.view().map_or(0, |v| v.id.seq);
    let rounds = i.engine.rounds;
    let phi_millis = (i.engine.max_phi(now) * 1_000.0) as i64;
    drop(i);

    membership.alive.store(alive, Ordering::Relaxed);
    membership.suspect.store(suspect, Ordering::Relaxed);
    membership.dead.store(dead, Ordering::Relaxed);
    membership.view_epoch.store(epoch_seq, Ordering::Relaxed);

    registry
        .gauge(names::CLUSTER_MEMBERS, &[])
        .set(alive as i64);
    registry
        .gauge(names::CLUSTER_SUSPECTS, &[])
        .set(suspect as i64);
    registry
        .gauge(names::CLUSTER_VIEW_EPOCH, &[])
        .set(epoch_seq as i64);
    registry.gauge(names::CLUSTER_PHI, &[]).set(phi_millis);
    let counter = registry.counter(names::CLUSTER_GOSSIP_ROUNDS, &[]);
    let done = counter.get();
    if rounds > done {
        counter.add(rounds - done);
    }
}
