//! The view bridge: turning converged gossip beliefs into group views.
//!
//! The membership plane *believes*; the group layer *decides*. This
//! module is the one-way valve between them: when gossip has settled on
//! a changed alive-set, the (unique) coordinator candidate mints the next
//! [`View`] in the lineage and the existing groupcast machinery —
//! sequencer reset, state transfer to newcomers, PRIMARY_PARTITION
//! resync — runs unchanged on top, exactly as it does over the simnet.
//!
//! Two rules keep split brain out:
//!
//! * **Candidate uniqueness.** The only node allowed to propose is the
//!   first *alive* member of the highest-precedence view it knows
//!   (JGroups' "oldest member coordinates", survived by lineage). Because
//!   gossip always piggybacks that view, any node that can hear rumours
//!   at all also hears the lineage and either is the candidate or defers.
//! * **Quorum.** A candidate only installs a view holding a **strict
//!   majority of all known member names** — dead or alive. A minority
//!   partition therefore freezes on its last view (and, via
//!   [`quorum_holds`], refuses writes) instead of electing a rump
//!   coordinator; the majority side advances the lineage and absorbs the
//!   minority back as state-transfer newcomers on heal.

use groupcast::{Addr, View};
use rndi_net::proto::{MemberState, ViewSummary};

use crate::gossip::GossipEngine;

/// Deterministic name → group address mapping (FNV-1a 64). Every node
/// computes the same `Addr` for the same name, so group wires address
/// members without any registration handshake.
pub fn addr_of(name: &str) -> Addr {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // The simnet reserves tiny addresses for its numbered members; keep
    // hashed addresses clear of 0 (unused sentinel in diagnostics).
    Addr(h | 1)
}

/// A proposed view change, in names (the caller owns the Addr mapping of
/// record via [`addr_of`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proposal {
    pub view: View,
    /// View membership by name, same order as `view.members`.
    pub names: Vec<String>,
}

/// Is `name` the coordinator candidate for the lineage `engine` knows?
///
/// With no lineage at all only the designated seed bootstraps (the
/// caller's concern); once any view exists, the candidate is its first
/// member that the local table still believes alive — falling back to
/// the smallest alive known name if *no* lineage member survives.
pub fn is_candidate(engine: &GossipEngine, name: &str) -> bool {
    match engine.best_view() {
        None => false,
        Some(vs) => {
            let alive = |n: &str| {
                engine
                    .table
                    .get(n)
                    .is_some_and(|m| m.state == MemberState::Alive)
            };
            match vs.members.iter().find(|m| alive(m)) {
                Some(first) => first == name,
                None => engine
                    .table
                    .in_state(MemberState::Alive)
                    .first()
                    .is_some_and(|m| m.name == name),
            }
        }
    }
}

/// The membership the next view should hold: lineage survivors first (in
/// lineage order — seniority is what elects coordinators), then alive
/// newcomers in name order.
///
/// Lineage members are kept while merely `Suspect`: suspicion is a
/// transient verdict that a refutation routinely reverses, and excising
/// on it would mint a view change for every network hiccup. Only `Dead`
/// (the phi detector's final word) drops a member — which is also why
/// newcomers must be fully `Alive` to get in.
pub fn desired_members(engine: &GossipEngine) -> Vec<String> {
    let in_view_worthy = |n: &str| {
        engine
            .table
            .get(n)
            .is_some_and(|m| m.state <= MemberState::Suspect)
    };
    let mut desired: Vec<String> = match engine.best_view() {
        Some(vs) => vs
            .members
            .iter()
            .filter(|m| in_view_worthy(m))
            .cloned()
            .collect(),
        None => Vec::new(),
    };
    for m in engine.table.in_state(MemberState::Alive) {
        if !desired.iter().any(|d| d == &m.name) {
            desired.push(m.name.clone());
        }
    }
    desired
}

/// Does `members` hold a strict majority of every name the table knows?
pub fn quorum_holds(engine: &GossipEngine, members: &[String]) -> bool {
    members.len() * 2 > engine.table.known_count()
}

/// Decide whether this node should install a new view now. `me` must be
/// this node's name. Returns `None` when the lineage view already
/// matches the desired membership, this node is not the candidate, or
/// quorum is lacking.
pub fn propose(engine: &GossipEngine, me: &str) -> Option<Proposal> {
    if !is_candidate(engine, me) {
        return None;
    }
    let desired = desired_members(engine);
    if desired.is_empty() || !quorum_holds(engine, &desired) {
        return None;
    }
    let current = engine.best_view().expect("candidate implies lineage");
    if current.members == desired {
        return None;
    }
    let view = View::new(
        current.seq + 1,
        desired.iter().map(|n| addr_of(n)).collect(),
    );
    Some(Proposal {
        view,
        names: desired,
    })
}

/// The bootstrap view a seed node (no lineage anywhere) starts from.
pub fn bootstrap(me: &str) -> (View, ViewSummary) {
    let view = View::new(1, vec![addr_of(me)]);
    let summary = ViewSummary {
        seq: 1,
        members: vec![me.to_string()],
    };
    (view, summary)
}

/// Render a [`View`] whose membership is `names` as the gossiped summary.
pub fn summarize(view: &View, names: &[String]) -> ViewSummary {
    debug_assert_eq!(view.members.len(), names.len());
    ViewSummary {
        seq: view.id.seq,
        members: names.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipTable;
    use rndi_net::proto::MemberEntry;

    fn engine_with(me: &str, peers: &[(&str, MemberState)]) -> GossipEngine {
        let mut e = GossipEngine::new(MembershipTable::new(me, format!("{me}:1"), 1_000), 8.0, 25);
        for (name, state) in peers {
            e.table.observe(
                &MemberEntry {
                    name: name.to_string(),
                    endpoint: format!("{name}:1"),
                    incarnation: 1,
                    state: MemberState::Alive,
                },
                0,
            );
            if *state != MemberState::Alive {
                e.table.demote(name, *state, 0);
            }
        }
        e
    }

    #[test]
    fn addr_mapping_is_stable_and_distinct() {
        assert_eq!(addr_of("node-0"), addr_of("node-0"));
        assert_ne!(addr_of("node-0"), addr_of("node-1"));
    }

    #[test]
    fn no_lineage_no_candidate() {
        let e = engine_with("a", &[("b", MemberState::Alive)]);
        assert!(!is_candidate(&e, "a"));
        assert!(propose(&e, "a").is_none());
    }

    #[test]
    fn candidate_is_first_alive_lineage_member() {
        let mut e = engine_with("b", &[("a", MemberState::Dead), ("c", MemberState::Alive)]);
        e.observe_view(&ViewSummary {
            seq: 5,
            members: vec!["a".into(), "b".into(), "c".into()],
        });
        assert!(!is_candidate(&e, "a"), "dead lineage head skipped");
        assert!(is_candidate(&e, "b"));
        assert!(!is_candidate(&e, "c"));
        let p = propose(&e, "b").expect("membership changed");
        assert_eq!(p.names, vec!["b".to_string(), "c".to_string()]);
        assert_eq!(p.view.id.seq, 6);
        assert_eq!(p.view.coordinator(), addr_of("b"));
    }

    #[test]
    fn minority_refuses_to_propose() {
        // 5 known names, only 2 alive on this side: no quorum.
        let mut e = engine_with(
            "a",
            &[
                ("b", MemberState::Alive),
                ("c", MemberState::Dead),
                ("d", MemberState::Dead),
                ("e", MemberState::Dead),
            ],
        );
        e.observe_view(&ViewSummary {
            seq: 2,
            members: vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
        });
        assert!(is_candidate(&e, "a"));
        assert!(propose(&e, "a").is_none(), "2 of 5 is not a quorum");
        assert!(!quorum_holds(&e, &["a".into(), "b".into()]));
    }

    #[test]
    fn majority_advances_the_lineage() {
        let mut e = engine_with(
            "a",
            &[
                ("b", MemberState::Alive),
                ("c", MemberState::Alive),
                ("d", MemberState::Dead),
                ("e", MemberState::Dead),
            ],
        );
        e.observe_view(&ViewSummary {
            seq: 2,
            members: vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
        });
        let p = propose(&e, "a").expect("3 of 5 is a quorum");
        assert_eq!(p.names, vec!["a".to_string(), "b".into(), "c".into()]);
        assert_eq!(p.view.id.seq, 3);
    }

    #[test]
    fn settled_view_proposes_nothing() {
        let mut e = engine_with("a", &[("b", MemberState::Alive)]);
        e.observe_view(&ViewSummary {
            seq: 4,
            members: vec!["a".into(), "b".into()],
        });
        assert!(propose(&e, "a").is_none());
    }

    #[test]
    fn newcomers_append_after_lineage_survivors() {
        let mut e = engine_with("a", &[("z", MemberState::Alive), ("b", MemberState::Alive)]);
        e.observe_view(&ViewSummary {
            seq: 1,
            members: vec!["a".into()],
        });
        let p = propose(&e, "a").expect("two newcomers");
        assert_eq!(
            p.names,
            vec!["a".to_string(), "b".into(), "z".into()],
            "lineage first, then name order"
        );
    }
}
