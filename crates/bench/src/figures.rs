//! Per-figure experiment setups.
//!
//! Each function reproduces one figure of the paper's §7: it deploys the
//! real backend, wraps it in a queueing model calibrated by [`crate::cost`],
//! and sweeps 1..100 closed-loop clients. Real backend operations execute
//! inside the simulation (sampled for the heavyweight replicated paths) so
//! the measured system is the actual implementation, not a stub.

use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use simnet::{QueueingServer, ServerConfig, Sim};

use rndi_core::prelude::*;

use crate::cost;
use crate::experiment::{sweep, Series, SweepConfig};
use crate::loadgen::{op_work, DoneFn, Operation, RoundTrips};

fn scale(d: Duration, factor: f64) -> Duration {
    Duration::from_nanos((d.as_nanos() as f64 * factor) as u64)
}

/// An operation that chains several [`RoundTrips`] stages against distinct
/// servers — the shape of a federated lookup (root, intermediate, leaf).
pub struct SeqOp {
    pub stages: Vec<Rc<RoundTrips>>,
}

impl SeqOp {
    fn run(self: &Rc<Self>, sim: &Sim, idx: usize, done: DoneFn) {
        let this = self.clone();
        let stage = self.stages[idx].clone();
        Operation::issue(
            &stage,
            sim,
            Box::new(move |sim, ok| {
                if !ok || idx + 1 == this.stages.len() {
                    done(sim, ok);
                } else {
                    this.run(sim, idx + 1, done);
                }
            }),
        );
    }
}

impl Operation for Rc<SeqOp> {
    fn issue(&self, sim: &Sim, done: DoneFn) {
        self.run(sim, 0, done);
    }
}

// --------------------------------------------------------------- Jini --

fn jini_server(sim: &Sim) -> QueueingServer {
    QueueingServer::new(
        sim,
        ServerConfig {
            workers: 1,
            degradation: cost::JINI_DEGRADATION,
            ..Default::default()
        },
    )
}

/// A live registrar + provider context pair for the real-work closures.
fn jini_backend(
    strict: bool,
) -> (
    rlus::Registrar,
    Arc<ProviderPipeline<rndi_providers::JiniProviderContext>>,
) {
    let clock = rlus::ManualClock::new();
    let registrar = rlus::Registrar::new(clock.clone(), u64::MAX / 4, 77);
    let env = Environment::new().with(
        env_keys::JINI_STRICT_BIND,
        if strict { "true" } else { "false" },
    );
    let ctx = rndi_providers::JiniProviderContext::new(
        registrar.clone(),
        Arc::new(rndi_providers::common::RlusClock(
            clock as Arc<dyn rlus::Clock>,
        )),
        env,
        "bench",
    );
    (registrar, ctx)
}

/// Figure 2: Jini & JNDI-Jini provider, lookup (read) throughput.
pub fn fig2(config: &SweepConfig) -> Vec<Series> {
    let raw = sweep("jini", config, |sim, rng, _| {
        let (registrar, ctx) = jini_backend(false);
        ContextExt::rebind_str(&*ctx, "bench", "payload").expect("seed");
        let template = rlus::ServiceTemplate::any()
            .with_entry(rlus::EntryTemplate::new("RndiBinding").with("name", "bench"));
        let op = RoundTrips::new(
            jini_server(sim),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::jini_read()],
        )
        .with_work(
            Rc::new(move |_| {
                registrar.lookup(&template).expect("seeded item present");
            }),
            1,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    let spi = |label: &str, strict: bool| {
        sweep(label, config, move |sim, rng, _| {
            let (_registrar, ctx) = jini_backend(strict);
            ContextExt::rebind_str(&*ctx, "bench", "payload").expect("seed");
            let op = RoundTrips::new(
                jini_server(sim),
                rng.fork(),
                cost::net_rtt(),
                vec![scale(cost::jini_read(), cost::JINI_SPI_READ_FACTOR)],
            )
            .with_work(op_work(ctx, NamingOp::lookup("bench".into())), 1);
            Rc::new(Rc::new(op)) as Rc<dyn Operation>
        })
    };

    vec![
        raw,
        spi("jini-spi-relaxed", false),
        spi("jini-spi-strict", true),
    ]
}

/// Figure 3: Jini & JNDI-Jini provider, rebind (write) throughput.
pub fn fig3(config: &SweepConfig) -> Vec<Series> {
    let raw = sweep("jini", config, |sim, rng, _| {
        let (registrar, _ctx) = jini_backend(false);
        let op = RoundTrips::new(
            jini_server(sim),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::jini_write()],
        )
        .with_work(
            Rc::new(move |_| {
                let item = rlus::ServiceItem::new(rlus::ServiceStub::new(
                    vec!["Bench".into()],
                    vec![0; 64],
                ))
                .with_id(rlus::ServiceId::new(1, 1))
                .with_entry(rlus::Entry::name("bench"));
                registrar.register(item, 60_000);
            }),
            1,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    let relaxed = sweep("jini-spi-relaxed", config, |sim, rng, _| {
        let (_r, ctx) = jini_backend(false);
        let op = RoundTrips::new(
            jini_server(sim),
            rng.fork(),
            cost::net_rtt(),
            vec![scale(cost::jini_write(), cost::JINI_SPI_WRITE_FACTOR)],
        )
        .with_work(
            op_work(
                ctx,
                NamingOp::rebind("bench".into(), BoundValue::str("payload")),
            ),
            1,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    let strict = sweep("jini-spi-strict", config, |sim, rng, _| {
        let (_r, ctx) = jini_backend(true);
        // The distributed lock turns one rebind into 5 register writes + 5
        // register reads + the guarded lookup + the marshalled register —
        // every one of them a full LUS round trip.
        let mut segments = Vec::new();
        segments.extend(std::iter::repeat_n(
            cost::jini_read(),
            cost::EM_LOCK_READS as usize,
        ));
        segments.extend(std::iter::repeat_n(
            cost::jini_write(),
            cost::EM_LOCK_WRITES as usize,
        ));
        segments.push(cost::jini_read()); // existence check in the CS
        segments.push(scale(cost::jini_write(), cost::JINI_SPI_WRITE_FACTOR));
        let op = RoundTrips::new(jini_server(sim), rng.fork(), cost::net_rtt(), segments)
            .with_work(
                op_work(
                    ctx,
                    NamingOp::rebind("bench".into(), BoundValue::str("payload")),
                ),
                1,
            );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    vec![raw, relaxed, strict]
}

/// Ablation A5 — the §5.1 proposal: "a proxy-based solution should be
/// adapted so that the necessary locking is performed locally (near the
/// Jini LUS) … exposing the atomic interface to the client." Compares
/// strict bind via the distributed lock against strict bind via the
/// co-located [`rndi_providers::AtomicBindProxy`] (and the relaxed
/// baseline).
pub fn ablation_proxy(config: &SweepConfig) -> Vec<Series> {
    let fig3_series = fig3(config);
    let mut out: Vec<Series> = fig3_series
        .into_iter()
        .filter(|s| s.label.contains("spi"))
        .collect();

    let proxied = sweep("jini-spi-strict-proxy", config, |sim, rng, _| {
        let clock = rlus::ManualClock::new();
        let registrar = rlus::Registrar::new(clock.clone(), u64::MAX / 4, 78);
        let proxy = rndi_providers::AtomicBindProxy::new(registrar.clone());
        let env = Environment::new().with(env_keys::JINI_STRICT_BIND, "true");
        let ctx = rndi_providers::JiniProviderContext::with_proxy(
            registrar,
            Arc::new(rndi_providers::common::RlusClock(
                clock as Arc<dyn rlus::Clock>,
            )),
            env,
            "proxy-bench",
            Some(proxy),
        );
        // One existence check + one marshalled register — both served at
        // the proxy, so two LUS-local operations and a single client RTT.
        let op = RoundTrips::new(
            jini_server(sim),
            rng.fork(),
            cost::net_rtt(),
            vec![
                cost::jini_read(),
                scale(cost::jini_write(), cost::JINI_SPI_WRITE_FACTOR),
            ],
        )
        .with_work(
            Rc::new(move |_| {
                // Fresh name per op: atomic binds of existing names fail by
                // design, and we measure the success path.
                static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let i = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                ContextExt::bind_str(&*ctx, &format!("p{i}"), "v").expect("bind");
                ContextExt::unbind_str(&*ctx, &format!("p{i}")).expect("unbind");
            }),
            16,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });
    out.push(proxied);
    out
}

// --------------------------------------------------------------- HDNS --

fn hdns_realm() -> hdns::HdnsRealm {
    hdns::HdnsRealm::new(
        "bench",
        2, // "the HDNS service has been installed on two identical dedicated machines"
        groupcast::StackConfig::default(),
        None,
        7,
    )
}

/// Figure 4: HDNS & JNDI HDNS provider, lookup (read) throughput. All
/// requests go to one node, so this is per-node throughput.
pub fn fig4(config: &SweepConfig) -> Vec<Series> {
    let raw = sweep("hdns", config, |sim, rng, _| {
        let realm = hdns_realm();
        realm
            .rebind(0, "bench", hdns::HdnsEntry::leaf(vec![0; 64]))
            .expect("seed");
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::hdns_read()],
        )
        .with_work(
            Rc::new(move |_| {
                realm.lookup(0, "bench").expect("seeded entry");
            }),
            1,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    let spi = sweep("hdns-spi", config, |sim, rng, _| {
        let realm = hdns_realm();
        let ctx = rndi_providers::HdnsProviderContext::new(realm, 0, "bench");
        ContextExt::rebind_str(&*ctx, "bench", "payload").expect("seed");
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![scale(cost::hdns_read(), cost::HDNS_SPI_FACTOR)],
        )
        .with_work(op_work(ctx, NamingOp::lookup("bench".into())), 1);
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    vec![raw, spi]
}

/// Figure 5: HDNS & JNDI HDNS provider, rebind (write) throughput.
/// `bounded = false` reproduces the paper (unbounded JGroups queues ⇒
/// memory exhaustion ⇒ crash past ~20 clients); `bounded = true` is the
/// proposed fix measured by the flow-control ablation.
pub fn fig5(config: &SweepConfig, bounded: bool) -> Vec<Series> {
    let server_config = move || {
        if bounded {
            ServerConfig {
                workers: 1,
                queue_limit: Some(cost::HDNS_BOUNDED_QUEUE),
                ..Default::default()
            }
        } else {
            ServerConfig {
                workers: 1,
                bytes_per_job: cost::HDNS_WRITE_BYTES,
                memory_limit: Some(cost::HDNS_MEMORY_LIMIT),
                restart_after: Some(cost::hdns_restart()),
                ..Default::default()
            }
        }
    };

    let raw = sweep("hdns", config, move |sim, rng, _| {
        let realm = hdns_realm();
        let op = RoundTrips::new(
            QueueingServer::new(sim, server_config()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::hdns_write()],
        )
        .with_work(
            Rc::new(move |_| {
                // Real replicated write, sampled: each one drives the full
                // groupcast pipeline across both replicas.
                realm
                    .rebind(0, "bench", hdns::HdnsEntry::leaf(vec![0; 64]))
                    .expect("rebind");
            }),
            64,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    let spi = sweep("hdns-spi", config, move |sim, rng, _| {
        let realm = hdns_realm();
        let ctx = rndi_providers::HdnsProviderContext::new(realm, 0, "bench");
        let op = RoundTrips::new(
            QueueingServer::new(sim, server_config()),
            rng.fork(),
            cost::net_rtt(),
            vec![scale(cost::hdns_write(), cost::HDNS_SPI_FACTOR)],
        )
        .with_work(
            op_work(
                ctx,
                NamingOp::rebind("bench".into(), BoundValue::str("payload")),
            ),
            64,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    vec![raw, spi]
}

// ---------------------------------------------------------------- DNS --

fn dns_world() -> Arc<minidns::Resolver> {
    let server = minidns::AuthServer::new();
    let mut zone = minidns::Zone::new(minidns::DnsName::parse("bench.example").unwrap());
    for i in 0..32 {
        zone.insert(minidns::ResourceRecord::txt(
            &format!("e{i}.bench.example"),
            3600,
            format!("value-{i}"),
        ));
    }
    server.add_zone(zone);
    Arc::new(minidns::Resolver::new(vec![server]))
}

/// Figure 6: JNDI-DNS lookup (read) throughput.
pub fn fig6(config: &SweepConfig) -> Vec<Series> {
    let series = sweep("dns-spi", config, |sim, rng, _| {
        let resolver = dns_world();
        let name = minidns::DnsName::parse("e7.bench.example").unwrap();
        let sim2 = sim.clone();
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::dns_read()],
        )
        .with_work(
            Rc::new(move |_| {
                resolver
                    .resolve(
                        &name,
                        minidns::RecordType::Txt,
                        sim2.now().as_nanos() / 1_000_000,
                    )
                    .expect("record present");
            }),
            1,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });
    vec![series]
}

// --------------------------------------------------------------- LDAP --

fn ldap_server(throttle: Option<u64>) -> dirserv::DirectoryServer {
    let server = dirserv::DirectoryServer::new(dirserv::ServerConfig {
        read_throttle_per_sec: throttle,
        ..Default::default()
    });
    let conn = server.connect_anonymous();
    conn.add(
        dirserv::LdapEntry::new(dirserv::Dn::parse("o=bench").unwrap())
            .with("objectClass", "organization")
            .with("o", "bench"),
    )
    .expect("seed base");
    for i in 0..16 {
        conn.add(
            dirserv::LdapEntry::new(dirserv::Dn::parse(&format!("cn=e{i},o=bench")).unwrap())
                .with("objectClass", "device")
                .with("cn", format!("e{i}")),
        )
        .expect("seed entry");
    }
    server
}

/// Figure 7: JNDI-LDAP read and write throughput. The read plateau is the
/// real anti-DoS throttle's doing — the queueing server itself never
/// saturates.
pub fn fig7(config: &SweepConfig) -> Vec<Series> {
    let read = sweep("ldap-read", config, |sim, rng, _| {
        let server = ldap_server(Some(cost::LDAP_THROTTLE_PER_SEC));
        let conn = server.connect_anonymous();
        let dn = dirserv::Dn::parse("cn=e3,o=bench").unwrap();
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::ldap_read()],
        )
        .with_extra_delay(Rc::new(move |sim| {
            // The real server consults its throttle at virtual "now" and
            // reports the slowdown it imposed.
            let now_ms = sim.now().as_nanos() / 1_000_000;
            match conn.read(&dn, now_ms) {
                Ok((_, delay_ms)) => Duration::from_millis(delay_ms),
                Err(_) => Duration::ZERO,
            }
        }));
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    let write = sweep("ldap-write", config, |sim, rng, _| {
        let server = ldap_server(None);
        let conn = server.connect_anonymous();
        let dn = dirserv::Dn::parse("cn=e3,o=bench").unwrap();
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::ldap_write()],
        )
        .with_work(
            Rc::new(move |_| {
                conn.modify(
                    &dn,
                    &[dirserv::server::Modification::Replace(
                        "description".into(),
                        vec!["updated".into()],
                    )],
                )
                .expect("modify");
            }),
            1,
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    vec![read, write]
}

// ---------------------------------------------------------- Federation --

/// The §7 claim: "the individual performance characteristics of the
/// discussed JNDI providers are preserved when they are combined into a
/// federated name space." Compares a direct LDAP read against the full
/// DNS → HDNS → LDAP composite-URL path, with the real federated
/// resolution executed (sampled) through an [`InitialContext`].
pub fn fig8(config: &SweepConfig) -> Vec<Series> {
    let direct = sweep("ldap-direct", config, |sim, rng, _| {
        let server = ldap_server(Some(cost::LDAP_THROTTLE_PER_SEC));
        let conn = server.connect_anonymous();
        let dn = dirserv::Dn::parse("cn=e3,o=bench").unwrap();
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::ldap_read()],
        )
        .with_extra_delay(Rc::new(move |sim| {
            let now_ms = sim.now().as_nanos() / 1_000_000;
            match conn.read(&dn, now_ms) {
                Ok((_, d)) => Duration::from_millis(d),
                Err(_) => Duration::ZERO,
            }
        }));
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });

    let federated = sweep("federated dns-hdns-ldap", config, |sim, rng, _| {
        let deployment = federation_deployment();
        // Stage models: DNS root hop, HDNS intermediate hop, LDAP leaf hop.
        let dns_stage = Rc::new(RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::dns_read()],
        ));
        let hdns_stage = Rc::new(RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::hdns_read()],
        ));
        let ldap_conn = deployment.ldap.connect_anonymous();
        let ldap_dn = dirserv::Dn::parse("cn=mokey,ou=dcl,o=emory").unwrap();
        let ic = deployment.ic.clone();
        let ldap_stage = Rc::new(
            RoundTrips::new(
                QueueingServer::new(sim, ServerConfig::default()),
                rng.fork(),
                cost::net_rtt(),
                vec![cost::ldap_read()],
            )
            .with_extra_delay(Rc::new(move |sim| {
                let now_ms = sim.now().as_nanos() / 1_000_000;
                match ldap_conn.read(&ldap_dn, now_ms) {
                    Ok((_, d)) => Duration::from_millis(d),
                    Err(_) => Duration::ZERO,
                }
            }))
            .with_work(
                Rc::new(move |_| {
                    // The real federated resolution, end to end.
                    let v = ic
                        .lookup("dns://global/emory/mathcs/dcl/mokey")
                        .expect("federated lookup resolves");
                    assert_eq!(v.as_str(), Some("the-monkey"));
                }),
                32,
            ),
        );
        let op = Rc::new(SeqOp {
            stages: vec![dns_stage, hdns_stage, ldap_stage],
        });
        Rc::new(op) as Rc<dyn Operation>
    });

    vec![direct, federated]
}

struct FederationDeployment {
    ldap: dirserv::DirectoryServer,
    ic: Arc<InitialContext>,
}

/// Build the paper's §6 deployment: DNS anchors the federation, HDNS is
/// the replicated intermediate layer, a departmental LDAP server holds the
/// leaves.
fn federation_deployment() -> FederationDeployment {
    federation_deployment_with_env(Environment::new())
}

fn federation_deployment_with_env(env: Environment) -> FederationDeployment {
    struct ZeroClock;
    impl rndi_providers::common::MsClock for ZeroClock {
        fn now_ms(&self) -> u64 {
            0
        }
    }
    let clock: Arc<dyn rndi_providers::common::MsClock> = Arc::new(ZeroClock);

    // DNS: TXT at the anchor points at the HDNS layer.
    let dns_server = minidns::AuthServer::new();
    let mut zone = minidns::Zone::new(minidns::DnsName::parse("global.example").unwrap());
    zone.insert(minidns::ResourceRecord::txt(
        "global.example",
        3600,
        "hdns://host2",
    ));
    dns_server.add_zone(zone);
    let resolver = Arc::new(minidns::Resolver::new(vec![dns_server]));

    // HDNS: the replicated directory of department-level services.
    let realm = hdns::HdnsRealm::new("fed", 2, groupcast::StackConfig::default(), None, 21);
    realm.create_context(0, "emory").expect("ctx");
    realm.create_context(0, "emory/mathcs").expect("ctx");
    realm
        .bind(
            0,
            "emory/mathcs/dcl",
            hdns::HdnsEntry::leaf(
                rndi_core::value::StoredValue::Reference(Reference::url("ldap://dept-ldap/ou=dcl"))
                    .encode(),
            ),
        )
        .expect("bind ldap link");

    // LDAP: the departmental leaf server.
    let ldap = ldap_server_for_federation();

    let registry = Arc::new(ProviderRegistry::new());
    let dns_factory = rndi_providers::DnsFactory::new(clock.clone());
    dns_factory.register_anchor(
        "global",
        resolver,
        minidns::DnsName::parse("global.example").unwrap(),
    );
    registry.register(dns_factory);
    let hdns_factory = rndi_providers::HdnsFactory::new();
    hdns_factory.register_host("host2", realm, 0);
    registry.register(hdns_factory);
    let ldap_factory = rndi_providers::LdapFactory::new(clock);
    ldap_factory.register_host(
        "dept-ldap",
        ldap.clone(),
        dirserv::Dn::parse("o=emory").unwrap(),
    );
    registry.register(ldap_factory);

    let ic = Arc::new(InitialContext::new(registry, env.clone()).expect("ic"));
    FederationDeployment { ldap, ic }
}

/// Repeated federated lookups through a cache-enabled deployment. The
/// pipeline cache (TTL via `rndi.pipeline.cache.ttl.ms`) absorbs the
/// re-resolution of the dns→hdns→ldap chain after the first hop — the
/// resulting per-provider hit rates land in `rndi_core::spi::telemetry`.
/// Kept out of the fig8 sweep itself so the throughput/latency curves
/// retain the paper's uncached semantics.
pub fn fig8_cached_lookups(repeats: usize) {
    let env = Environment::new().with(env_keys::CACHE_TTL_MS, "60000");
    let deployment = federation_deployment_with_env(env);
    for _ in 0..repeats {
        let v = deployment
            .ic
            .lookup("dns://global/emory/mathcs/dcl/mokey")
            .expect("federated lookup resolves");
        assert_eq!(v.as_str(), Some("the-monkey"));
    }
}

fn ldap_server_for_federation() -> dirserv::DirectoryServer {
    let ldap = dirserv::DirectoryServer::new(dirserv::ServerConfig {
        read_throttle_per_sec: Some(cost::LDAP_THROTTLE_PER_SEC),
        ..Default::default()
    });
    let conn = ldap.connect_anonymous();
    conn.add(
        dirserv::LdapEntry::new(dirserv::Dn::parse("o=emory").unwrap())
            .with("objectClass", "organization")
            .with("o", "emory"),
    )
    .expect("seed");
    conn.add(
        dirserv::LdapEntry::new(dirserv::Dn::parse("ou=dcl,o=emory").unwrap())
            .with("objectClass", "organizationalUnit")
            .with("ou", "dcl"),
    )
    .expect("seed");
    conn.add(
        dirserv::LdapEntry::new(dirserv::Dn::parse("cn=mokey,ou=dcl,o=emory").unwrap())
            .with("objectClass", "rndiObject")
            .with("cn", "mokey")
            .with(
                "rndiValue",
                String::from_utf8(rndi_core::value::StoredValue::Str("the-monkey".into()).encode())
                    .expect("utf8"),
            ),
    )
    .expect("seed");
    ldap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            clients: vec![5, 40],
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(5),
            ..Default::default()
        }
    }

    #[test]
    fn fig2_shape_raw_beats_spi() {
        let s = fig2(&tiny());
        // At 40 clients (offered 800/s) the raw LUS is saturated near 400
        // and the SPI near 300.
        assert!(s[0].at(40) > s[1].at(40) * 1.1, "raw > spi by ~25%");
        // Strict == relaxed for reads.
        let rel = s[1].at(40);
        let strict = s[2].at(40);
        assert!((strict - rel).abs() / rel < 0.15, "{strict} vs {rel}");
    }

    #[test]
    fn fig3_shape_strict_is_much_slower() {
        let s = fig3(&tiny());
        assert!(s[0].at(40) > s[1].at(40), "raw > relaxed");
        assert!(
            s[1].at(40) > 3.0 * s[2].at(40),
            "strict pays the lock: relaxed {} vs strict {}",
            s[1].at(40),
            s[2].at(40)
        );
    }

    #[test]
    fn fig5_unbounded_collapses_bounded_does_not() {
        let cfg = tiny();
        let unbounded = fig5(&cfg, false);
        let bounded = fig5(&cfg, true);
        // At 40 clients (offered 800/s ≫ 206/s) the unbounded stack has
        // crashed; the bounded stack still serves at capacity.
        assert!(
            unbounded[0].at(40) < bounded[0].at(40) * 0.75,
            "unbounded {} vs bounded {}",
            unbounded[0].at(40),
            bounded[0].at(40)
        );
    }

    #[test]
    fn fig7_read_plateaus_at_throttle() {
        let cfg = SweepConfig {
            clients: vec![60],
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(8),
            ..Default::default()
        };
        let s = fig7(&cfg);
        let read = s[0].at(60);
        // 60 clients offer 1200/s; the throttle pins reads near 800/s.
        assert!(
            (700.0..880.0).contains(&read),
            "plateau at ~800, got {read}"
        );
        let write = s[1].at(60);
        assert!(write > read, "writes unthrottled: {write}");
    }

    #[test]
    fn fig8_federation_resolves_and_preserves_plateau() {
        let cfg = SweepConfig {
            clients: vec![60],
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(8),
            ..Default::default()
        };
        let s = fig8(&cfg);
        let direct = s[0].at(60);
        let fed = s[1].at(60);
        // The leaf's throttle governs both paths.
        assert!(
            (fed - direct).abs() / direct < 0.2,
            "federated {fed} vs direct {direct}"
        );
        // Federated latency is strictly higher (three hops).
        assert!(s[1].points[0].mean_latency_ms > s[0].points[0].mean_latency_ms);
    }
}
