//! # rndi-bench — the evaluation harness
//!
//! Regenerates the paper's §7 experiments: closed-loop clients (each
//! issuing a request, waiting for the reply, then pausing 50 ms — ≤20 Hz
//! per client) sweep from 1 to 100 against each backend, measuring
//! successfully completed operations per second.
//!
//! The harness runs in **virtual time** on `simnet`: backend servers are
//! queueing stations whose service times come from [`cost`] (calibrated to
//! the paper's reported capacities), while the *logic* of each operation
//! executes against the real backend implementations (real registrar
//! lookups, real LDAP searches feeding the anti-DoS throttle, real DNS
//! resolution). Saturation, overload collapse and throttling therefore
//! *emerge* from the simulation rather than being painted on.
//!
//! One bench target per figure:
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig2_jini_lookup` | Fig. 2 — Jini & JNDI-Jini lookup throughput |
//! | `fig3_jini_rebind` | Fig. 3 — Jini & JNDI-Jini rebind throughput |
//! | `fig4_hdns_lookup` | Fig. 4 — HDNS & SPI lookup throughput |
//! | `fig5_hdns_rebind` | Fig. 5 — HDNS & SPI rebind throughput (collapse) |
//! | `fig6_dns_lookup`  | Fig. 6 — JNDI-DNS lookup throughput |
//! | `fig7_ldap`        | Fig. 7 — JNDI-LDAP read/write throughput |
//! | `fig8_federation`  | §7 federation-preservation claim |
//! | `ablation_stack`   | §4.2 sequencer vs bimodal trade-off |
//! | `ablation_flowctl` | §7 unbounded vs bounded queues |
//! | `spi_overhead`     | Criterion: per-op API-layer cost (§5.1 ≥8×) |

pub mod cost;
pub mod experiment;
pub mod figures;
pub mod loadgen;
pub mod obsdump;

pub use experiment::{print_figure, print_goodput, print_latency, sweep, Series, SweepConfig};
pub use loadgen::{
    run_closed_loop, run_closed_loop_with_deadline, LoadResult, Operation, RoundTrips,
};
