//! `--obs-dump`: post-run observability dump for the figure binaries.
//!
//! After a figure completes, `dump()` prints the full Prometheus-style
//! exposition (`telemetry::render()`), per-provider pipeline latency rows
//! derived from the shared `rndi_op_duration_ns` histograms, and the
//! slowest traces in the ring with their child spans — the same data a
//! scrape of a live simnet obs endpoint would return, printed for eyeballs.

use rndi_core::spi::telemetry;
use rndi_obs::metrics::names;
use rndi_obs::SpanRecord;

/// Whether the current invocation asked for a dump, either with the
/// `--obs-dump` flag or the `RNDI_OBS_DUMP` environment variable.
pub fn requested() -> bool {
    std::env::args().any(|a| a == "--obs-dump") || std::env::var_os("RNDI_OBS_DUMP").is_some()
}

/// Print the exposition, provider latency table, and `top_n` slowest traces.
pub fn dump(top_n: usize) {
    println!("\n==== obs dump: metrics exposition ====");
    print!("{}", telemetry::render());
    print_provider_latency();
    print_slowest_traces(top_n);
}

/// One latency row per `(provider, op)` observed at the pipeline layer —
/// the same log2-bucket histograms the exposition exports, summarized the
/// way `print_latency` summarizes a sweep series.
pub fn print_provider_latency() {
    let mut rows: Vec<(String, String, std::sync::Arc<rndi_obs::Histogram>)> = Vec::new();
    for (labels, hist) in rndi_obs::metrics::histogram_family(names::OP_DURATION) {
        let get = |key: &str| {
            labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        if get("layer") == "pipeline" && hist.count() > 0 {
            rows.push((get("provider"), get("op"), hist));
        }
    }
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    println!("\n==== obs dump: pipeline latency by provider ====");
    println!(
        "{:<12} {:<18} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "provider", "op", "count", "mean_us", "p50_us", "p95_us", "p99_us"
    );
    for (provider, op, hist) in rows {
        let us = |v: Option<f64>| v.map(|ns| ns / 1e3).unwrap_or(0.0);
        println!(
            "{:<12} {:<18} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            provider,
            op,
            hist.count(),
            us(hist.mean()),
            us(hist.quantile(0.5)),
            us(hist.quantile(0.95)),
            us(hist.quantile(0.99)),
        );
    }
}

/// Print the `top_n` slowest root spans with their children, indented by
/// span depth, so a federated lookup reads as one tree: client root, one
/// child per mount, server spans at the leaves.
pub fn print_slowest_traces(top_n: usize) {
    let ring = rndi_obs::trace::ring();
    let roots = ring.slowest_roots(top_n);
    if roots.is_empty() {
        return;
    }
    println!("\n==== obs dump: {} slowest traces ====", roots.len());
    for root in &roots {
        let mut spans = ring.trace(root.trace_id);
        spans.sort_by_key(|s| (s.depth, s.span_id));
        for span in &spans {
            print_span(span);
        }
    }
}

fn print_span(span: &SpanRecord) {
    println!(
        "{:indent$}[{:016x}] {}/{} {} {} {:.3}ms",
        "",
        span.trace_id,
        span.layer,
        span.provider,
        span.op,
        span.outcome.label(),
        span.duration_ns as f64 / 1e6,
        indent = 2 * span.depth as usize,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rndi_obs::{SpanOutcome, TraceCtx};
    use std::time::Duration;

    #[test]
    fn dump_prints_without_panicking() {
        let ctx = TraceCtx::root();
        rndi_obs::trace::record(SpanRecord::new(
            &ctx,
            "pipeline",
            "obs-dump-test",
            "lookup",
            SpanOutcome::Ok,
            Duration::from_millis(3),
        ));
        rndi_obs::metrics::histogram(
            names::OP_DURATION,
            &[
                ("provider", "obs-dump-test"),
                ("op", "lookup"),
                ("layer", "pipeline"),
            ],
        )
        .record_duration(Duration::from_millis(3));
        dump(5);
    }

    #[test]
    fn requested_honors_env_var() {
        assert!(!requested());
        std::env::set_var("RNDI_OBS_DUMP", "1");
        assert!(requested());
        std::env::remove_var("RNDI_OBS_DUMP");
    }
}
