//! Sweep driver and figure printing.

use std::rc::Rc;
use std::time::Duration;

use simnet::{Sim, SimRng};

use crate::loadgen::{run_closed_loop_with_deadline, LoadResult, Operation};

/// Sweep configuration shared by all figures.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Client counts to sweep (the paper's x-axis, 1..100).
    pub clients: Vec<usize>,
    pub think: Duration,
    /// Goodput budget: completions slower than this count toward
    /// throughput but not goodput. `ZERO` disables the distinction.
    pub deadline: Duration,
    pub warmup: Duration,
    pub measure: Duration,
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            clients: vec![1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 80, 100],
            think: crate::cost::think_time(),
            deadline: crate::cost::deadline_budget(),
            warmup: Duration::from_secs(5),
            measure: Duration::from_secs(30),
            seed: 20060425, // IPPS 2006
        }
    }
}

impl SweepConfig {
    /// A faster configuration for CI / smoke runs.
    pub fn quick() -> Self {
        SweepConfig {
            clients: vec![1, 5, 10, 20, 40, 70, 100],
            warmup: Duration::from_secs(2),
            measure: Duration::from_secs(10),
            ..Default::default()
        }
    }
}

/// One measured series (one line of a figure).
#[derive(Clone, Debug)]
pub struct Series {
    pub label: String,
    pub points: Vec<LoadResult>,
}

impl Series {
    /// Peak throughput across the sweep.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.throughput).fold(0.0, f64::max)
    }

    /// Throughput at the largest client count.
    pub fn tail(&self) -> f64 {
        self.points.last().map(|p| p.throughput).unwrap_or(0.0)
    }

    /// Throughput at the point closest to `clients`.
    pub fn at(&self, clients: usize) -> f64 {
        self.points
            .iter()
            .min_by_key(|p| p.clients.abs_diff(clients))
            .map(|p| p.throughput)
            .unwrap_or(0.0)
    }
}

/// Run a sweep: `setup` builds (per point) the operation under test inside
/// a fresh simulation, so points are independent, like separate benchmark
/// runs on the paper's testbed.
pub fn sweep(
    label: &str,
    config: &SweepConfig,
    setup: impl Fn(&Sim, &SimRng, usize) -> Rc<dyn Operation>,
) -> Series {
    let mut points = Vec::with_capacity(config.clients.len());
    for &clients in &config.clients {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(config.seed ^ (clients as u64) << 32);
        let op = setup(&sim, &rng, clients);
        let result = run_closed_loop_with_deadline(
            &sim,
            op,
            clients,
            config.think,
            config.deadline,
            config.warmup,
            config.measure,
            &rng,
        );
        points.push(result);
    }
    Series {
        label: label.to_string(),
        points,
    }
}

/// Print a figure as an aligned table: one row per client count, one
/// column per series (ops/s), matching the paper's plots.
pub fn print_figure(title: &str, series: &[Series]) {
    println!();
    println!("# {title}");
    print!("{:>8}", "clients");
    for s in series {
        print!("  {:>20}", s.label);
    }
    println!();
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..n {
        let clients = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.clients))
            .unwrap_or(0);
        print!("{clients:>8}");
        for s in series {
            match s.points.get(i) {
                Some(p) => print!("  {:>20.1}", p.throughput),
                None => print!("  {:>20}", "-"),
            }
        }
        println!();
    }
    // Summary lines the EXPERIMENTS.md table is built from.
    for s in series {
        println!(
            "## {}: peak {:.0} op/s, at-100-clients {:.0} op/s",
            s.label,
            s.peak(),
            s.tail()
        );
    }
}

/// Print latency columns for one series (used by the federation figure).
pub fn print_latency(series: &Series) {
    println!();
    println!("# latency — {}", series.label);
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}  {:>8}",
        "clients", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "goodput", "shed"
    );
    for p in &series.points {
        println!(
            "{:>8}  {:>12.2}  {:>12.2}  {:>12.2}  {:>12.2}  {:>12.1}  {:>8}",
            p.clients,
            p.mean_latency_ms,
            p.p50_latency_ms,
            p.p95_latency_ms,
            p.p99_latency_ms,
            p.goodput,
            p.failed
        );
    }
}

/// Print goodput columns for one series: throughput vs. in-budget
/// throughput and the ops the server refused or lost. The widening gap
/// between the first two columns past the knee is the overload story the
/// throughput table alone hides.
pub fn print_goodput(series: &Series) {
    println!();
    println!("# goodput — {}", series.label);
    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}  {:>8}",
        "clients", "ops/s", "goodput/s", "in_budget%", "shed"
    );
    for p in &series.points {
        let pct = if p.completed > 0 {
            100.0 * p.in_budget as f64 / p.completed as f64
        } else {
            0.0
        };
        println!(
            "{:>8}  {:>12.1}  {:>12.1}  {:>9.1}%  {:>8}",
            p.clients, p.throughput, p.goodput, pct, p.failed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::RoundTrips;
    use simnet::{QueueingServer, ServerConfig};

    fn fixed_op(service_ms: u64) -> impl Fn(&Sim, &SimRng, usize) -> Rc<dyn Operation> {
        move |sim, rng, _clients| {
            let server = QueueingServer::new(sim, ServerConfig::default());
            let op = Rc::new(RoundTrips::new(
                server,
                rng.fork(),
                Duration::from_micros(200),
                vec![Duration::from_millis(service_ms)],
            ));
            Rc::new(op) as Rc<dyn Operation>
        }
    }

    #[test]
    fn sweep_produces_monotone_points_then_saturation() {
        let config = SweepConfig {
            clients: vec![1, 10, 50],
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(5),
            ..Default::default()
        };
        let s = sweep("t", &config, fixed_op(5));
        assert_eq!(s.points.len(), 3);
        assert!(s.points[0].throughput < s.points[1].throughput);
        // Capacity 200/s; 50 clients saturate.
        assert!((160.0..215.0).contains(&s.points[2].throughput));
        assert!((160.0..215.0).contains(&s.peak().min(215.0)));
        assert!(s.at(50) == s.tail());
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = SweepConfig {
            clients: vec![10],
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(5),
            ..Default::default()
        };
        let a = sweep("a", &config, fixed_op(2));
        let b = sweep("b", &config, fixed_op(2));
        assert_eq!(a.points[0].throughput, b.points[0].throughput);
        assert_eq!(a.points[0].completed, b.points[0].completed);
    }

    #[test]
    fn print_does_not_panic() {
        let config = SweepConfig {
            clients: vec![1, 5],
            warmup: Duration::from_millis(500),
            measure: Duration::from_secs(2),
            ..Default::default()
        };
        let s = sweep("demo", &config, fixed_op(1));
        print_figure("Smoke figure", std::slice::from_ref(&s));
        print_latency(&s);
    }
}
