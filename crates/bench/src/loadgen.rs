//! The closed-loop load generator (paper §7).
//!
//! "A single client machine issues a series of requests from an increasing
//! number of client threads (between 1 and 100). Each client thread issues
//! consecutive requests … with 50 ms pauses between requests. We measured
//! the ability of the service to withstand the increasing load as a number
//! of requests per second that have been successfully handled."

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use simnet::{JobOutcome, QueueingServer, Sim, SimRng, SimTime, ThroughputMeter};

use rndi_core::context::DirContext;
use rndi_core::env::Environment;
use rndi_core::op::{dispatch, NamingOp};
use rndi_core::spi::{ProviderBackend, ProviderPipeline};
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

/// Completion callback: `(sim, ok)`.
pub type DoneFn = Box<dyn FnOnce(&Sim, bool)>;
/// Real-backend work executed at op completion.
pub type WorkFn = Rc<dyn Fn(&Sim)>;
/// Extra completion delay computed at completion time.
pub type DelayFn = Rc<dyn Fn(&Sim) -> Duration>;

/// Build a [`WorkFn`] that dispatches one reified [`NamingOp`] against a
/// context each time the sampled work slot fires. Figure workloads use this
/// to route their real backend traffic through the same op values the
/// provider pipeline observes, so pipeline telemetry covers benchmark
/// traffic too.
pub fn op_work(ctx: Arc<dyn DirContext>, op: NamingOp) -> WorkFn {
    Rc::new(move |_| {
        dispatch(ctx.as_ref(), &op).expect("benchmark op succeeds");
    })
}

/// Which transport carries [`op_work`] dispatches to the backend: direct
/// in-process calls, or a loopback TCP hop through `rndi-net` (the
/// in-proc-vs-TCP comparison benches switch on this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    InProcess,
    /// Loopback TCP with whatever protocol version the environment picks
    /// (v2 binary envelopes by default).
    Tcp,
    /// Loopback TCP pinned to the v1 framed-JSON lock-step protocol — the
    /// negotiated-fallback arm of v1-vs-v2 comparisons.
    TcpV1,
}

/// A backend reached over a chosen [`Transport`]. For [`Transport::Tcp`]
/// the handle owns the loopback server; dropping it (or calling
/// [`TransportHandle::shutdown`]) stops the listener.
pub struct TransportHandle {
    ctx: Arc<dyn DirContext>,
    server: Option<rndi_net::NetServer>,
}

impl TransportHandle {
    /// The context benchmark ops should dispatch against.
    pub fn ctx(&self) -> Arc<dyn DirContext> {
        self.ctx.clone()
    }

    /// The loopback server's address, when the transport is TCP.
    pub fn server_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.local_addr())
    }

    /// Gracefully stop the loopback server (no-op for in-process).
    pub fn shutdown(self) {
        if let Some(server) = self.server {
            server.shutdown();
        }
    }
}

/// Put `backend` behind the chosen transport: in-process wraps it in the
/// standard pipeline directly; TCP starts a loopback [`rndi_net::NetServer`]
/// in front of it and returns a pooled [`rndi_net::NetClient`] pipeline, so
/// the only difference between the two arms is the wire.
pub fn via_transport(
    transport: Transport,
    backend: Arc<dyn ProviderBackend>,
    env: &Environment,
) -> rndi_core::error::Result<TransportHandle> {
    match transport {
        Transport::InProcess => Ok(TransportHandle {
            ctx: ProviderPipeline::standard(backend, env),
            server: None,
        }),
        Transport::Tcp | Transport::TcpV1 => {
            let server = rndi_net::NetServer::bind(backend, env)?;
            let client_env = if transport == Transport::TcpV1 {
                env.clone()
                    .with(rndi_core::env::keys::NET_PROTO_VERSION, "1")
            } else {
                env.clone()
            };
            let ctx = rndi_net::NetClient::connect(server.local_addr().to_string(), &client_env)?;
            Ok(TransportHandle {
                ctx,
                server: Some(server),
            })
        }
    }
}

/// One logical client operation against a backend.
pub trait Operation {
    /// Start the operation at virtual "now"; call `done(sim, ok)` when it
    /// completes (or fails).
    fn issue(&self, sim: &Sim, done: DoneFn);
}

/// The standard operation shape: a sequence of client↔server round trips
/// (one per protocol exchange), each paying half-RTT + queued service +
/// half-RTT, plus optional *real backend work* and an optional extra delay
/// (e.g. an anti-DoS throttle verdict) evaluated at completion time.
pub struct RoundTrips {
    pub server: QueueingServer,
    pub rng: SimRng,
    pub net_rtt: Duration,
    /// Mean service time of each round trip, in order.
    pub segments: Vec<Duration>,
    /// Executes the real backend logic once per logical op (sampled).
    pub work: Option<WorkFn>,
    /// Run `work` on every k-th op only (1 = always); keeps heavyweight
    /// backends (full HDNS replication) affordable inside big sweeps.
    pub work_every: u32,
    /// Extra completion delay, e.g. the LDAP throttle's verdict.
    pub extra_delay: Option<DelayFn>,
    /// When set, each logical op mints a root trace whose id groups the
    /// per-segment server spans; the label names the client-layer span.
    pub trace_label: Option<String>,
    counter: RefCell<u32>,
}

impl RoundTrips {
    pub fn new(
        server: QueueingServer,
        rng: SimRng,
        net_rtt: Duration,
        segments: Vec<Duration>,
    ) -> Self {
        assert!(
            !segments.is_empty(),
            "an operation needs at least one round trip"
        );
        RoundTrips {
            server,
            rng,
            net_rtt,
            segments,
            work: None,
            work_every: 1,
            extra_delay: None,
            trace_label: None,
            counter: RefCell::new(0),
        }
    }

    pub fn with_work(mut self, work: WorkFn, every: u32) -> Self {
        self.work = Some(work);
        self.work_every = every.max(1);
        self
    }

    pub fn with_extra_delay(mut self, f: DelayFn) -> Self {
        self.extra_delay = Some(f);
        self
    }

    /// Trace every logical op under `label` (see [`RoundTrips::trace_label`]).
    pub fn with_trace_label(mut self, label: impl Into<String>) -> Self {
        self.trace_label = Some(label.into());
        self
    }

    fn run_segment(self: &Rc<Self>, sim: &Sim, idx: usize, trace: Option<TraceCtx>, done: DoneFn) {
        let mean = self.segments[idx];
        // ±15% uniform jitter decorrelates clients without changing means.
        let service = self.rng.jittered(mean, 0.15);
        let this = self.clone();
        let half_rtt = self.net_rtt / 2;
        sim.schedule(half_rtt, move |_sim| {
            let this2 = this.clone();
            let complete = move |sim: &Sim, outcome: JobOutcome| {
                if outcome != JobOutcome::Completed {
                    done(sim, false);
                    return;
                }
                let last = idx + 1 == this2.segments.len();
                if !last {
                    this2.run_segment(sim, idx + 1, trace, done);
                    return;
                }
                // Real backend logic (sampled) + throttle verdict.
                let mut extra = Duration::ZERO;
                {
                    let mut c = this2.counter.borrow_mut();
                    *c += 1;
                    if this2.work_every == 1 || (*c).is_multiple_of(this2.work_every) {
                        if let Some(work) = &this2.work {
                            work(sim);
                        }
                    }
                }
                if let Some(delay_fn) = &this2.extra_delay {
                    extra = delay_fn(sim);
                }
                sim.schedule(extra + this2.net_rtt / 2, move |sim| done(sim, true));
            };
            // Untraced ops keep the exact pre-observability submit path so
            // tracing stays strictly opt-in for throughput sweeps.
            match trace {
                Some(_) => this.server.submit_traced(service, trace, complete),
                None => this.server.submit(service, complete),
            }
        });
    }
}

impl Operation for Rc<RoundTrips> {
    fn issue(&self, sim: &Sim, done: DoneFn) {
        let Some(label) = &self.trace_label else {
            self.run_segment(sim, 0, None, done);
            return;
        };
        // One root span per logical op; every segment's server span links
        // under it, so `--obs-dump` can show whole-op traces.
        let ctx = TraceCtx::root();
        let label = label.clone();
        let issued = sim.now();
        let wrapped: DoneFn = Box::new(move |sim, ok| {
            let elapsed = sim.now() - issued;
            rndi_obs::trace::record(SpanRecord::new(
                &ctx,
                "client",
                "loadgen",
                label,
                if ok {
                    SpanOutcome::Ok
                } else {
                    SpanOutcome::Err
                },
                elapsed,
            ));
            done(sim, ok);
        });
        self.run_segment(sim, 0, Some(ctx), wrapped);
    }
}

/// What one sweep point produces.
#[derive(Clone, Debug)]
pub struct LoadResult {
    pub clients: usize,
    /// Successfully completed operations per second inside the window.
    pub throughput: f64,
    /// Operations per second that completed *within the deadline budget*
    /// inside the window. Equal to `throughput` when no budget was set —
    /// the gap between the two is work the server finished after the
    /// caller would have given up.
    pub goodput: f64,
    pub mean_latency_ms: f64,
    pub p50_latency_ms: f64,
    pub p95_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub completed: u64,
    /// Completions inside the window that beat the deadline budget.
    pub in_budget: u64,
    /// Operations the server refused or lost inside the window (bounded
    /// queues shedding, crashes); the "shed" column in figure tables.
    pub failed: u64,
}

struct LoadState {
    meter: ThroughputMeter,
    /// The same log2-bucket histogram the pipeline's telemetry uses — one
    /// quantile implementation serves both the figures and the exposition.
    latencies: rndi_obs::Histogram,
    failed: u64,
    /// Goodput budget; `ZERO` = no budget (every completion is in budget).
    deadline: Duration,
    in_budget: u64,
    window_start: SimTime,
    window_end: SimTime,
    /// Per-iteration think jitter, like real threads' scheduling drift —
    /// prevents artificial phase lock when many clients fail (and hence
    /// would retry) at the same instant.
    rng: SimRng,
}

/// Run `clients` closed-loop clients against `op` for `warmup + measure`
/// of virtual time; throughput/latency are measured inside the window
/// `[warmup, warmup+measure)`.
pub fn run_closed_loop(
    sim: &Sim,
    op: Rc<dyn Operation>,
    clients: usize,
    think: Duration,
    warmup: Duration,
    measure: Duration,
    rng: &SimRng,
) -> LoadResult {
    run_closed_loop_with_deadline(
        sim,
        op,
        clients,
        think,
        Duration::ZERO,
        warmup,
        measure,
        rng,
    )
}

/// [`run_closed_loop`] with a goodput budget: completions slower than
/// `deadline` still count toward throughput, but not toward
/// [`LoadResult::goodput`]. `Duration::ZERO` disables the budget.
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop_with_deadline(
    sim: &Sim,
    op: Rc<dyn Operation>,
    clients: usize,
    think: Duration,
    deadline: Duration,
    warmup: Duration,
    measure: Duration,
    rng: &SimRng,
) -> LoadResult {
    let window_start = SimTime::ZERO + warmup;
    let window_end = window_start + measure;
    let state = Rc::new(RefCell::new(LoadState {
        meter: ThroughputMeter::new(),
        latencies: rndi_obs::Histogram::new(),
        failed: 0,
        deadline,
        in_budget: 0,
        window_start,
        window_end,
        rng: rng.fork(),
    }));
    state.borrow_mut().meter.open(window_start);
    state.borrow_mut().meter.close(window_end);

    for _ in 0..clients {
        // Stagger client starts uniformly across one think period to avoid
        // phase lock (real threads never start in lockstep either).
        let start = rng.jittered(think, 0.99).min(think);
        let op = op.clone();
        let state = state.clone();
        sim.schedule(start, move |sim| client_iteration(sim, op, think, state));
    }
    sim.run_until(window_end);

    let st = state.borrow();
    let throughput = st.meter.rate().unwrap_or(0.0);
    let goodput = if deadline.is_zero() {
        throughput
    } else {
        st.in_budget as f64 / measure.as_secs_f64()
    };
    let quantile_ms = |q: f64| st.latencies.quantile(q).map(|ns| ns / 1e6).unwrap_or(0.0);
    LoadResult {
        clients,
        throughput,
        goodput,
        mean_latency_ms: st.latencies.mean().map(|ns| ns / 1e6).unwrap_or(0.0),
        p50_latency_ms: quantile_ms(0.5),
        p95_latency_ms: quantile_ms(0.95),
        p99_latency_ms: quantile_ms(0.99),
        completed: st.meter.count(),
        in_budget: st.in_budget,
        failed: st.failed,
    }
}

fn client_iteration(
    sim: &Sim,
    op: Rc<dyn Operation>,
    think: Duration,
    state: Rc<RefCell<LoadState>>,
) {
    let issued_at = sim.now();
    if issued_at >= state.borrow().window_end {
        return;
    }
    let op2 = op.clone();
    let state2 = state.clone();
    op.issue(
        sim,
        Box::new(move |sim, ok| {
            {
                let mut st = state2.borrow_mut();
                let now = sim.now();
                if ok {
                    st.meter.record(now);
                    if now >= st.window_start && now < st.window_end {
                        let took = now - issued_at;
                        st.latencies.record_duration(took);
                        if st.deadline.is_zero() || took <= st.deadline {
                            st.in_budget += 1;
                        }
                    }
                } else if now >= st.window_start && now < st.window_end {
                    st.failed += 1;
                }
            }
            let state3 = state2.clone();
            let pause = state2.borrow().rng.jittered(think, 0.2);
            sim.schedule(pause, move |sim| client_iteration(sim, op2, think, state3));
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::ServerConfig;

    fn quick(clients: usize, service: Duration, config: ServerConfig) -> LoadResult {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(1);
        let server = QueueingServer::new(&sim, config);
        let op = Rc::new(RoundTrips::new(
            server,
            rng.fork(),
            Duration::from_micros(200),
            vec![service],
        ));
        run_closed_loop(
            &sim,
            Rc::new(op) as Rc<dyn Operation>,
            clients,
            Duration::from_millis(50),
            Duration::from_secs(2),
            Duration::from_secs(10),
            &rng,
        )
    }

    #[test]
    fn unloaded_client_runs_at_think_rate() {
        // One client, negligible service: ~1/(0.050 + small) ≈ 19.8/s.
        let r = quick(1, Duration::from_micros(100), ServerConfig::default());
        assert!(
            (18.0..20.5).contains(&r.throughput),
            "rate {}",
            r.throughput
        );
        assert_eq!(r.failed, 0);
    }

    #[test]
    fn saturation_caps_at_capacity() {
        // service 5 ms ⇒ capacity 200/s; 60 clients offer 1200/s.
        let r = quick(60, Duration::from_millis(5), ServerConfig::default());
        assert!(
            (170.0..215.0).contains(&r.throughput),
            "saturated rate {}",
            r.throughput
        );
        assert!(r.mean_latency_ms > 100.0, "queueing delay visible");
    }

    #[test]
    fn linear_region_scales_with_clients() {
        let r10 = quick(10, Duration::from_micros(500), ServerConfig::default());
        let r40 = quick(40, Duration::from_micros(500), ServerConfig::default());
        assert!(
            r40.throughput > 3.0 * r10.throughput,
            "{} vs {}",
            r40.throughput,
            r10.throughput
        );
    }

    #[test]
    fn memory_crash_collapses_throughput() {
        let healthy = quick(60, Duration::from_millis(5), ServerConfig::default());
        // 60 closed-loop clients keep ~50 jobs queued at saturation; a
        // budget of 8 queued jobs crashes the server repeatedly.
        let crashy = quick(
            60,
            Duration::from_millis(5),
            ServerConfig {
                bytes_per_job: 2048,
                memory_limit: Some(16 * 1024),
                restart_after: Some(Duration::from_secs(3)),
                ..Default::default()
            },
        );
        assert!(
            crashy.throughput < healthy.throughput * 0.7,
            "collapse: {} vs healthy {}",
            crashy.throughput,
            healthy.throughput
        );
        assert!(crashy.failed > 0, "crashed jobs reported as failures");
    }

    #[test]
    fn multi_segment_ops_cost_more() {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(2);
        let server = QueueingServer::new(&sim, ServerConfig::default());
        let seg = Duration::from_millis(2);
        let op = Rc::new(RoundTrips::new(
            server,
            rng.fork(),
            Duration::from_micros(200),
            vec![seg; 12],
        ));
        let r = run_closed_loop(
            &sim,
            Rc::new(op) as Rc<dyn Operation>,
            40,
            Duration::from_millis(50),
            Duration::from_secs(2),
            Duration::from_secs(10),
            &rng,
        );
        // 12 segments × 2 ms ⇒ ~24 ms server time per op ⇒ ≈41/s cap.
        assert!(
            (30.0..48.0).contains(&r.throughput),
            "rate {}",
            r.throughput
        );
    }

    #[test]
    fn trace_label_links_client_and_server_spans() {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(4);
        let server = QueueingServer::new(&sim, ServerConfig::default());
        server.set_obs_label("obs-loadgen-test");
        let op = Rc::new(
            RoundTrips::new(
                server,
                rng.fork(),
                Duration::from_micros(200),
                vec![Duration::from_millis(1); 2],
            )
            .with_trace_label("obs-loadgen-op"),
        );
        let r = run_closed_loop(
            &sim,
            Rc::new(op) as Rc<dyn Operation>,
            1,
            Duration::from_millis(50),
            Duration::ZERO,
            Duration::from_secs(1),
            &rng,
        );
        assert!(r.completed > 0);
        let spans = rndi_obs::trace::ring().snapshot();
        let client = spans
            .iter()
            .rev()
            .find(|s| s.op == "obs-loadgen-op")
            .expect("client root span recorded");
        assert_eq!(client.layer, "client");
        assert_eq!(client.parent_span, 0, "root span has no parent");
        // Both segments' server spans hang off this op's root.
        let children: Vec<_> = rndi_obs::trace::ring()
            .trace(client.trace_id)
            .into_iter()
            .filter(|s| s.parent_span == client.span_id && s.layer == "server")
            .collect();
        assert_eq!(children.len(), 2, "one server span per round trip");
        assert!(children.iter().all(|s| &*s.provider == "obs-loadgen-test"));
    }

    #[test]
    fn work_and_extra_delay_run() {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(3);
        let server = QueueingServer::new(&sim, ServerConfig::default());
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let op = Rc::new(
            RoundTrips::new(
                server,
                rng.fork(),
                Duration::ZERO,
                vec![Duration::from_millis(1)],
            )
            .with_work(
                Rc::new(move |_| {
                    *h.borrow_mut() += 1;
                }),
                1,
            )
            .with_extra_delay(Rc::new(|_| Duration::from_millis(100))),
        );
        let r = run_closed_loop(
            &sim,
            Rc::new(op) as Rc<dyn Operation>,
            1,
            Duration::from_millis(50),
            Duration::ZERO,
            Duration::from_secs(5),
            &rng,
        );
        assert!(*hits.borrow() > 0, "work executed");
        // 1 ms service + 100 ms delay + 50 ms think ⇒ ≈6.6 ops/s.
        assert!((5.0..8.0).contains(&r.throughput), "rate {}", r.throughput);
        assert!(r.mean_latency_ms > 100.0, "delay charged to latency");
    }
}
