//! Calibrated cost model.
//!
//! The paper's testbed (Pentium 4 / Celeron machines on Gigabit Ethernet,
//! 2005-era JVMs) is gone; these service-time constants are chosen so each
//! backend's *capacity* matches the figure it was measured at, and every
//! derived effect (saturation knee, SPI overhead ratio, strict-bind
//! penalty, overload collapse, throttle plateau) then emerges from the
//! queueing simulation. EXPERIMENTS.md records paper-vs-measured numbers.

use std::time::Duration;

use simnet::{micros, millis};

/// One-way LAN latency (100 µs each way ⇒ 0.2 ms RTT).
pub fn net_rtt() -> Duration {
    micros(200.0)
}

/// The paper's closed-loop think time: "50 ms pauses between requests
/// (i.e. with the frequency of up to 20 Hz)".
pub fn think_time() -> Duration {
    Duration::from_millis(50)
}

/// Latency budget for goodput accounting: a completion slower than this
/// counts toward throughput but not goodput — a synchronous caller has
/// long since timed out. ≈5× the write path's pre-saturation p95.
pub fn deadline_budget() -> Duration {
    Duration::from_millis(250)
}

// ---------------------------------------------------------------- Jini --
// Fig. 2: raw LUS peaks ≈400 reads/s then degrades; the JNDI provider's
// serialization layer costs ≈25% (peak ≈300/s). Fig. 3: raw writes peak
// ≈140/s; relaxed SPI ≈80/s; strict ≈20/s via Eisenberg–McGuire locking.

/// Raw LUS lookup service time (≈ 420/s capacity).
pub fn jini_read() -> Duration {
    millis(2.35)
}

/// Raw LUS register service time (≈ 145/s capacity).
pub fn jini_write() -> Duration {
    millis(6.9)
}

/// SPI marshalling multiplier on the read path ("reduces the performance
/// by about 25%").
pub const JINI_SPI_READ_FACTOR: f64 = 1.33;

/// SPI marshalling multiplier on the write path (stub construction +
/// attribute entry serialization dominate: ≈80/s from 145/s).
pub const JINI_SPI_WRITE_FACTOR: f64 = 1.8;

/// Queue-depth contention degradation for the LUS (visible decline past
/// the knee in Figs. 2–3).
pub const JINI_DEGRADATION: f64 = 0.0012;

/// The Eisenberg–McGuire lock's register accesses for one uncontended
/// critical section, as (reads, writes): the paper's "3 reads and 5
/// writes". Our implementation measures 5 reads / 5 writes; the bench
/// charges what the lock actually performs.
pub const EM_LOCK_READS: u32 = 5;
pub const EM_LOCK_WRITES: u32 = 5;

// ---------------------------------------------------------------- HDNS --
// Fig. 4: replica-local reads exceed 1800/s with no visible knee; the SPI
// adds no noticeable overhead. Fig. 5: writes peak ≈200/s, then collapse
// (not level off) past ≈20 clients — unbounded JGroups queues.

/// HDNS replica-local read service time (> 2200/s capacity).
pub fn hdns_read() -> Duration {
    micros(440.0)
}

/// HDNS write service time: local apply + multicast to the group +
/// stability accounting (≈ 205/s capacity).
pub fn hdns_write() -> Duration {
    millis(4.85)
}

/// SPI overhead for HDNS ("does not introduce a noticeable overhead").
pub const HDNS_SPI_FACTOR: f64 = 1.03;

/// Heap bytes each queued write pins inside the stack. A queued rebind is
/// far more than its 2 KB payload: the unbounded JGroups layers retain the
/// marshalled multicast, per-member retransmission copies, NAK/STABLE
/// bookkeeping and undelivered out-of-order buffers for it, an
/// amplification of a couple of hundred under overload.
pub const HDNS_WRITE_BYTES: u64 = 480 * 1024;

/// Replica heap budget for queued messages; exceeding it is the paper's
/// "memory exhaustion and server crash". With the amplification above the
/// crash trips once ≈13 writes are backed up — which a closed-loop sweep
/// first reaches between 20 and 30 clients, the knee of Fig. 5.
pub const HDNS_MEMORY_LIMIT: u64 = 6 * 1024 * 1024;

/// Crash-restart delay (supervision loop). Short enough that the
/// crash-restart-crash cycle leaves the residual trickle of completed
/// writes visible at the right edge of Fig. 5 (rather than flatlining at
/// exactly zero).
pub fn hdns_restart() -> Duration {
    Duration::from_millis(300)
}

/// Bounded-queue depth for the flow-control ablation.
pub const HDNS_BOUNDED_QUEUE: usize = 512;

// ----------------------------------------------------------------- DNS --
// Fig. 6: "excellent scalability, with peak throughput per node exceeding
// 1800 lookup operations/s" — i.e. not saturated by 100 clients at 20 Hz.

/// Bind lookup service time (> 2300/s capacity).
pub fn dns_read() -> Duration {
    micros(420.0)
}

// ---------------------------------------------------------------- LDAP --
// Fig. 7: reads plateau ≈800/s with unsaturated resources (the anti-DoS
// throttle); writes show "excellent responsiveness".

/// OpenLDAP search service time, pre-throttle (≈ 2000/s raw capacity —
/// deliberately unsaturated at the plateau).
pub fn ldap_read() -> Duration {
    micros(500.0)
}

/// The observed read plateau.
pub const LDAP_THROTTLE_PER_SEC: u64 = 800;

/// OpenLDAP modify service time (≈ 1500/s capacity).
pub fn ldap_write() -> Duration {
    micros(660.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_paper_figures() {
        let cap = |d: Duration| 1.0 / d.as_secs_f64();
        assert!(
            (380.0..460.0).contains(&cap(jini_read())),
            "Jini read ≈400/s"
        );
        assert!(
            (130.0..160.0).contains(&cap(jini_write())),
            "Jini write ≈140/s"
        );
        assert!(cap(hdns_read()) > 1800.0, "HDNS reads exceed 1800/s");
        assert!(
            (180.0..230.0).contains(&cap(hdns_write())),
            "HDNS write ≈200/s"
        );
        assert!(cap(dns_read()) > 1800.0, "DNS exceeds 1800/s");
        assert!(
            cap(ldap_read()) > LDAP_THROTTLE_PER_SEC as f64,
            "LDAP unsaturated at plateau"
        );
    }

    #[test]
    fn spi_read_factor_is_about_a_quarter() {
        // ≈25% throughput reduction ⇔ service-time factor ≈ 1/0.75.
        assert!((1.28..1.40).contains(&JINI_SPI_READ_FACTOR));
    }
}
