//! Ablation A2 — the §4.2 protocol-stack trade-off.
//!
//! "The Virtual Synchrony protocol suite guarantees an atomic broadcast
//! and delivery. However, it comes at the cost of scalability … An
//! alternative protocol suite uses Bimodal Multicast, which improves
//! scalability, for the price of probabilistic message delivery
//! reliability. The latter suite was chosen as the default in HDNS."
//!
//! Two measurements:
//! 1. **Write throughput** (virtual time): sequencer writes pay the extra
//!    forward-to-coordinator hop; bimodal writes multicast directly.
//! 2. **Delivery reliability** (real `groupcast` cluster, lossy links):
//!    fraction of multicasts delivered at every member immediately after
//!    send vs after gossip anti-entropy rounds.

use std::rc::Rc;
use std::time::Duration;

use groupcast::{ChannelEvent, Cluster, GroupChannel, OrderingMode, StackConfig};
use rndi_bench::cost;
use rndi_bench::loadgen::{Operation, RoundTrips};
use rndi_bench::{print_figure, sweep, SweepConfig};
use simnet::{micros, QueueingServer, ServerConfig};

fn throughput_comparison(config: &SweepConfig) {
    // Bimodal: one multicast round trip.
    let bimodal = sweep("bimodal (HDNS default)", config, |sim, rng, _| {
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![cost::hdns_write()],
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });
    // Sequencer: forward-to-coordinator + ordered multicast — an extra
    // serialized hop through the coordinator bottleneck.
    let sequencer = sweep("sequencer (virtual synchrony)", config, |sim, rng, _| {
        let op = RoundTrips::new(
            QueueingServer::new(sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![micros(1800.0), cost::hdns_write()],
        );
        Rc::new(Rc::new(op)) as Rc<dyn Operation>
    });
    print_figure(
        "Ablation A2a — HDNS write throughput by protocol stack [ops/s]",
        &[bimodal, sequencer],
    );
}

fn count_delivered(chan: &GroupChannel) -> usize {
    chan.poll()
        .into_iter()
        .filter(|e| matches!(e, ChannelEvent::Message { .. }))
        .count()
}

fn reliability_comparison() {
    println!();
    println!("# Ablation A2b — delivery reliability on a lossy LAN (real groupcast cluster)");
    println!(
        "{:>28}  {:>10}  {:>18}  {:>18}",
        "stack", "loss", "before gossip", "after gossip"
    );
    let n_msgs = 200;
    for (label, ordering) in [
        ("sequencer (virtual sync.)", OrderingMode::Sequencer),
        (
            "bimodal fanout=2",
            OrderingMode::Bimodal {
                loss: 0.10,
                fanout: 2,
            },
        ),
    ] {
        let cluster = Cluster::new(99);
        let cfg = StackConfig {
            ordering: ordering.clone(),
            ..Default::default()
        };
        let chans: Vec<GroupChannel> = (0..3)
            .map(|_| cluster.create_channel(cfg.clone()))
            .collect();
        for c in &chans {
            c.connect("abl").unwrap();
            cluster.pump_all();
        }
        for c in &chans {
            c.poll();
        }
        for i in 0..n_msgs {
            chans[0].mcast(vec![i as u8]).unwrap();
        }
        cluster.pump_all();
        let expected = n_msgs * 2; // two receivers
        let before: usize = chans[1..].iter().map(count_delivered).sum();
        // Anti-entropy repair.
        for _ in 0..12 {
            cluster.gossip_round();
            cluster.pump_all();
        }
        let after = before + chans[1..].iter().map(count_delivered).sum::<usize>();
        println!(
            "{:>28}  {:>10}  {:>17.1}%  {:>17.1}%",
            label,
            match ordering {
                OrderingMode::Sequencer => "0%".to_string(),
                OrderingMode::Bimodal { loss, .. } => format!("{:.0}%", loss * 100.0),
            },
            100.0 * before as f64 / expected as f64,
            100.0 * after as f64 / expected as f64,
        );
    }
    println!("## sequencer: atomic+total order, delivery complete immediately");
    println!("## bimodal: initial delivery probabilistic, gossip repairs to completeness");
}

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    throughput_comparison(&config);
    reliability_comparison();
    // Silence the unused-duration lint paths in quick mode.
    let _ = Duration::ZERO;
}
