//! Ablation A5 — strict bind via distributed lock vs the §5.1 proxy
//! proposal.
//!
//! "Strict bind semantics should be disabled whenever possible, and
//! otherwise a proxy-based solution should be adapted so that the
//! necessary locking is performed locally (near the Jini LUS, e.g. on the
//! same host), exposing the atomic interface to the client."
//!
//! Expected: the proxy restores most of the relaxed-mode throughput while
//! keeping strict atomicity — the distributed lock's ~12 LUS round trips
//! shrink to one proxy round trip (two LUS-local operations).

use rndi_bench::figures::ablation_proxy;
use rndi_bench::{print_figure, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = ablation_proxy(&config);
    print_figure(
        "Ablation A5 — strict bind: distributed lock vs co-located proxy [ops/s]",
        &series,
    );
}
