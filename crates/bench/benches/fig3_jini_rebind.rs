//! Figure 3 — Throughput of Jini and JNDI Jini provider, rebind
//! operations (write).
//!
//! Expected shape: raw LUS writes peak ≈140 op/s; the relaxed-semantics
//! provider approaches 80 op/s; the strict-semantics provider — paying
//! Eisenberg–McGuire's distributed lock in LUS round trips — collapses to
//! ≈20 op/s (the paper's "7-fold decrease").

use rndi_bench::figures::fig3;
use rndi_bench::{print_figure, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = fig3(&config);
    print_figure(
        "Figure 3 — Throughput of Jini and JNDI Jini provider, rebind operations (write) [ops/s]",
        &series,
    );
}
