//! Figure 4 — Throughput of HDNS and JNDI HDNS provider, lookup
//! operations (read).
//!
//! Expected shape: "HDNS demonstrates excellent scalability; we have not
//! been able to identify the peak throughput as it exceeds 1800 read
//! operations per second. The HDNS JNDI provider layer does not introduce
//! a noticeable overhead."

use rndi_bench::figures::fig4;
use rndi_bench::{print_figure, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = fig4(&config);
    print_figure(
        "Figure 4 — Throughput of HDNS and JNDI HDNS provider, lookup operations (read) [ops/s]",
        &series,
    );
}
