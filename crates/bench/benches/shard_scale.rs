//! Shard-scale experiment: the rendezvous-hash routing tier over 1/2/4/8
//! single-replica shards, under the paper's closed-loop client model.
//!
//! Methodology matches the other figure benches on this 1-core host: the
//! queueing behaviour runs in simnet virtual time (one `QueueingServer`
//! station per shard — each shard is its own machine), service times come
//! from the calibrated HDNS cost model, and *real* router work — rebinds,
//! lookups, and count-limited searches through an in-process `ShardRouter`
//! over seeded per-shard stores — is sampled inside the loop so the
//! hashing, routing, and merge code is genuinely on the measured path.
//!
//! Headlines recorded in `bench_figures.txt`:
//! * write throughput scales ~linearly with shards (independent write
//!   queues; the single store's write lock stops mattering);
//! * scatter reads (root list fanned to every shard) cost ~max, not sum,
//!   of the per-shard legs;
//! * rendezvous hashing balances 1M names within a few percent of the
//!   per-shard mean.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use rndi_bench::cost;
use rndi_bench::loadgen::{run_closed_loop, DoneFn, Operation, RoundTrips};
use rndi_core::context::{ContextExt, DirContext, SearchControls};
use rndi_core::env::Environment;
use rndi_core::filter::Filter;
use rndi_core::mem::MemContext;
use rndi_core::name::CompositeName;
use rndi_core::spi::{ContextBackend, ProviderBackend, ProviderPipeline};
use rndi_shard::{ShardInfo, ShardMap, ShardRouter};
use simnet::{QueueingServer, ServerConfig, Sim, SimRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CLIENTS: usize = 600;

/// Per-entry scan cost of a whole-shard list leg: the leg's service time
/// is `hdns_read + entries_on_that_shard * PER_ENTRY_SCAN`.
const PER_ENTRY_SCAN_NS: u64 = 30;

fn entries() -> usize {
    if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        50_000
    } else {
        1_000_000
    }
}

fn key(i: usize) -> String {
    format!("e{i:07}")
}

/// A real in-process cluster: `shards` MemContext stores (seeded with the
/// keys rendezvous hashing assigns them) behind a `ShardRouter` pipeline.
struct RealCluster {
    map: ShardMap,
    ctx: Arc<ProviderPipeline<ShardRouter>>,
}

fn real_cluster(shards: usize, n: usize) -> RealCluster {
    let map = ShardMap::new(
        (0..shards)
            .map(|i| ShardInfo::new(format!("shard-{i}"), format!("sim-{i}")))
            .collect(),
    )
    .expect("valid map");
    let stores: Vec<MemContext> = (0..shards).map(|_| MemContext::new()).collect();
    for i in 0..n {
        let k = key(i);
        stores[map.owner_index(&k)]
            .bind_str(&k, "v")
            .expect("seed bind");
    }
    let backends: Vec<Arc<dyn ProviderBackend>> = stores
        .into_iter()
        .map(|s| Arc::new(ContextBackend::new(Arc::new(s))) as Arc<dyn ProviderBackend>)
        .collect();
    let router = ShardRouter::new(map.clone(), backends, &Environment::new()).expect("router");
    let ctx = ProviderPipeline::standard(Arc::new(router), &Environment::new());
    RealCluster { map, ctx }
}

/// Routes each issued op to its owner shard's station — the same
/// `ShardMap::owner_index` decision the production router makes.
struct Routed {
    map: Rc<ShardMap>,
    legs: Vec<Rc<RoundTrips>>,
    n: usize,
    next: Cell<usize>,
}

impl Operation for Routed {
    fn issue(&self, sim: &Sim, done: DoneFn) {
        let i = self.next.get();
        self.next.set(i.wrapping_add(1));
        let owner = self.map.owner_index(&key(i % self.n));
        Operation::issue(&self.legs[owner].clone(), sim, done);
    }
}

/// Issues `reads` point reads for every `writes` point writes.
struct Mix {
    reads: Rc<dyn Operation>,
    writes: Rc<dyn Operation>,
    read_share: usize,
    cycle: usize,
    next: Cell<usize>,
}

impl Operation for Mix {
    fn issue(&self, sim: &Sim, done: DoneFn) {
        let i = self.next.get();
        self.next.set(i.wrapping_add(1));
        if i % self.cycle < self.read_share {
            self.reads.issue(sim, done);
        } else {
            self.writes.issue(sim, done);
        }
    }
}

/// A scatter op: one leg per shard, issued concurrently; the op completes
/// when the *last* leg does — latency is the max over shards, exactly how
/// `ShardRouter::scatter` behaves with fan-out ≥ shard count.
struct Scatter {
    legs: Vec<Rc<RoundTrips>>,
}

impl Operation for Scatter {
    fn issue(&self, sim: &Sim, done: DoneFn) {
        let remaining = Rc::new(Cell::new(self.legs.len()));
        let all_ok = Rc::new(Cell::new(true));
        let done = Rc::new(Cell::new(Some(done)));
        for leg in &self.legs {
            let remaining = remaining.clone();
            let all_ok = all_ok.clone();
            let done = done.clone();
            let leg_done: DoneFn = Box::new(move |sim, ok| {
                if !ok {
                    all_ok.set(false);
                }
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(d) = done.take() {
                        d(sim, all_ok.get());
                    }
                }
            });
            Operation::issue(&leg.clone(), sim, leg_done);
        }
    }
}

/// One station per shard plus a leg issuing ops with `service` time and
/// sampled real work against the router context.
fn shard_legs(
    sim: &Sim,
    rng: &SimRng,
    shards: usize,
    service: Duration,
    work: Option<rndi_bench::loadgen::WorkFn>,
    work_every: u32,
) -> Vec<Rc<RoundTrips>> {
    (0..shards)
        .map(|_| {
            let mut rt = RoundTrips::new(
                QueueingServer::new(sim, ServerConfig::default()),
                rng.fork(),
                cost::net_rtt(),
                vec![service],
            );
            if let Some(w) = &work {
                rt = rt.with_work(w.clone(), work_every);
            }
            Rc::new(rt)
        })
        .collect()
}

struct ThroughputRow {
    shards: usize,
    writes: f64,
    reads: f64,
    mixed: f64,
}

fn throughput_point(shards: usize, n: usize) -> ThroughputRow {
    let cluster = Rc::new(real_cluster(shards, n));
    let map = Rc::new(cluster.map.clone());

    let point = |workload: &str| -> f64 {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(0x5ca1e + shards as u64);
        // Sampled real router traffic: every 64th simulated op drives one
        // true routed op end to end (hash → route → store → outcome).
        let write_work: rndi_bench::loadgen::WorkFn = {
            let cluster = cluster.clone();
            let i = Rc::new(Cell::new(0usize));
            Rc::new(move |_| {
                let k = key(i.get() % n);
                i.set(i.get().wrapping_add(1));
                cluster.ctx.rebind_str(&k, "w").expect("routed rebind");
            })
        };
        let read_work: rndi_bench::loadgen::WorkFn = {
            let cluster = cluster.clone();
            let i = Rc::new(Cell::new(1usize));
            Rc::new(move |_| {
                let k = key((i.get() * 7919) % n);
                i.set(i.get().wrapping_add(1));
                cluster.ctx.lookup_str(&k).expect("routed lookup");
            })
        };
        let writes = Rc::new(Routed {
            map: map.clone(),
            legs: shard_legs(&sim, &rng, shards, cost::hdns_write(), Some(write_work), 64),
            n,
            next: Cell::new(0),
        });
        let reads = Rc::new(Routed {
            map: map.clone(),
            legs: shard_legs(&sim, &rng, shards, cost::hdns_read(), Some(read_work), 64),
            n,
            next: Cell::new(1),
        });
        let op: Rc<dyn Operation> = match workload {
            "writes" => writes,
            "reads" => reads,
            _ => Rc::new(Mix {
                reads,
                writes,
                read_share: 7,
                cycle: 10,
                next: Cell::new(0),
            }),
        };
        run_closed_loop(
            &sim,
            op,
            CLIENTS,
            cost::think_time(),
            Duration::from_secs(2),
            Duration::from_secs(15),
            &rng,
        )
        .throughput
    };

    ThroughputRow {
        shards,
        writes: point("writes"),
        reads: point("reads"),
        mixed: point("mixed"),
    }
}

struct ScatterRow {
    shards: usize,
    scatter_mean_ms: f64,
    scatter_p95_ms: f64,
    leg_mean_ms: f64,
}

/// Scatter-read latency vs a single shard leg under identical light load:
/// the acceptance check is mean(scatter) ≤ 1.5 × mean(single leg), i.e.
/// the fan-out costs ~max-of-shards, not sum.
fn scatter_point(shards: usize, n: usize) -> ScatterRow {
    let cluster = Rc::new(real_cluster(shards, n));
    let leg_service =
        cost::hdns_read() + Duration::from_nanos((n / shards) as u64 * PER_ENTRY_SCAN_NS);
    let scatter_work: rndi_bench::loadgen::WorkFn = {
        let cluster = cluster.clone();
        let filter = Filter::parse("(!(x=*))").expect("filter");
        let controls = SearchControls {
            count_limit: 64,
            ..Default::default()
        };
        Rc::new(move |_| {
            // A real count-limited scatter search: every shard scans, the
            // router merges in name order and re-applies the cap.
            let hits = cluster
                .ctx
                .search(&CompositeName::empty(), &filter, &controls)
                .expect("scatter search");
            assert_eq!(hits.len(), 64);
        })
    };

    let run = |scatter: bool| {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(0xfa0 + shards as u64);
        let legs = shard_legs(
            &sim,
            &rng,
            shards,
            leg_service,
            scatter.then(|| scatter_work.clone()),
            256,
        );
        let op: Rc<dyn Operation> = if scatter {
            Rc::new(Scatter { legs })
        } else {
            Rc::new(Routed {
                map: Rc::new(cluster.map.clone()),
                legs,
                n,
                next: Cell::new(0),
            })
        };
        // One closed-loop client: this measures the latency of the
        // fan-out itself (each leg has its station to itself), not
        // queueing collapse — a scatter costs S× the work of a point
        // read, so any shared load would drown the max-vs-sum signal.
        run_closed_loop(
            &sim,
            op,
            1,
            cost::think_time(),
            Duration::from_secs(2),
            Duration::from_secs(15),
            &rng,
        )
    };

    let s = run(true);
    let l = run(false);
    ScatterRow {
        shards,
        scatter_mean_ms: s.mean_latency_ms,
        scatter_p95_ms: s.p95_latency_ms,
        leg_mean_ms: l.mean_latency_ms,
    }
}

fn balance_table(n: usize) {
    println!("# shard balance — {n} names over the real ShardMap (rendezvous/HRW ownership)");
    println!(
        "{:>7}  {:>12}  {:>12}  {:>12}  {:>10}",
        "shards", "min keys", "mean keys", "max keys", "max/mean"
    );
    for shards in SHARD_COUNTS {
        let map = ShardMap::new(
            (0..shards)
                .map(|i| ShardInfo::new(format!("shard-{i}"), format!("sim-{i}")))
                .collect(),
        )
        .expect("valid map");
        let mut counts = vec![0usize; shards];
        for i in 0..n {
            counts[map.owner_index(&key(i))] += 1;
        }
        let min = *counts.iter().min().expect("non-empty");
        let max = *counts.iter().max().expect("non-empty");
        let mean = n as f64 / shards as f64;
        println!(
            "{shards:>7}  {min:>12}  {mean:>12.0}  {max:>12}  {:>9.3}x",
            max as f64 / mean
        );
        if shards == 8 {
            println!("         per-shard counts @8: {counts:?}");
        }
    }
    println!("## every shard sits within a few percent of the mean at 1M keys.");
    println!();
}

fn main() {
    let n = entries();
    println!();
    println!(
        "# shard scaling — rendezvous-hash router over N single-replica shards (shard_scale bench)"
    );
    println!(
        "# closed loop: {CLIENTS} clients, 50 ms think, one station per shard; real ShardRouter"
    );
    println!("# ops (hash -> route -> store) sampled in-loop over {n} seeded entries.");
    println!(
        "{:>7}  {:>15}  {:>14}  {:>20}",
        "shards", "writes [op/s]", "reads [op/s]", "mixed 70r/30w [op/s]"
    );
    let mut write1 = 0.0;
    let mut write4 = 0.0;
    for shards in SHARD_COUNTS {
        let row = throughput_point(shards, n);
        if shards == 1 {
            write1 = row.writes;
        }
        if shards == 4 {
            write4 = row.writes;
        }
        println!(
            "{:>7}  {:>15.0}  {:>14.0}  {:>20.0}",
            row.shards, row.writes, row.reads, row.mixed
        );
    }
    println!(
        "## write scaling: 4-shard = {:.1}x single-shard (acceptance floor: 2.5x).",
        write4 / write1
    );
    println!();

    println!("# scatter reads — root list fanned to every shard, merged in name order");
    println!("# leg service = hdns_read + {PER_ENTRY_SCAN_NS} ns/entry over its shard's slice;");
    println!("# single-leg column is one point read of the same slice under identical load.");
    println!(
        "{:>7}  {:>18}  {:>17}  {:>21}  {:>12}",
        "shards", "scatter mean [ms]", "scatter p95 [ms]", "single-leg mean [ms]", "scatter/leg"
    );
    for shards in SHARD_COUNTS {
        let row = scatter_point(shards, n);
        println!(
            "{:>7}  {:>18.2}  {:>17.2}  {:>21.2}  {:>11.2}x",
            row.shards,
            row.scatter_mean_ms,
            row.scatter_p95_ms,
            row.leg_mean_ms,
            row.scatter_mean_ms / row.leg_mean_ms
        );
    }
    println!("## scatter ~= max-of-shards, not sum: ratio stays within 1.5x at every width,");
    println!("## and absolute scatter latency falls with shards (smaller per-shard slices).");
    println!();

    balance_table(n);
}
