//! In-process dispatch vs loopback TCP: what does the wire cost?
//!
//! Both arms run the *same* HDNS backend pipeline; the only difference is
//! the [`Transport`] in front of it — direct calls, or a framed
//! request/response over a pooled loopback connection (JSON codec, length
//! prefix, two syscall round trips). Numbers are recorded in
//! `bench_figures.txt`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};

use rndi_bench::loadgen::{via_transport, Transport, TransportHandle};
use rndi_core::env::Environment;
use rndi_core::op::{dispatch, NamingOp};
use rndi_core::spi::ProviderBackend;
use rndi_core::value::BoundValue;
use rndi_providers::HdnsProviderContext;

const ARMS: [(&str, Transport); 2] = [
    ("in_process", Transport::InProcess),
    ("loopback_tcp", Transport::Tcp),
];

fn backend(name: &str) -> Arc<dyn ProviderBackend> {
    let realm = hdns::HdnsRealm::new(name, 1, groupcast::StackConfig::default(), None, 5);
    HdnsProviderContext::with_env(realm, 0, name, &Environment::new())
}

/// Health checks off for the bench client: a per-request ping would make
/// the TCP arm pay two round trips per op and measure the pool, not the
/// wire.
fn bench_env() -> Environment {
    Environment::new().with(rndi_core::env::keys::NET_CLIENT_HEALTH_CHECK, "false")
}

fn arm(label: &str, transport: Transport) -> TransportHandle {
    let handle = via_transport(
        transport,
        backend(&format!("net-bench-{label}")),
        &bench_env(),
    )
    .expect("transport assembles");
    let seed = NamingOp::rebind("bench".into(), BoundValue::str("payload"));
    dispatch(handle.ctx().as_ref(), &seed).expect("seed write lands");
    handle
}

fn bench_transport_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    let mut handles = Vec::new();
    for (label, transport) in ARMS {
        let handle = arm(label, transport);
        let ctx = handle.ctx();
        let lookup = NamingOp::lookup("bench".into());
        group.bench_function(&format!("lookup/{label}"), |b| {
            b.iter(|| dispatch(ctx.as_ref(), std::hint::black_box(&lookup)).unwrap())
        });
        let rebind = NamingOp::rebind("bench".into(), BoundValue::str("payload"));
        group.bench_function(&format!("rebind/{label}"), |b| {
            b.iter(|| dispatch(ctx.as_ref(), std::hint::black_box(&rebind)).unwrap())
        });
        handles.push(handle);
    }
    group.finish();
    for handle in handles {
        handle.shutdown();
    }
}

/// Self-measured median table for `bench_figures.txt` (same shape as the
/// readpath_scale tables).
fn summary_table() {
    fn median_ns(mut run: impl FnMut()) -> f64 {
        // Warm up, then sample medians of small batches.
        for _ in 0..200 {
            run();
        }
        let mut samples = Vec::with_capacity(30);
        for _ in 0..30 {
            let start = Instant::now();
            for _ in 0..50 {
                run();
            }
            samples.push(start.elapsed().as_nanos() as f64 / 50.0);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    }
    fn fmt(ns: f64) -> String {
        if ns < 1_000.0 {
            format!("{ns:.0} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} us", ns / 1_000.0)
        } else {
            format!("{:.2} ms", ns / 1_000_000.0)
        }
    }

    println!();
    println!("# net transport — in-process dispatch vs loopback TCP (net_transport bench) [median ns/op]");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}",
        "op", "in_process", "loopback_tcp", "ratio"
    );
    for (op_label, op) in [
        ("lookup", NamingOp::lookup("bench".into())),
        (
            "rebind",
            NamingOp::rebind("bench".into(), BoundValue::str("payload")),
        ),
    ] {
        let mut row = Vec::new();
        for (label, transport) in ARMS {
            let handle = arm(&format!("{label}-{op_label}"), transport);
            let ctx = handle.ctx();
            row.push(median_ns(|| {
                dispatch(ctx.as_ref(), &op).unwrap();
            }));
            handle.shutdown();
        }
        println!(
            "{:>8}  {:>12}  {:>12}  {:>7.1}x",
            op_label,
            fmt(row[0]),
            fmt(row[1]),
            row[1] / row[0],
        );
    }
    println!("## both arms run the identical HDNS pipeline; the ratio is the framed");
    println!("## JSON codec plus two loopback syscall round trips on a pooled connection.");
    println!();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_transport_ops
}

fn main() {
    benches();
    summary_table();
}
