//! In-process dispatch vs loopback TCP: what does the wire cost?
//!
//! All arms run the *same* HDNS backend pipeline; the only difference is
//! the [`Transport`] in front of it — direct calls, the v1 framed-JSON
//! lock-step protocol, or the v2 binary-envelope multiplexed protocol.
//! A second table measures sustained ops/s with concurrent callers:
//! the v1 lock-step client (one round trip in flight per connection)
//! against the v2 pipelined client at depth 8. Numbers are recorded in
//! `bench_figures.txt`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};

use rndi_bench::loadgen::{via_transport, Transport, TransportHandle};
use rndi_core::env::{keys, Environment};
use rndi_core::op::{dispatch, NamingOp};
use rndi_core::spi::ProviderBackend;
use rndi_core::value::BoundValue;
use rndi_providers::HdnsProviderContext;

const ARMS: [(&str, Transport); 3] = [
    ("in_process", Transport::InProcess),
    ("loopback_v1", Transport::TcpV1),
    ("loopback_v2", Transport::Tcp),
];

fn backend(name: &str) -> Arc<dyn ProviderBackend> {
    let realm = hdns::HdnsRealm::new(name, 1, groupcast::StackConfig::default(), None, 5);
    HdnsProviderContext::with_env(realm, 0, name, &Environment::new())
}

/// Health checks off for the bench client: a per-request ping would make
/// the v1 TCP arm pay two round trips per op and measure the pool, not
/// the wire.
fn bench_env() -> Environment {
    Environment::new().with(keys::NET_CLIENT_HEALTH_CHECK, "false")
}

fn arm(label: &str, transport: Transport) -> TransportHandle {
    let handle = via_transport(
        transport,
        backend(&format!("net-bench-{label}")),
        &bench_env(),
    )
    .expect("transport assembles");
    let seed = NamingOp::rebind("bench".into(), BoundValue::str("payload"));
    dispatch(handle.ctx().as_ref(), &seed).expect("seed write lands");
    handle
}

fn bench_transport_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    let mut handles = Vec::new();
    for (label, transport) in ARMS {
        let handle = arm(label, transport);
        let ctx = handle.ctx();
        let lookup = NamingOp::lookup("bench".into());
        group.bench_function(&format!("lookup/{label}"), |b| {
            b.iter(|| dispatch(ctx.as_ref(), std::hint::black_box(&lookup)).unwrap())
        });
        let rebind = NamingOp::rebind("bench".into(), BoundValue::str("payload"));
        group.bench_function(&format!("rebind/{label}"), |b| {
            b.iter(|| dispatch(ctx.as_ref(), std::hint::black_box(&rebind)).unwrap())
        });
        handles.push(handle);
    }
    group.finish();
    for handle in handles {
        handle.shutdown();
    }
}

/// Self-measured median table for `bench_figures.txt` (same shape as the
/// readpath_scale tables).
fn median_ns(mut run: impl FnMut()) -> f64 {
    // Warm up, then sample medians of small batches.
    for _ in 0..200 {
        run();
    }
    let mut samples = Vec::with_capacity(30);
    for _ in 0..30 {
        let start = Instant::now();
        for _ in 0..50 {
            run();
        }
        samples.push(start.elapsed().as_nanos() as f64 / 50.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn fmt(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

fn latency_table() {
    println!();
    println!("# net transport — in-process dispatch vs loopback TCP, v1 JSON vs v2 binary (net_transport bench) [median ns/op]");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>9}  {:>9}",
        "op", "in_process", "loopback_v1", "loopback_v2", "v1_ratio", "v2_ratio"
    );
    for (op_label, op) in [
        ("lookup", NamingOp::lookup("bench".into())),
        (
            "rebind",
            NamingOp::rebind("bench".into(), BoundValue::str("payload")),
        ),
    ] {
        let mut row = Vec::new();
        for (label, transport) in ARMS {
            let handle = arm(&format!("{label}-{op_label}"), transport);
            let ctx = handle.ctx();
            row.push(median_ns(|| {
                dispatch(ctx.as_ref(), &op).unwrap();
            }));
            handle.shutdown();
        }
        println!(
            "{:>8}  {:>12}  {:>12}  {:>12}  {:>8.1}x  {:>8.1}x",
            op_label,
            fmt(row[0]),
            fmt(row[1]),
            fmt(row[2]),
            row[1] / row[0],
            row[2] / row[0],
        );
    }
    println!("## all arms run the identical HDNS pipeline; ratios are the wire cost over");
    println!("## in-process dispatch. v1 = framed JSON, one lock-step round trip per op;");
    println!("## v2 = binary envelopes on a multiplexed connection.");
    println!();
}

/// Sustained ops/s over ONE socket: the v1 lock-step client (one round
/// trip in flight, ever) vs the v2 connection at pipeline depth 8 —
/// first as 8 concurrent callers multiplexing through `NetClient`, then
/// as a single caller driving batches of 8 through the sans-IO
/// `conn::ClientConn` (pure protocol pipelining, no thread handoffs).
fn throughput_table() {
    const DEPTH: usize = 8;
    const WINDOW: Duration = Duration::from_millis(1200);

    fn timed(mut tick: impl FnMut() -> u64) -> f64 {
        // Warm up, then count completed ops over the window.
        for _ in 0..20 {
            tick();
        }
        let start = Instant::now();
        let mut done = 0u64;
        while start.elapsed() < WINDOW {
            done += tick();
        }
        done as f64 / start.elapsed().as_secs_f64()
    }

    // v1 lock-step: a single caller, one request per round trip.
    let v1_handle = via_transport(Transport::TcpV1, backend("net-bench-tp-v1"), &bench_env())
        .expect("v1 transport");
    let op = NamingOp::rebind("bench".into(), BoundValue::str("payload"));
    dispatch(v1_handle.ctx().as_ref(), &op).unwrap();
    let lookup = NamingOp::lookup("bench".into());
    let v1_ctx = v1_handle.ctx();
    let v1_rate = timed(|| {
        dispatch(v1_ctx.as_ref(), &lookup).unwrap();
        1
    });
    v1_handle.shutdown();

    // v2 multiplexed: 8 caller threads share one socket through the
    // NetClient, so up to 8 requests ride the wire concurrently.
    let v2_handle = via_transport(
        Transport::Tcp,
        backend("net-bench-tp-v2"),
        &bench_env()
            .with(keys::NET_CLIENT_POOL_SIZE, "1")
            .with(keys::NET_CLIENT_PIPELINE_DEPTH, DEPTH.to_string()),
    )
    .expect("v2 transport");
    dispatch(v2_handle.ctx().as_ref(), &op).unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..DEPTH)
        .map(|_| {
            let ctx = v2_handle.ctx();
            let stop = stop.clone();
            let lookup = lookup.clone();
            std::thread::spawn(move || {
                let mut done = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    dispatch(ctx.as_ref(), &lookup).unwrap();
                    done += 1;
                }
                done
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(WINDOW);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let v2_mux_rate = total as f64 / start.elapsed().as_secs_f64();
    v2_handle.shutdown();

    // v2 pipelined: a single caller keeps `depth` requests in flight on
    // one socket via the sans-IO client — writes coalesce into one
    // syscall per batch and responses drain in bulk. depth 1 is the
    // lock-step degenerate case (protocol cost without pipelining).
    let pipe_handle = via_transport(Transport::Tcp, backend("net-bench-tp-pipe"), &bench_env())
        .expect("v2 transport");
    dispatch(pipe_handle.ctx().as_ref(), &op).unwrap();
    let addr = pipe_handle
        .server_addr()
        .expect("tcp transport has an addr");
    let pipelined_rate = |depth: usize| {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let mut machine = rndi_net::conn::ClientConn::new();
        let wire_op = rndi_net::proto::encode_op(&lookup).unwrap();
        let mut scratch = vec![0u8; 64 * 1024];
        timed(|| {
            let mut wire = Vec::with_capacity(depth * 64);
            let mut waiting = 0usize;
            for _ in 0..depth {
                let env = rndi_net::proto::Envelope {
                    req_id: machine.next_req_id(),
                    body: rndi_net::proto::EnvelopeBody::Call {
                        op: Box::new(wire_op.clone()),
                        deadline_ms: 10_000,
                        trace: None,
                    },
                };
                wire.extend_from_slice(&machine.encode(&env).unwrap());
                waiting += 1;
            }
            stream.write_all(&wire).unwrap();
            let mut done = 0u64;
            while waiting > 0 {
                let n = stream.read(&mut scratch).unwrap();
                assert!(n > 0, "server closed");
                for env in machine.receive(&scratch[..n]).unwrap() {
                    assert!(matches!(env.body, rndi_net::proto::EnvelopeBody::Ok(_)));
                    waiting -= 1;
                    done += 1;
                }
            }
            done
        })
    };
    let v2_d1_rate = pipelined_rate(1);
    let v2_pipe_rate = pipelined_rate(DEPTH);
    pipe_handle.shutdown();

    println!("# net transport — sustained lookups/s over ONE socket, v1 lock-step vs v2 at depth 8 (net_transport bench)");
    println!(
        "{:>22}  {:>8}  {:>7}  {:>10}  {:>8}",
        "arm", "callers", "depth", "ops/s", "speedup"
    );
    println!(
        "{:>22}  {:>8}  {:>7}  {:>10.0}  {:>8}",
        "v1_lockstep", 1, 1, v1_rate, "1.0x"
    );
    println!(
        "{:>22}  {:>8}  {:>7}  {:>10.0}  {:>7.1}x",
        "v2_mux_threads",
        DEPTH,
        DEPTH,
        v2_mux_rate,
        v2_mux_rate / v1_rate
    );
    println!(
        "{:>22}  {:>8}  {:>7}  {:>10.0}  {:>7.1}x",
        "v2_pipelined_d1",
        1,
        1,
        v2_d1_rate,
        v2_d1_rate / v1_rate
    );
    println!(
        "{:>22}  {:>8}  {:>7}  {:>10.0}  {:>7.1}x",
        "v2_pipelined",
        1,
        DEPTH,
        v2_pipe_rate,
        v2_pipe_rate / v1_rate
    );
    println!("## one socket in every arm. v1 lock-steps a round trip per op; v2_mux_threads");
    println!("## multiplexes 8 callers' requests onto the socket; v2_pipelined keeps batches");
    println!("## of 8 in flight from one caller via the sans-IO conn layer.");
    println!();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_transport_ops
}

fn main() {
    match std::env::var("PROBE").as_deref() {
        Ok("tp") => return throughput_table(),
        Ok("lat") => return latency_table(),
        _ => {}
    }
    benches();
    latency_table();
    throughput_table();
}
