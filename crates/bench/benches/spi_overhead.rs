//! Criterion microbenchmarks — the §5.1 per-operation cost claims,
//! measured in real wall-clock time against the in-process backends.
//!
//! * raw LUS lookup vs JNDI-Jini provider lookup (the marshalling layer);
//! * raw LUS register vs relaxed-bind vs strict-bind (the Eisenberg–
//!   McGuire lock multiplies registrar round trips ≥8×);
//! * HDNS provider lookup (thin mapping — near-zero overhead over the
//!   replica-local read).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use rlus::{EntryTemplate, ManualClock, Registrar, ServiceTemplate};
use rndi_core::context::ContextExt;
use rndi_core::env::{keys, Environment};
use rndi_core::op::NamingOp;
use rndi_core::spi::{ProviderBackend, ProviderPipeline};
use rndi_providers::common::RlusClock;
use rndi_providers::{HdnsProviderContext, JiniProviderContext};

fn jini_setup(strict: bool) -> (Registrar, Arc<ProviderPipeline<JiniProviderContext>>) {
    let clock = ManualClock::new();
    let registrar = Registrar::new(clock.clone(), u64::MAX / 4, 1);
    let env = Environment::new().with(
        keys::JINI_STRICT_BIND,
        if strict { "true" } else { "false" },
    );
    let ctx = JiniProviderContext::new(
        registrar.clone(),
        Arc::new(RlusClock(clock as Arc<dyn rlus::Clock>)),
        env,
        "bench",
    );
    (registrar, ctx)
}

fn bench_jini_reads(c: &mut Criterion) {
    let (registrar, ctx) = jini_setup(false);
    ctx.rebind_str("bench", "payload").unwrap();
    let template =
        ServiceTemplate::any().with_entry(EntryTemplate::new("RndiBinding").with("name", "bench"));

    let mut group = c.benchmark_group("jini_lookup");
    group.bench_function("raw_lus", |b| {
        b.iter(|| registrar.lookup(std::hint::black_box(&template)).unwrap())
    });
    group.bench_function("jndi_spi", |b| {
        b.iter(|| ctx.lookup_str(std::hint::black_box("bench")).unwrap())
    });
    group.finish();
}

fn bench_jini_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("jini_rebind");

    let (registrar, _) = jini_setup(false);
    let item = rlus::ServiceItem::new(rlus::ServiceStub::new(vec!["Bench".into()], vec![0; 64]))
        .with_id(rlus::ServiceId::new(1, 1))
        .with_entry(rlus::Entry::name("bench"));
    group.bench_function("raw_lus", |b| {
        b.iter(|| registrar.register(std::hint::black_box(item.clone()), 60_000))
    });

    let (_, relaxed) = jini_setup(false);
    group.bench_function("jndi_spi_relaxed", |b| {
        b.iter(|| relaxed.rebind_str("bench", "payload").unwrap())
    });

    let (_, strict) = jini_setup(true);
    group.bench_function("jndi_spi_strict_bind_unbind", |b| {
        // Atomic bind + unbind per iteration: binding an existing name
        // fails by design, and unbinding keeps the registry small so the
        // measurement reflects the locking cost rather than registry scans.
        b.iter(|| {
            strict.bind_str("bench-cs", "payload").unwrap();
            strict.unbind_str("bench-cs").unwrap();
        })
    });
    group.finish();
}

fn bench_hdns(c: &mut Criterion) {
    let realm = hdns::HdnsRealm::new("bench", 2, groupcast::StackConfig::default(), None, 5);
    realm
        .rebind(0, "bench", hdns::HdnsEntry::leaf(vec![0; 64]))
        .unwrap();
    let ctx = HdnsProviderContext::new(realm.clone(), 0, "bench");

    let mut group = c.benchmark_group("hdns_lookup");
    group.bench_function("raw_replica", |b| {
        b.iter(|| realm.lookup(0, std::hint::black_box("bench")).unwrap())
    });
    group.bench_function("jndi_spi", |b| {
        b.iter(|| ctx.lookup_str(std::hint::black_box("bench")).unwrap())
    });
    group.finish();
}

/// The cost of pipeline dispatch itself: the same reified op executed
/// directly against the backend vs through a `ProviderPipeline` with an
/// empty interceptor stack. The acceptance bar is ≤5% added latency.
fn bench_pipeline_dispatch(c: &mut Criterion) {
    let (_registrar, ctx) = jini_setup(false);
    ctx.rebind_str("bench", "payload").unwrap();
    let backend = ctx.backend().clone();
    let bare = ProviderPipeline::bare(backend.clone());
    let op = NamingOp::lookup("bench".into());

    let mut group = c.benchmark_group("pipeline_dispatch");
    group.bench_function("backend_direct", |b| {
        b.iter(|| backend.execute(std::hint::black_box(&op)).unwrap())
    });
    group.bench_function("empty_pipeline", |b| {
        b.iter(|| bare.execute(std::hint::black_box(&op)).unwrap())
    });
    group.bench_function("standard_stack_default_env", |b| {
        b.iter(|| ctx.execute(std::hint::black_box(&op)).unwrap())
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_jini_reads, bench_jini_writes, bench_hdns, bench_pipeline_dispatch
}
criterion_main!(benches);
