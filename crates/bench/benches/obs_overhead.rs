//! What does the telemetry plane cost on the hot path?
//!
//! Three arms run the identical wire lookup (v2 binary envelopes over
//! loopback TCP, HDNS pipeline behind the server) and differ only in the
//! observability configuration:
//!
//! - `obs_off` — `rndi.obs.enabled=false`: no spans, no op metrics,
//!   client- or server-side. The floor.
//! - `obs_on` — the default: obs layers per pipeline (spans, histograms,
//!   counters), flight recorder disarmed (its fast path is one relaxed
//!   atomic load).
//! - `flight_armed` — obs on *and* the flight recorder armed: every
//!   pipeline-layer op additionally feeds its trailing-p99 watch.
//!
//! The budget: full telemetry must cost ≤5% over the floor on the wire
//! lookup — the wire dominates, instruments are pre-resolved, and the
//! recorder's epoch buckets are plain arrays. The deltas are printed in
//! the `bench_figures.txt` table (run with `PROBE=lat` for just that).
//!
//! The flight arm sets a huge p99 multiple so no dump ever fires
//! mid-measurement: the arm prices *armed observation*, not dump I/O.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};

use rndi_bench::loadgen::{via_transport, Transport, TransportHandle};
use rndi_core::context::ContextExt;
use rndi_core::env::{keys, Environment};
use rndi_core::op::{dispatch, NamingOp};
use rndi_core::spi::{ProviderBackend, ProviderPipeline};
use rndi_core::value::BoundValue;
use rndi_providers::HdnsProviderContext;
use rndi_shard::ShardRouter;

fn backend(name: &str, env: &Environment) -> Arc<dyn ProviderBackend> {
    let realm = hdns::HdnsRealm::new(name, 1, groupcast::StackConfig::default(), None, 5);
    HdnsProviderContext::with_env(realm, 0, name, env)
}

/// Health checks off so every arm measures the op, not the pool.
fn base_env() -> Environment {
    Environment::new().with(keys::NET_CLIENT_HEALTH_CHECK, "false")
}

fn obs_off_env() -> Environment {
    base_env().with(keys::OBS_ENABLED, "false")
}

fn flight_env() -> Environment {
    let dir = std::env::temp_dir().join(format!("rndi-obs-overhead-{}", std::process::id()));
    base_env()
        .with(keys::OBS_FLIGHT_DIR, dir.to_str().expect("utf-8 temp dir"))
        // Never trip mid-bench: this arm prices observation, not dumps.
        .with(keys::OBS_FLIGHT_P99_MULT, "1000000")
}

/// (label, env) for the three arms, floor first. Order matters at run
/// time too: arming the flight recorder is process-global and sticky, so
/// the armed arm must assemble after the others finished measuring.
fn arms() -> [(&'static str, Environment); 3] {
    [
        ("obs_off", obs_off_env()),
        ("obs_on", base_env()),
        ("flight_armed", flight_env()),
    ]
}

fn arm(label: &str, env: &Environment) -> TransportHandle {
    let handle = via_transport(
        Transport::Tcp,
        backend(&format!("obs-bench-{label}"), env),
        env,
    )
    .expect("transport assembles");
    let seed = NamingOp::rebind("bench".into(), BoundValue::str("payload"));
    dispatch(handle.ctx().as_ref(), &seed).expect("seed write lands");
    handle
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    for (label, env) in arms() {
        let handle = arm(label, &env);
        let ctx = handle.ctx();
        let lookup = NamingOp::lookup("bench".into());
        group.bench_function(&format!("wire_lookup/{label}"), |b| {
            b.iter(|| dispatch(ctx.as_ref(), std::hint::black_box(&lookup)).unwrap())
        });
        handle.shutdown();
    }
    group.finish();
    rndi_obs::recorder::disarm();
}

/// Fastest batch wins: scheduler preemption, frequency drift, and
/// loopback hiccups only ever *add* time, so the per-arm minimum is the
/// drift-free estimate of what the arm actually costs.
fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn batch_ns(run: &mut dyn FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..60 {
        run();
    }
    start.elapsed().as_nanos() as f64 / 60.0
}

/// Alternate two live arms in rounds, best batch per arm. Each round
/// re-warms its connection before sampling — alternating at batch
/// granularity would price waking an idle server, not the op — and the
/// round structure means machine drift lands on both arms instead of
/// whichever one happened to run last.
fn alternate(run_a: &mut impl FnMut(), run_b: &mut impl FnMut()) -> (f64, f64) {
    let (mut a_ns, mut b_ns) = (Vec::with_capacity(120), Vec::with_capacity(120));
    let leg = |run: &mut dyn FnMut(), ns: &mut Vec<f64>| {
        for _ in 0..300 {
            run();
        }
        for _ in 0..20 {
            ns.push(batch_ns(run));
        }
    };
    for round in 0..8 {
        // Swap who goes first each round: background work kicked off by
        // one arm's leg (replication, flushes) otherwise always bills to
        // the same position and skews the pair.
        if round % 2 == 0 {
            leg(run_a, &mut a_ns);
            leg(run_b, &mut b_ns);
        } else {
            leg(run_b, &mut b_ns);
            leg(run_a, &mut a_ns);
        }
    }
    (best(&a_ns), best(&b_ns))
}

fn runner(handle: &TransportHandle, lookup: &NamingOp) -> impl FnMut() {
    let ctx = handle.ctx();
    let lookup = lookup.clone();
    move || {
        dispatch(ctx.as_ref(), &lookup).unwrap();
    }
}

fn overhead_table() {
    // Every delta is taken against a *co-measured* floor: the off arm
    // alternates first with the on arm, then (because arming the flight
    // recorder is process-global and sticky, so the armed phase must come
    // last) with the flight arm. The off pipelines carry no obs layers,
    // so their ops never feed the armed recorder's watches.
    let arms = arms();
    let (off_label, off_env) = &arms[0];
    let (on_label, on_env) = &arms[1];
    let off = arm(off_label, off_env);
    let on = arm(on_label, on_env);
    let lookup = NamingOp::lookup("bench".into());
    let mut run_off = runner(&off, &lookup);
    let mut run_on = runner(&on, &lookup);
    let (off_floor, on_best) = alternate(&mut run_off, &mut run_on);
    on.shutdown();

    let (flight_label, flight_env) = &arms[2];
    let flight = arm(flight_label, flight_env);
    let mut run_flight = runner(&flight, &lookup);
    let (off_floor2, flight_best) = alternate(&mut run_off, &mut run_flight);
    off.shutdown();
    flight.shutdown();
    rndi_obs::recorder::disarm();

    let rows = [
        (*off_label, off_floor, off_floor),
        (*on_label, on_best, off_floor),
        (*flight_label, flight_best, off_floor2),
    ];
    println!();
    println!("# obs overhead — wire lookup (v2 loopback), telemetry off vs on vs flight-armed (obs_overhead bench) [best-batch ns/op, deltas vs co-measured obs_off floor]");
    println!("{:>14}  {:>12}  {:>9}", "arm", "lookup", "vs_off");
    for (label, ns, floor) in &rows {
        println!(
            "{:>14}  {:>9.2} us  {:>+8.1}%",
            label,
            ns / 1_000.0,
            100.0 * (ns - floor) / floor
        );
    }
    println!("## identical HDNS pipeline and v2 wire in every arm; only the obs config");
    println!("## differs. obs_on = spans + metrics both sides; flight_armed additionally");
    println!("## feeds trailing-p99 watches. budget: full telemetry <= 5% over obs_off.");
    println!();
}

/// Keys for the sharded mixed-load arm: enough to spread across every
/// shard's rendezvous slice, few enough that the stores stay tiny and the
/// arm prices routing + wire + obs, not scan depth.
const MIX_KEYS: usize = 256;

struct MixedArm {
    cluster: rndi::serve::ShardCluster,
    ctx: Arc<ProviderPipeline<ShardRouter>>,
}

fn mixed_arm(env: &Environment) -> MixedArm {
    let cluster = rndi::serve::serve_sharded_hdns(4, env).expect("4-shard cluster");
    let ctx = cluster.connect(env).expect("routing client");
    for i in 0..MIX_KEYS {
        ctx.bind_str(&format!("k{i:04}"), "v").expect("seed bind");
    }
    MixedArm { cluster, ctx }
}

/// The shard_scale mixed workload — 70% point lookups, 30% point rebinds,
/// keys striding across all four shards' slices — as a closed-loop runner.
fn mixed_runner(arm: &MixedArm) -> impl FnMut() {
    let ctx = arm.ctx.clone();
    let keys: Vec<String> = (0..MIX_KEYS).map(|i| format!("k{i:04}")).collect();
    let mut i = 0usize;
    move || {
        let key = &keys[(i * 7919) % MIX_KEYS];
        if i % 10 < 7 {
            ctx.lookup_str(key).expect("routed lookup");
        } else {
            ctx.rebind_str(key, "w").expect("routed rebind");
        }
        i = i.wrapping_add(1);
    }
}

fn mixed_table() {
    // Same shape as the wire table: obs_off co-measures first against
    // obs_on, then against flight_armed (arming is process-global and
    // sticky, so the armed cluster assembles last).
    let arms = arms();
    let off = mixed_arm(&arms[0].1);
    let on = mixed_arm(&arms[1].1);
    let mut run_off = mixed_runner(&off);
    let mut run_on = mixed_runner(&on);
    let (off_floor, on_best) = alternate(&mut run_off, &mut run_on);
    on.cluster.shutdown();

    let flight = mixed_arm(&arms[2].1);
    let mut run_flight = mixed_runner(&flight);
    let (off_floor2, flight_best) = alternate(&mut run_off, &mut run_flight);
    off.cluster.shutdown();
    flight.cluster.shutdown();
    rndi_obs::recorder::disarm();

    let rows = [
        (arms[0].0, off_floor, off_floor),
        (arms[1].0, on_best, off_floor),
        (arms[2].0, flight_best, off_floor2),
    ];
    println!("# obs overhead — sharded mixed load 70r/30w (4 networked shards, rendezvous router), telemetry off vs on vs flight-armed (obs_overhead bench) [best-batch throughput, deltas vs co-measured obs_off floor]");
    println!("{:>14}  {:>12}  {:>9}", "arm", "mixed", "vs_off");
    for (label, ns, floor) in &rows {
        println!(
            "{:>14}  {:>7.0} op/s  {:>+8.1}%",
            label,
            1e9 / ns,
            // ns/op up => throughput down: the delta is on ops/s.
            100.0 * (floor / ns - 1.0)
        );
    }
    println!("## every op routes through the real ShardRouter to one of 4 loopback-TCP");
    println!("## HDNS shards; obs adds router + pipeline spans client-side and the server");
    println!("## span + op metrics on each shard. budget: <= 5% throughput cost enabled.");
    println!();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_obs_overhead
}

fn main() {
    if matches!(std::env::var("PROBE").as_deref(), Ok("lat")) {
        overhead_table();
        mixed_table();
        return;
    }
    benches();
    overhead_table();
    mixed_table();
}
