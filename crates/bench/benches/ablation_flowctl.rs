//! Ablation A3 — bounded vs unbounded message queues.
//!
//! The paper closes Fig. 5's analysis with "the implementation needs
//! improvement to be able to gracefully handle update overload". This
//! ablation reruns the HDNS write sweep with the flow-control layer's
//! bounded queue: instead of growing until memory exhaustion and crashing,
//! the bounded stack rejects excess work and throughput *levels off* at
//! capacity.

use rndi_bench::figures::fig5;
use rndi_bench::{print_figure, Series, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let unbounded = fig5(&config, false);
    let bounded = fig5(&config, true);
    let series: Vec<Series> = vec![
        relabel(
            unbounded.into_iter().next().expect("series"),
            "unbounded (paper)",
        ),
        relabel(
            bounded.into_iter().next().expect("series"),
            "bounded (proposed fix)",
        ),
    ];
    print_figure(
        "Ablation A3 — HDNS rebind throughput: unbounded vs bounded queues [ops/s]",
        &series,
    );
}

fn relabel(mut s: Series, label: &str) -> Series {
    s.label = label.to_string();
    s
}
