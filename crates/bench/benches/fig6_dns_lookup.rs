//! Figure 6 — Throughput of JNDI-DNS, lookup operations (read).
//!
//! Expected shape: "DNS exhibits excellent scalability, with peak
//! throughput per node exceeding 1800 lookup operations/s" — linear in
//! the client count across the whole sweep.

use rndi_bench::figures::fig6;
use rndi_bench::{print_figure, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = fig6(&config);
    print_figure(
        "Figure 6 — Throughput of JNDI-DNS, lookup operations (read) [ops/s]",
        &series,
    );
}
