//! Connection-scale bench: can one server core hold 1k+ concurrent
//! sockets and still move requests?
//!
//! The thread-per-connection v1 server capped out at `max_conns` OS
//! threads; the v2 shard-per-core event loop holds each connection as a
//! small state machine instead. This bench opens `THREADS × CONNS_PER`
//! raw v2 connections (default 16 × 64 = 1024) against one `NetServer`,
//! then drives pipelined lookups across *every* connection for a fixed
//! window — so all 1k+ sockets are concurrently established and all of
//! them carry traffic. Uses the sans-IO `conn::ClientConn` directly so
//! the client side costs nearly nothing and the server is the bottleneck
//! being measured.
//!
//! Not a criterion harness: prints a sustained-throughput table for
//! `bench_figures.txt`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rndi_core::env::Environment;
use rndi_core::op::NamingOp;
use rndi_core::spi::ProviderBackend;
use rndi_core::value::BoundValue;
use rndi_net::conn::ClientConn;
use rndi_net::proto::{self, Envelope, EnvelopeBody};
use rndi_net::{NetServer, ServerConfig};
use rndi_providers::HdnsProviderContext;

const THREADS: usize = 16;
const CONNS_PER: usize = 64;
/// Requests kept in flight on each connection while it is being driven.
const DEPTH: usize = 8;
const WINDOW: Duration = Duration::from_millis(2000);

struct BenchConn {
    stream: TcpStream,
    machine: ClientConn,
}

fn dial(addr: &str) -> BenchConn {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    BenchConn {
        stream,
        machine: ClientConn::new(),
    }
}

/// Write `DEPTH` pipelined lookups, then read until every response is
/// back. Returns the number of completed ops.
fn drive_batch(conn: &mut BenchConn, op: &proto::WireOp, scratch: &mut [u8]) -> u64 {
    let mut wire = Vec::with_capacity(DEPTH * 64);
    let mut waiting = std::collections::HashSet::new();
    for _ in 0..DEPTH {
        let req_id = conn.machine.next_req_id();
        let env = Envelope {
            req_id,
            body: EnvelopeBody::Call {
                op: Box::new(op.clone()),
                deadline_ms: 10_000,
                trace: None,
            },
        };
        wire.extend_from_slice(&conn.machine.encode(&env).expect("encode"));
        waiting.insert(req_id);
    }
    conn.stream.write_all(&wire).expect("write batch");
    let mut done = 0u64;
    while !waiting.is_empty() {
        let n = conn.stream.read(scratch).expect("read batch");
        assert!(n > 0, "server closed mid-batch");
        for env in conn.machine.receive(&scratch[..n]).expect("decode") {
            assert!(waiting.remove(&env.req_id), "unknown req_id");
            match env.body {
                EnvelopeBody::Ok(_) => done += 1,
                other => panic!("lookup failed on the wire: {other:?}"),
            }
        }
    }
    done
}

fn main() {
    let realm = hdns::HdnsRealm::new(
        "net-conc-bench",
        1,
        groupcast::StackConfig::default(),
        None,
        5,
    );
    let backend: Arc<dyn ProviderBackend> =
        HdnsProviderContext::with_env(realm, 0, "net-conc-bench", &Environment::new());
    // Seed the key every connection will look up.
    backend
        .execute(&NamingOp::rebind(
            "bench".into(),
            BoundValue::str("payload"),
        ))
        .expect("seed write");

    let total_conns = THREADS * CONNS_PER;
    let server = NetServer::with_config(
        backend,
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            max_conns: total_conns + 8,
            deadline_ms: 30_000,
            shards: 0, // auto: min(cores, 4)
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr().to_string();

    let lookup = proto::encode_op(&NamingOp::lookup("bench".into())).expect("encode op");
    let stop = Arc::new(AtomicBool::new(false));
    let established = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let addr = addr.clone();
            let lookup = lookup.clone();
            let stop = stop.clone();
            let established = established.clone();
            std::thread::spawn(move || {
                let mut conns: Vec<BenchConn> = (0..CONNS_PER).map(|_| dial(&addr)).collect();
                let mut scratch = vec![0u8; 64 * 1024];
                // Prove every socket is live (and get past negotiation)
                // before the measured window starts.
                for conn in conns.iter_mut() {
                    drive_batch(conn, &lookup, &mut scratch);
                    established.fetch_add(1, Ordering::Relaxed);
                }
                while established.load(Ordering::Relaxed) < (THREADS * CONNS_PER) as u64 {
                    std::thread::yield_now();
                }
                // Measured window: round-robin every connection with a
                // pipelined batch so all of them carry traffic.
                let mut ops = 0u64;
                'outer: loop {
                    for conn in conns.iter_mut() {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        ops += drive_batch(conn, &lookup, &mut scratch);
                    }
                }
                ops
            })
        })
        .collect();

    // Wait for all connections to be up, then time the window.
    while established.load(Ordering::Relaxed) < total_conns as u64 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let start = Instant::now();
    std::thread::sleep(WINDOW);
    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    let elapsed = start.elapsed().as_secs_f64();
    let rate = total_ops as f64 / elapsed;

    println!("# net concurrency — sustained throughput at 1k+ concurrent connections (net_concurrency bench)");
    println!(
        "{:>8}  {:>8}  {:>6}  {:>10}  {:>12}  {:>14}",
        "conns", "threads", "depth", "total_ops", "ops/s", "ops/s per conn"
    );
    println!(
        "{:>8}  {:>8}  {:>6}  {:>10}  {:>12.0}  {:>14.1}",
        total_conns,
        THREADS,
        DEPTH,
        total_ops,
        rate,
        rate / total_conns as f64
    );
    println!("## all {total_conns} sockets concurrently established against one v2 server");
    println!("## (shard-per-core event loop), every socket carrying pipelined lookups.");
    println!();

    server.shutdown();
}
