//! Extension experiment — the paper's future work, §8: "Building a large
//! scale information service federation, and its thorough experimental
//! evaluation, will therefore be the focus of our future work."
//!
//! Scales the HDNS intermediate layer from 1 to 8 replicas under a fixed
//! 100-client closed-loop load (reads spread across replicas — the
//! "matching requesters to local nodes" deployment of §6) and measures:
//!
//! * **aggregate read throughput** — should scale out with replicas, since
//!   every replica answers reads locally;
//! * **write throughput** — should *fall* with replicas, since every write
//!   must propagate to the whole group (the §4 replication trade-off).

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use rndi_bench::cost;
use rndi_bench::loadgen::{run_closed_loop, DoneFn, Operation, RoundTrips};
use simnet::{QueueingServer, ServerConfig, Sim, SimRng};

/// Spreads successive operations round-robin across per-replica ops.
struct RoundRobin {
    ops: Vec<Rc<RoundTrips>>,
    next: Cell<usize>,
}

impl Operation for RoundRobin {
    fn issue(&self, sim: &Sim, done: DoneFn) {
        let i = self.next.get();
        self.next.set((i + 1) % self.ops.len());
        Operation::issue(&self.ops[i].clone(), sim, done);
    }
}

fn read_point(replicas: usize, clients: usize) -> f64 {
    let sim = Sim::new();
    let rng = SimRng::seed_from_u64(4242 + replicas as u64);
    let realm = hdns::HdnsRealm::new(
        "scale",
        replicas,
        groupcast::StackConfig::default(),
        None,
        5,
    );
    realm
        .rebind(0, "bench", hdns::HdnsEntry::leaf(vec![0; 64]))
        .expect("seed");
    let ops: Vec<Rc<RoundTrips>> = (0..replicas)
        .map(|node| {
            let realm = realm.clone();
            Rc::new(
                RoundTrips::new(
                    QueueingServer::new(&sim, ServerConfig::default()),
                    rng.fork(),
                    cost::net_rtt(),
                    vec![cost::hdns_read()],
                )
                .with_work(
                    Rc::new(move |_| {
                        realm.lookup(node, "bench").expect("replicated entry");
                    }),
                    8,
                ),
            )
        })
        .collect();
    let op = Rc::new(RoundRobin {
        ops,
        next: Cell::new(0),
    });
    run_closed_loop(
        &sim,
        op as Rc<dyn Operation>,
        clients,
        cost::think_time(),
        Duration::from_secs(2),
        Duration::from_secs(15),
        &rng,
    )
    .throughput
}

fn write_point(replicas: usize, clients: usize) -> f64 {
    let sim = Sim::new();
    let rng = SimRng::seed_from_u64(777 + replicas as u64);
    let realm = hdns::HdnsRealm::new(
        "scale-w",
        replicas,
        groupcast::StackConfig::default(),
        None,
        6,
    );
    // Write cost grows with group size: the multicast fans out to every
    // member and stability needs everyone's ack.
    let per_member = 0.35;
    let service = Duration::from_nanos(
        (cost::hdns_write().as_nanos() as f64 * (1.0 + per_member * (replicas - 1) as f64)) as u64,
    );
    let op = Rc::new(
        RoundTrips::new(
            QueueingServer::new(&sim, ServerConfig::default()),
            rng.fork(),
            cost::net_rtt(),
            vec![service],
        )
        .with_work(
            Rc::new(move |_| {
                realm
                    .rebind(0, "bench", hdns::HdnsEntry::leaf(vec![0; 64]))
                    .expect("replicated rebind");
            }),
            64,
        ),
    );
    run_closed_loop(
        &sim,
        Rc::new(op) as Rc<dyn Operation>,
        clients,
        cost::think_time(),
        Duration::from_secs(2),
        Duration::from_secs(15),
        &rng,
    )
    .throughput
}

fn main() {
    let clients = 600;
    println!();
    println!("# Extension — HDNS layer scaling (fixed {clients} closed-loop clients)");
    println!(
        "{:>9}  {:>22}  {:>18}",
        "replicas", "aggregate reads [op/s]", "writes [op/s]"
    );
    for replicas in [1usize, 2, 3, 4, 6, 8] {
        let r = read_point(replicas, clients);
        let w = write_point(replicas, clients);
        println!("{replicas:>9}  {r:>22.0}  {w:>18.0}");
    }
    println!("## reads scale out with replicas; writes pay the replication fan-out");
}
