//! Goodput past saturation: does the admission plane hold useful work
//! steady while offered load climbs to 4× capacity, or does the server
//! keep "succeeding" at latencies nobody is still waiting for?
//!
//! A deliberately slow backend (≈5 ms per op, one event-loop shard, so
//! capacity ≈200 op/s) serves closed-loop clients over the real v2 wire
//! with the paper's 50 ms think time and a 250 ms latency budget. The
//! sweep ramps from well under the knee to 200 clients, once with the
//! overload plane off (unbounded implicit queueing — the fig5 collapse
//! shape) and once with bounded admission + adaptive concurrency on.
//! *Goodput* counts only completions inside the budget; shed ops are
//! `Overloaded` responses that failed fast at admission.
//!
//! Not a criterion harness: prints goodput tables for
//! `bench_figures.txt`, plus the acceptance summary (goodput at 100
//! clients vs. peak, and saturated vs. pre-saturation in-budget p95).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rndi_core::error::{NamingError, Result};
use rndi_core::name::CompoundSyntax;
use rndi_core::op::{NamingOp, OpKind, OpOutcome};
use rndi_core::spi::ProviderBackend;
use rndi_core::value::BoundValue;
use rndi_net::conn::ClientConn;
use rndi_net::proto::{self, Envelope, EnvelopeBody};
use rndi_net::{NetServer, ServerConfig};

/// Mean service time per op; one shard ⇒ capacity ≈ 1/SERVICE ≈ 200/s.
const SERVICE: Duration = Duration::from_millis(5);
/// The paper's closed-loop think time.
const THINK: Duration = Duration::from_millis(50);
/// Client latency budget: completions past this count toward throughput
/// but not goodput (and the server may shed against it).
const DEADLINE_MS: u64 = 250;
/// Admission bound for the shedding arm. By Little's law the bound *is*
/// the latency cap on a serial executor: queue wait ≤ `QUEUE_DEPTH ×
/// SERVICE` ≈ 10 ms, so saturated in-budget p95 stays within a few ×
/// of the unqueued p95 while the queue still never runs dry (offered
/// load refills it every event-loop sweep).
const QUEUE_DEPTH: usize = 2;
const CLIENTS: &[usize] = &[10, 25, 50, 100, 150, 200];
const WARMUP: Duration = Duration::from_millis(500);
const WINDOW: Duration = Duration::from_millis(1500);

/// A lookup backend that takes a fixed ≈5 ms of (blocking) service time
/// per op — the serial-executor model the admission queue bounds.
struct SlowBackend;

impl ProviderBackend for SlowBackend {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        match op.kind {
            OpKind::Lookup => {
                std::thread::sleep(SERVICE);
                Ok(OpOutcome::Value(BoundValue::str("payload")))
            }
            other => Err(NamingError::unsupported(format!("slow backend {other:?}"))),
        }
    }

    fn provider_id(&self) -> String {
        "slow".to_string()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }
}

enum CallOutcome {
    Ok(Duration),
    Shed,
    Timeout,
}

struct BenchConn {
    stream: TcpStream,
    machine: ClientConn,
}

fn dial(addr: &str) -> BenchConn {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    BenchConn {
        stream,
        machine: ClientConn::new(),
    }
}

/// One lock-step call: write the request, read until its response is
/// back, classify it.
fn one_call(conn: &mut BenchConn, op: &proto::WireOp, scratch: &mut [u8]) -> CallOutcome {
    let req_id = conn.machine.next_req_id();
    let env = Envelope {
        req_id,
        body: EnvelopeBody::Call {
            op: Box::new(op.clone()),
            deadline_ms: DEADLINE_MS,
            trace: None,
        },
    };
    let started = Instant::now();
    conn.stream
        .write_all(&conn.machine.encode(&env).expect("encode"))
        .expect("write call");
    loop {
        let n = conn.stream.read(scratch).expect("read response");
        assert!(n > 0, "server closed mid-call");
        let mut resps = conn.machine.receive(&scratch[..n]).expect("decode");
        if let Some(resp) = resps.pop() {
            assert!(resps.is_empty(), "lock-step: one response at a time");
            assert_eq!(resp.req_id, req_id, "lock-step response id");
            return match resp.body {
                EnvelopeBody::Ok(_) => CallOutcome::Ok(started.elapsed()),
                EnvelopeBody::Err(proto::WireError::Overloaded { .. }) => CallOutcome::Shed,
                EnvelopeBody::Err(proto::WireError::Timeout { .. }) => CallOutcome::Timeout,
                other => panic!("unexpected response: {other:?}"),
            };
        }
    }
}

#[derive(Default)]
struct Tally {
    completed: u64,
    in_budget: u64,
    shed: u64,
    timeout: u64,
    /// Nanosecond latencies of in-budget completions.
    latencies: Vec<u64>,
}

struct Point {
    clients: usize,
    throughput: f64,
    goodput: f64,
    shed_per_sec: f64,
    timeouts: u64,
    p95_ms: f64,
}

/// One sweep point: a fresh server (no AIMD state carry-over), `clients`
/// closed-loop threads, measured inside the window after warm-up.
fn run_point(clients: usize, shedding: bool) -> Point {
    let server = NetServer::with_config(
        Arc::new(SlowBackend),
        ServerConfig {
            max_conns: clients + 8,
            deadline_ms: 5_000,
            shards: 1,
            queue_depth: if shedding { QUEUE_DEPTH } else { 0 },
            adaptive: shedding,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr().to_string();
    let lookup = proto::encode_op(&NamingOp::lookup("svc".into())).expect("encode op");

    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.clone();
            let lookup = lookup.clone();
            let measuring = measuring.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut conn = dial(&addr);
                let mut scratch = vec![0u8; 64 * 1024];
                let mut tally = Tally::default();
                // Stagger starts across one think period to avoid phase
                // lock, like the simnet loadgen does.
                std::thread::sleep(THINK * (i as u32) / (clients as u32).max(1));
                while !stop.load(Ordering::Relaxed) {
                    let outcome = one_call(&mut conn, &lookup, &mut scratch);
                    if measuring.load(Ordering::Relaxed) {
                        match outcome {
                            CallOutcome::Ok(took) => {
                                tally.completed += 1;
                                if took.as_millis() as u64 <= DEADLINE_MS {
                                    tally.in_budget += 1;
                                    tally.latencies.push(took.as_nanos() as u64);
                                }
                            }
                            CallOutcome::Shed => tally.shed += 1,
                            CallOutcome::Timeout => tally.timeout += 1,
                        }
                    }
                    std::thread::sleep(THINK);
                }
                tally
            })
        })
        .collect();

    std::thread::sleep(WARMUP);
    measuring.store(true, Ordering::Relaxed);
    let start = Instant::now();
    std::thread::sleep(WINDOW);
    measuring.store(false, Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = Tally::default();
    for w in workers {
        let t = w.join().expect("worker");
        total.completed += t.completed;
        total.in_budget += t.in_budget;
        total.shed += t.shed;
        total.timeout += t.timeout;
        total.latencies.extend(t.latencies);
    }
    server.shutdown();

    total.latencies.sort_unstable();
    let p95_ms = if total.latencies.is_empty() {
        0.0
    } else {
        let idx = (total.latencies.len() - 1) * 95 / 100;
        total.latencies[idx] as f64 / 1e6
    };
    Point {
        clients,
        throughput: total.completed as f64 / elapsed,
        goodput: total.in_budget as f64 / elapsed,
        shed_per_sec: total.shed as f64 / elapsed,
        timeouts: total.timeout,
        p95_ms,
    }
}

fn run_arm(label: &str, shedding: bool) -> Vec<Point> {
    let points: Vec<Point> = CLIENTS.iter().map(|&c| run_point(c, shedding)).collect();
    println!();
    println!("# overload goodput — {label} (v2 wire, capacity ≈200 op/s, budget {DEADLINE_MS} ms)");
    println!(
        "{:>8}  {:>10}  {:>10}  {:>8}  {:>9}  {:>10}",
        "clients", "ops/s", "goodput/s", "shed/s", "timeouts", "p95_ms"
    );
    for p in &points {
        println!(
            "{:>8}  {:>10.1}  {:>10.1}  {:>8.1}  {:>9}  {:>10.1}",
            p.clients, p.throughput, p.goodput, p.shed_per_sec, p.timeouts, p.p95_ms
        );
    }
    points
}

fn main() {
    let off = run_arm("shedding off", false);
    let on = run_arm("shedding on", true);

    let peak = |pts: &[Point]| pts.iter().map(|p| p.goodput).fold(0.0, f64::max);
    let at = |pts: &[Point], c: usize| {
        pts.iter()
            .min_by_key(|p| p.clients.abs_diff(c))
            .map(|p| p.goodput)
            .unwrap_or(0.0)
    };
    let presat_p95 = on.first().map(|p| p.p95_ms).unwrap_or(0.0);
    let sat_p95 = on
        .iter()
        .min_by_key(|p| p.clients.abs_diff(100))
        .map(|p| p.p95_ms)
        .unwrap_or(0.0);

    println!();
    println!(
        "## shedding off: peak goodput {:.0}/s, at-100-clients {:.0}/s ({:.0}% of peak)",
        peak(&off),
        at(&off, 100),
        100.0 * at(&off, 100) / peak(&off).max(1e-9),
    );
    println!(
        "## shedding on:  peak goodput {:.0}/s, at-100-clients {:.0}/s ({:.0}% of peak)",
        peak(&on),
        at(&on, 100),
        100.0 * at(&on, 100) / peak(&on).max(1e-9),
    );
    println!(
        "## shedding on:  in-budget p95 {:.1} ms pre-saturation → {:.1} ms at 100 clients ({:.1}×)",
        presat_p95,
        sat_p95,
        sat_p95 / presat_p95.max(1e-9),
    );
}
