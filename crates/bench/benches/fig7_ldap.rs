//! Figure 7 — Throughput of JNDI-LDAP (OpenLDAP), read/write.
//!
//! Expected shape: "very good write throughput has been observed for the
//! LDAP server. Surprisingly, the read throughput of OpenLDAP plateaus at
//! about 800 operations per second, leaving server resources …
//! unsaturated" — the anti-DoS throttle the authors conjectured, which
//! `dirserv` implements explicitly.

use rndi_bench::figures::fig7;
use rndi_bench::{print_figure, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = fig7(&config);
    print_figure(
        "Figure 7 — Throughput of JNDI-LDAP (OpenLDAP), read/write [ops/s]",
        &series,
    );
}
