//! Read-path scaling: indexed lookups/searches vs the retained linear-scan
//! oracles, across directory sizes — plus the federated fan-out latency
//! profile (pool width 1 vs 8 against deliberately slow mounts) and a
//! client-thread sweep over the registrar's read lock.
//!
//! The headline claims this backs (recorded in `bench_figures.txt`):
//! indexed registrar lookup is near-flat in directory size (≥10× over the
//! scan at 100k items), LDAP subtree search rides the equality index, and
//! federated subtree search costs ~max (not sum) of per-mount latencies.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use dirserv::{Dit, Dn, LdapEntry, LdapFilter, Scope};
use rlus::{
    Entry, EntryTemplate, ManualClock, Registrar, ServiceItem, ServiceStub, ServiceTemplate,
};
use rndi_core::attrs::Attributes;
use rndi_core::context::{Context, DirContext, SearchControls, SearchScope};
use rndi_core::env::{keys, Environment};
use rndi_core::federation::FederatedContext;
use rndi_core::filter::Filter;
use rndi_core::mem::MemContext;
use rndi_core::name::CompositeName;
use rndi_core::spi::ProviderRegistry;
use rndi_core::value::BoundValue;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

fn populated_registrar(n: usize) -> Registrar {
    let clock = ManualClock::new();
    let registrar = Registrar::new(clock, u64::MAX / 4, 1);
    for i in 0..n {
        let item = ServiceItem::new(ServiceStub::new(
            vec![format!("Type{}", i % 16), "Svc".to_string()],
            vec![(i % 251) as u8],
        ))
        .with_entry(Entry::name(format!("svc-{i}")));
        registrar.register(item, u64::MAX / 8);
    }
    registrar
}

fn bench_registrar_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("registrar_lookup");
    for n in SIZES {
        let registrar = populated_registrar(n);
        // A selective template: one Name entry → one posting-set probe.
        let template = ServiceTemplate::any()
            .with_entry(EntryTemplate::new("Name").with("name", format!("svc-{}", n / 2)));
        group.bench_function(&format!("indexed/{n}"), |b| {
            b.iter(|| {
                registrar
                    .lookup_all(std::hint::black_box(&template), usize::MAX)
                    .len()
            })
        });
        group.bench_function(&format!("scan/{n}"), |b| {
            b.iter(|| {
                registrar
                    .lookup_all_scan(std::hint::black_box(&template), usize::MAX)
                    .len()
            })
        });
    }
    group.finish();
}

fn populated_dit(n: usize) -> Dit {
    let mut dit = Dit::new();
    let base = Dn::parse("ou=people,dc=example").unwrap();
    dit.add(LdapEntry::new(Dn::parse("dc=example").unwrap()).with("dc", "example"))
        .unwrap();
    dit.add(LdapEntry::new(base.clone()).with("ou", "people"))
        .unwrap();
    for i in 0..n {
        let dn = Dn::parse(&format!("cn=u{i},ou=people,dc=example")).unwrap();
        dit.add(
            LdapEntry::new(dn)
                .with("cn", format!("u{i}"))
                .with("dept", format!("d{}", i % 32)),
        )
        .unwrap();
    }
    dit
}

fn bench_ldap_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldap_search");
    for n in SIZES {
        let dit = populated_dit(n);
        let filter = LdapFilter::parse(&format!("(cn=u{})", n / 2)).unwrap();
        let root = Dn::root();
        group.bench_function(&format!("indexed/{n}"), |b| {
            b.iter(|| {
                dit.search(&root, Scope::Subtree, std::hint::black_box(&filter), 0)
                    .unwrap()
                    .len()
            })
        });
        group.bench_function(&format!("scan/{n}"), |b| {
            b.iter(|| {
                dit.search_scan(&root, Scope::Subtree, std::hint::black_box(&filter), 0)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_hdns_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdns_list");
    for n in SIZES {
        let realm = hdns::HdnsRealm::new("bench", 1, groupcast::StackConfig::default(), None, 5);
        realm.create_context(0, "bulk").unwrap();
        realm.create_context(0, "small").unwrap();
        for i in 0..n {
            realm
                .rebind(0, &format!("bulk/leaf-{i}"), hdns::HdnsEntry::leaf(vec![0]))
                .unwrap();
        }
        for j in 0..10 {
            realm
                .rebind(0, &format!("small/x-{j}"), hdns::HdnsEntry::leaf(vec![0]))
                .unwrap();
        }
        // Listing the 10-entry subdir: a prefix range scan, so cost tracks
        // the subdir, not the n-entry sibling.
        group.bench_function(&format!("small_dir/{n}"), |b| {
            b.iter(|| realm.list(0, std::hint::black_box("small")).len())
        });
    }
    group.finish();
}

/// A directory context whose `search` takes a fixed wall-clock time —
/// stands in for a remote naming system on a ~2ms network.
struct SlowDir {
    inner: MemContext,
    delay: Duration,
}

impl Context for SlowDir {
    fn lookup(&self, name: &CompositeName) -> rndi_core::error::Result<BoundValue> {
        self.inner.lookup(name)
    }
    fn bind(&self, name: &CompositeName, value: BoundValue) -> rndi_core::error::Result<()> {
        self.inner.bind(name, value)
    }
    fn rebind(&self, name: &CompositeName, value: BoundValue) -> rndi_core::error::Result<()> {
        self.inner.rebind(name, value)
    }
    fn unbind(&self, name: &CompositeName) -> rndi_core::error::Result<()> {
        self.inner.unbind(name)
    }
    fn list(
        &self,
        name: &CompositeName,
    ) -> rndi_core::error::Result<Vec<rndi_core::context::NameClassPair>> {
        self.inner.list(name)
    }
    fn list_bindings(
        &self,
        name: &CompositeName,
    ) -> rndi_core::error::Result<Vec<rndi_core::context::Binding>> {
        self.inner.list_bindings(name)
    }
}

impl DirContext for SlowDir {
    fn get_attributes(&self, name: &CompositeName) -> rndi_core::error::Result<Attributes> {
        self.inner.get_attributes(name)
    }
    fn bind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> rndi_core::error::Result<()> {
        self.inner.bind_with_attrs(name, value, attrs)
    }
    fn rebind_with_attrs(
        &self,
        name: &CompositeName,
        value: BoundValue,
        attrs: Attributes,
    ) -> rndi_core::error::Result<()> {
        self.inner.rebind_with_attrs(name, value, attrs)
    }
    fn search(
        &self,
        name: &CompositeName,
        filter: &Filter,
        controls: &SearchControls,
    ) -> rndi_core::error::Result<Vec<rndi_core::context::SearchItem>> {
        std::thread::sleep(self.delay);
        self.inner.search(name, filter, controls)
    }
}

fn federated_root(mounts: usize, delay: Duration) -> Arc<MemContext> {
    let root = MemContext::new();
    for m in 0..mounts {
        let far = MemContext::new();
        far.bind_with_attrs(
            &format!("hit-{m}").as_str().into(),
            BoundValue::Null,
            Attributes::new().with("k", "v"),
        )
        .unwrap();
        let slow = SlowDir { inner: far, delay };
        root.bind(
            &format!("mount-{m:02}").as_str().into(),
            BoundValue::Context(Arc::new(slow)),
        )
        .unwrap();
    }
    Arc::new(root)
}

fn bench_federated_fanout(c: &mut Criterion) {
    const MOUNTS: usize = 8;
    let delay = Duration::from_millis(2);
    let root = federated_root(MOUNTS, delay);
    let controls = SearchControls {
        scope: SearchScope::Subtree,
        ..Default::default()
    };
    let filter = Filter::parse("(k=v)").unwrap();

    let mut group = c.benchmark_group("federated_fanout");
    for fanout in ["1", "8"] {
        let fed = FederatedContext::new(
            root.clone(),
            Arc::new(ProviderRegistry::new()),
            Environment::new().with(keys::FEDERATION_FANOUT, fanout),
        );
        group.bench_function(&format!("workers/{fanout}"), |b| {
            b.iter(|| {
                let hits = DirContext::search(
                    fed.as_ref(),
                    &CompositeName::empty(),
                    std::hint::black_box(&filter),
                    &controls,
                )
                .unwrap();
                assert_eq!(hits.len(), MOUNTS);
            })
        });
    }
    group.finish();
}

/// Not a criterion benchmark: a closed-loop thread sweep over the
/// registrar's read path, printed as its own table. Readers share one
/// `RwLock`, so indexed lookups should scale near-linearly with threads.
fn thread_sweep(_c: &mut Criterion) {
    const OPS_PER_THREAD: usize = 50_000;
    let registrar = populated_registrar(10_000);
    println!("\n# registrar_lookup_threads (10k items, indexed, ops/s total)");
    println!("{:>8}  {:>14}", "threads", "ops_per_sec");
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let registrar = registrar.clone();
                s.spawn(move || {
                    let template = ServiceTemplate::any().with_entry(
                        EntryTemplate::new("Name").with("name", format!("svc-{}", 1234 + t)),
                    );
                    for _ in 0..OPS_PER_THREAD {
                        let n = registrar
                            .lookup_all(std::hint::black_box(&template), usize::MAX)
                            .len();
                        assert_eq!(n, 1);
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let rate = (threads * OPS_PER_THREAD) as f64 / elapsed;
        println!("{threads:>8}  {rate:>14.0}");
    }
    println!();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_registrar_lookup, bench_ldap_search, bench_hdns_list,
        bench_federated_fanout, thread_sweep
}
criterion_main!(benches);
