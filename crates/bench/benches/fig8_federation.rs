//! Experiment 8 — the §7 federation claim: "the individual performance
//! characteristics of the discussed JNDI providers are preserved when they
//! are combined into a federated name space."
//!
//! Compares a direct departmental-LDAP read against the full composite
//! path `dns://global/emory/mathcs/dcl/mokey` (DNS root → HDNS
//! intermediate → LDAP leaf). Expected: the same ≈800 op/s throttle
//! plateau governs both (characteristics preserved); the federated path
//! pays additive per-hop latency.

use rndi_bench::experiment::print_latency;
use rndi_bench::figures::fig8;
use rndi_bench::{print_figure, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = fig8(&config);
    print_figure(
        "Experiment 8 — Federated (dns→hdns→ldap) vs direct LDAP lookups [ops/s]",
        &series,
    );
    for s in &series {
        print_latency(s);
    }
}
