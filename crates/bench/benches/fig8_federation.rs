//! Experiment 8 — the §7 federation claim: "the individual performance
//! characteristics of the discussed JNDI providers are preserved when they
//! are combined into a federated name space."
//!
//! Compares a direct departmental-LDAP read against the full composite
//! path `dns://global/emory/mathcs/dcl/mokey` (DNS root → HDNS
//! intermediate → LDAP leaf). Expected: the same ≈800 op/s throttle
//! plateau governs both (characteristics preserved); the federated path
//! pays additive per-hop latency.

use rndi_bench::experiment::print_latency;
use rndi_bench::figures::{fig8, fig8_cached_lookups};
use rndi_bench::{print_figure, SweepConfig};
use rndi_core::spi::telemetry;

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    telemetry::reset();
    let series = fig8(&config);
    print_figure(
        "Experiment 8 — Federated (dns→hdns→ldap) vs direct LDAP lookups [ops/s]",
        &series,
    );
    for s in &series {
        print_latency(s);
    }
    // Re-run the federated lookup with the pipeline cache enabled so the
    // telemetry below shows the hit rate repeated resolutions achieve.
    fig8_cached_lookups(1_000);
    print_pipeline_telemetry();
    // `fig8_federation --obs-dump` (or RNDI_OBS_DUMP=1) appends the full
    // metrics exposition plus the slowest end-to-end traces.
    if rndi_bench::obsdump::requested() {
        rndi_bench::obsdump::dump(10);
    }
}

/// Per-provider pipeline telemetry: op counts by kind, mean latency, cache
/// hit rate, retries — the measured (not assumed) cost of the op pipeline.
fn print_pipeline_telemetry() {
    println!("\nProvider pipeline telemetry (per provider label):");
    for t in telemetry::snapshot() {
        println!("  {} ({} pipeline(s))", t.label, t.pipelines);
        for row in &t.ops {
            let mean_us = if row.ops > 0 {
                row.total.as_micros() as f64 / row.ops as f64
            } else {
                0.0
            };
            println!(
                "    {:<18} ops={:<8} errors={:<6} mean={:.1}µs",
                row.kind.label(),
                row.ops,
                row.errors,
                mean_us
            );
        }
        if let Some(cache) = &t.cache {
            println!(
                "    cache: hits={} misses={} invalidations={} hit-rate={:.1}%",
                cache.hits,
                cache.misses,
                cache.invalidations,
                cache.hit_rate() * 100.0
            );
        }
        if t.retries > 0 {
            println!("    retries: {}", t.retries);
        }
    }
}
