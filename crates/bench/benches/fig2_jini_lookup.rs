//! Figure 2 — Throughput of Jini and JNDI Jini provider, lookup
//! operations (read).
//!
//! Expected shape (paper §7): the standalone LUS peaks near 400 req/s and
//! then degrades; the JNDI provider's serialization layer costs ≈25%
//! (peak ≈300 req/s); strict vs relaxed bind semantics do not affect
//! reads.

use rndi_bench::figures::fig2;
use rndi_bench::{print_figure, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = fig2(&config);
    print_figure(
        "Figure 2 — Throughput of Jini and JNDI Jini provider, lookup operations (read) [ops/s]",
        &series,
    );
}
