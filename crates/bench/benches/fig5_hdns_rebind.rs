//! Figure 5 — Throughput of HDNS and JNDI HDNS provider, rebind
//! operations (write).
//!
//! Expected shape: peak write throughput ≈200 op/s, then — because the
//! unbounded JGroups message queues grow until memory is exhausted and the
//! server crashes — "a rapid throughput decline (instead of levelling
//! off) for number of clients exceeding 20".

use rndi_bench::figures::fig5;
use rndi_bench::{print_figure, print_goodput, SweepConfig};

fn main() {
    let config = if std::env::var("RNDI_BENCH_QUICK").is_ok() {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let series = fig5(&config, false);
    print_figure(
        "Figure 5 — Throughput of HDNS and JNDI HDNS provider, rebind operations (write) [ops/s]",
        &series,
    );
    for s in &series {
        print_goodput(s);
    }
}
