//! Observability smoke: a small federation figure run must leave behind a
//! parseable metrics exposition covering the pipeline layer — the same
//! assertion CI's smoke job makes against the full `fig8_federation` run.

use std::time::Duration;

use rndi_bench::figures::fig8;
use rndi_bench::SweepConfig;
use rndi_core::spi::telemetry;

#[test]
fn fig8_run_emits_parseable_exposition() {
    let cfg = SweepConfig {
        clients: vec![10],
        warmup: Duration::from_millis(500),
        measure: Duration::from_secs(3),
        ..Default::default()
    };
    telemetry::reset();
    let series = fig8(&cfg);
    assert_eq!(series.len(), 2, "direct and federated series");

    let text = telemetry::render();
    let samples = rndi_obs::expo::parse(&text).expect("exposition parses");
    assert!(!samples.is_empty(), "exposition carries samples");
    // The figure's real backend traffic ran through provider pipelines, so
    // both the op counters and the latency histograms must be present.
    assert!(
        samples
            .iter()
            .any(|s| s.name == "rndi_ops_total" && s.label("layer") == Some("pipeline")),
        "pipeline op counters exposed"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "rndi_op_duration_ns_bucket"),
        "latency histogram buckets exposed"
    );
    // And the dump printer digests the same run without panicking.
    rndi_bench::obsdump::dump(3);
}
