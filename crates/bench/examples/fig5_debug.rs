//! Diagnostic: the Fig. 5 overload-collapse dynamics, point by point —
//! completions, failures, and crash counts for the unbounded-queue HDNS
//! write server. Useful when re-calibrating `cost::HDNS_*`.
//!
//! Run with: `cargo run -p rndi-bench --example fig5_debug`

use std::rc::Rc;
use std::time::Duration;

use rndi_bench::loadgen::{run_closed_loop, Operation, RoundTrips};
use simnet::{QueueingServer, ServerConfig, Sim, SimRng};

fn main() {
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>8}",
        "clients", "ops/s", "completed", "failed", "crashes"
    );
    for clients in [10usize, 15, 20, 25, 30, 40, 70, 100] {
        let sim = Sim::new();
        let rng = SimRng::seed_from_u64(9);
        let server = QueueingServer::new(
            &sim,
            ServerConfig {
                workers: 1,
                bytes_per_job: rndi_bench::cost::HDNS_WRITE_BYTES,
                memory_limit: Some(rndi_bench::cost::HDNS_MEMORY_LIMIT),
                restart_after: Some(rndi_bench::cost::hdns_restart()),
                ..Default::default()
            },
        );
        let srv = server.clone();
        let op = Rc::new(RoundTrips::new(
            server,
            rng.fork(),
            Duration::from_micros(200),
            vec![rndi_bench::cost::hdns_write()],
        ));
        let r = run_closed_loop(
            &sim,
            Rc::new(op) as Rc<dyn Operation>,
            clients,
            rndi_bench::cost::think_time(),
            Duration::from_secs(2),
            Duration::from_secs(10),
            &rng,
        );
        println!(
            "{:>8} {:>10.1} {:>10} {:>8} {:>8}",
            clients,
            r.throughput,
            r.completed,
            r.failed,
            srv.stats().crashes
        );
    }
}
