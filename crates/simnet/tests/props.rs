//! Property tests for the simulation kernel.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use proptest::prelude::*;

use simnet::{JobOutcome, QueueingServer, ServerConfig, Sim, SimRng, SimTime};

proptest! {
    /// Events fire in nondecreasing virtual-time order, regardless of
    /// scheduling order, and the clock never runs backwards.
    #[test]
    fn scheduler_fires_in_time_order(delays in proptest::collection::vec(0u64..10_000, 1..50)) {
        let sim = Sim::new();
        let fired: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        for d in &delays {
            let fired = fired.clone();
            sim.schedule(Duration::from_micros(*d), move |sim| {
                fired.borrow_mut().push(sim.now());
            });
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1], "clock went backwards: {:?}", &*fired);
        }
        let max = delays.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(sim.now(), SimTime::from_nanos(max * 1000));
    }

    /// Ties at the same instant fire in FIFO scheduling order.
    #[test]
    fn same_instant_fifo(n in 1usize..40) {
        let sim = Sim::new();
        let fired: Rc<RefCell<Vec<usize>>> = Rc::default();
        for i in 0..n {
            let fired = fired.clone();
            sim.schedule(Duration::from_millis(5), move |_| {
                fired.borrow_mut().push(i);
            });
        }
        sim.run();
        prop_assert_eq!(&*fired.borrow(), &(0..n).collect::<Vec<_>>());
    }

    /// Job conservation: every submitted job reports exactly one outcome
    /// (completed, rejected, or crashed — abandoned in-service jobs are
    /// the one documented exception and only occur on crash).
    #[test]
    fn queueing_server_conserves_jobs(
        service_us in proptest::collection::vec(1u64..5_000, 1..60),
        queue_limit in proptest::option::of(0usize..8),
        workers in 1usize..4,
    ) {
        let sim = Sim::new();
        let server = QueueingServer::new(
            &sim,
            ServerConfig {
                workers,
                queue_limit,
                ..Default::default()
            },
        );
        let outcomes: Rc<RefCell<Vec<JobOutcome>>> = Rc::default();
        for us in &service_us {
            let outcomes = outcomes.clone();
            server.submit(Duration::from_micros(*us), move |_, o| {
                outcomes.borrow_mut().push(o);
            });
        }
        sim.run();
        let outcomes = outcomes.borrow();
        prop_assert_eq!(outcomes.len(), service_us.len(), "one outcome per job");
        let completed = outcomes.iter().filter(|o| **o == JobOutcome::Completed).count() as u64;
        let rejected = outcomes.iter().filter(|o| **o == JobOutcome::Rejected).count() as u64;
        let stats = server.stats();
        prop_assert_eq!(completed, stats.completed);
        prop_assert_eq!(rejected, stats.rejected);
        prop_assert!(!outcomes.contains(&JobOutcome::Crashed), "no crash configured");
    }

    /// Deterministic replay: two identically seeded runs produce identical
    /// event counts and final clocks.
    #[test]
    fn seeded_runs_replay_identically(seed in any::<u64>(), n in 1usize..30) {
        let run = |seed: u64| {
            let sim = Sim::new();
            let rng = SimRng::seed_from_u64(seed);
            for _ in 0..n {
                let d = rng.exp_duration(Duration::from_millis(3));
                sim.schedule(d, |_| {});
            }
            sim.run();
            (sim.events_executed(), sim.now())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Jittered durations stay within the requested band.
    #[test]
    fn jitter_band(base_us in 1u64..1_000_000, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let rng = SimRng::seed_from_u64(seed);
        let base = Duration::from_micros(base_us);
        for _ in 0..32 {
            let d = rng.jittered(base, frac);
            let lo = base.as_nanos() as f64 * (1.0 - frac) - 1.0;
            let hi = base.as_nanos() as f64 * (1.0 + frac) + 1.0;
            prop_assert!((lo..=hi).contains(&(d.as_nanos() as f64)), "{d:?} outside ±{frac} of {base:?}");
        }
    }
}
