//! # simnet — virtual-time discrete-event simulated network and cluster
//!
//! This crate stands in for the paper's experimental substrate: a Gigabit
//! Ethernet LAN with dedicated server machines and a multi-threaded client
//! host. Instead of wall-clock threads, experiments run on a deterministic
//! discrete-event simulation:
//!
//! * [`time::SimTime`] — virtual timestamps with nanosecond resolution.
//! * [`sched::Sim`] — the event scheduler / simulation handle. Everything
//!   else is built from `Sim::schedule` callbacks.
//! * [`net::Network`] — nodes, links with latency/jitter/loss, and network
//!   partitions (used by the HDNS PRIMARY_PARTITION experiments).
//! * [`server::QueueingServer`] — a queueing service centre with a bounded
//!   worker pool; models a backend server's capacity, saturation and
//!   overload degradation.
//! * [`fault`] — crash/restart failure injection and memory budgets (used to
//!   reproduce the Fig. 5 JGroups queue-growth crash).
//! * [`rng::SimRng`] — seeded, deterministic randomness.
//! * [`stats`] — throughput meters and latency accumulators used by the
//!   load generator.
//!
//! The simulation is single-threaded and fully deterministic given a seed:
//! running the same experiment twice yields identical event orders, which is
//! what lets the benchmark harness regenerate the paper's figures stably.

pub mod fault;
pub mod net;
pub mod rng;
pub mod sched;
pub mod server;
pub mod stats;
pub mod time;

pub use net::{LinkSpec, Network, NodeId, Packet};
pub use rng::SimRng;
pub use sched::{EventId, Sim};
pub use server::{JobOutcome, QueueingServer, ServerConfig};
pub use stats::{LatencyStat, ThroughputMeter};
pub use time::SimTime;

/// Convenience: build a duration from milliseconds (f64, may be fractional).
pub fn millis(ms: f64) -> std::time::Duration {
    std::time::Duration::from_nanos((ms * 1_000_000.0) as u64)
}

/// Convenience: build a duration from microseconds (f64, may be fractional).
pub fn micros(us: f64) -> std::time::Duration {
    std::time::Duration::from_nanos((us * 1_000.0) as u64)
}
