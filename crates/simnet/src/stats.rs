//! Measurement utilities for experiments.

use std::time::Duration;

use crate::time::SimTime;

/// Counts events inside a measurement window and reports a rate.
///
/// The load generator opens the window after a warm-up period so transient
/// start-up effects don't skew throughput, mirroring standard closed-loop
/// benchmarking practice.
#[derive(Clone, Debug, Default)]
pub struct ThroughputMeter {
    window_start: Option<SimTime>,
    window_end: Option<SimTime>,
    in_window: u64,
    total: u64,
}

impl ThroughputMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open the measurement window at `t`.
    pub fn open(&mut self, t: SimTime) {
        self.window_start = Some(t);
        self.window_end = None;
    }

    /// Close the measurement window at `t`.
    pub fn close(&mut self, t: SimTime) {
        self.window_end = Some(t);
    }

    /// Record one event at time `t`.
    pub fn record(&mut self, t: SimTime) {
        self.total += 1;
        let after_open = self.window_start.is_some_and(|s| t >= s);
        let before_close = self.window_end.is_none_or(|e| t < e);
        if after_open && before_close {
            self.in_window += 1;
        }
    }

    /// Events recorded inside the window.
    pub fn count(&self) -> u64 {
        self.in_window
    }

    /// Events recorded overall (window or not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events per second over the window. `None` until the window is fully
    /// specified or if it has zero length.
    pub fn rate(&self) -> Option<f64> {
        let (s, e) = (self.window_start?, self.window_end?);
        if e <= s {
            return None;
        }
        Some(self.in_window as f64 / (e - s).as_secs_f64())
    }
}

/// Accumulates latency samples; reports mean and quantiles.
#[derive(Clone, Debug, Default)]
pub struct LatencyStat {
    samples: Vec<Duration>,
}

impl LatencyStat {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos()).sum();
        Some(Duration::from_nanos(
            (total / self.samples.len() as u128) as u64,
        ))
    }

    pub fn min(&self) -> Option<Duration> {
        self.samples.iter().min().copied()
    }

    pub fn max(&self) -> Option<Duration> {
        self.samples.iter().max().copied()
    }

    /// Quantile in `[0, 1]` by nearest-rank on a sorted copy.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_only_window() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_secs(0)); // before open
        m.open(SimTime::from_secs(1));
        m.record(SimTime::from_secs(1));
        m.record(SimTime::from_secs(2));
        m.close(SimTime::from_secs(3));
        m.record(SimTime::from_secs(3)); // at close boundary: excluded
        assert_eq!(m.count(), 2);
        assert_eq!(m.total(), 4);
        assert_eq!(m.rate(), Some(1.0));
    }

    #[test]
    fn meter_rate_requires_window() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_secs(1));
        assert_eq!(m.rate(), None);
        m.open(SimTime::from_secs(1));
        assert_eq!(m.rate(), None);
        m.close(SimTime::from_secs(1));
        assert_eq!(m.rate(), None, "zero-length window");
    }

    #[test]
    fn latency_stats() {
        let mut s = LatencyStat::new();
        assert!(s.mean().is_none());
        for ms in [10u64, 20, 30, 40] {
            s.record(Duration::from_millis(ms));
        }
        assert_eq!(s.mean(), Some(Duration::from_millis(25)));
        assert_eq!(s.min(), Some(Duration::from_millis(10)));
        assert_eq!(s.max(), Some(Duration::from_millis(40)));
        assert_eq!(s.quantile(0.0), Some(Duration::from_millis(10)));
        assert_eq!(s.quantile(1.0), Some(Duration::from_millis(40)));
        assert_eq!(s.quantile(0.5), Some(Duration::from_millis(30)));
    }
}
