//! The discrete-event scheduler.
//!
//! [`Sim`] is a cheaply cloneable handle onto a single-threaded event loop.
//! Simulation actors capture a `Sim` (plus `Rc`s of their own state) inside
//! `FnOnce` callbacks scheduled at future virtual instants. Events scheduled
//! for the same instant fire in scheduling order (FIFO), which keeps runs
//! deterministic.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;
use std::time::Duration;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

type Callback = Box<dyn FnOnce(&Sim)>;

struct Entry {
    key: Reverse<(SimTime, u64)>,
    id: EventId,
    callback: Callback,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[derive(Default)]
struct Core {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: HashSet<EventId>,
    executed: u64,
}

/// Handle to the simulation: clock access plus event scheduling.
///
/// Cloning a `Sim` clones the handle, not the world; all clones share the
/// same event queue and clock.
#[derive(Clone, Default)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
}

impl Sim {
    /// Create a fresh simulation whose clock reads [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Number of events executed so far (diagnostics).
    pub fn events_executed(&self) -> u64 {
        self.core.borrow().executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        let core = self.core.borrow();
        core.queue.len() - core.cancelled.len().min(core.queue.len())
    }

    /// Schedule `callback` to run `delay` after the current instant.
    pub fn schedule<F>(&self, delay: Duration, callback: F) -> EventId
    where
        F: FnOnce(&Sim) + 'static,
    {
        let at = self.now() + delay;
        self.schedule_at(at, callback)
    }

    /// Schedule `callback` at an absolute virtual instant. Instants in the
    /// past are clamped to "now" (the event still runs, immediately after
    /// already-queued events for the current instant).
    pub fn schedule_at<F>(&self, at: SimTime, callback: F) -> EventId
    where
        F: FnOnce(&Sim) + 'static,
    {
        let mut core = self.core.borrow_mut();
        let at = at.max(core.now);
        let seq = core.next_seq;
        core.next_seq += 1;
        let id = EventId(seq);
        core.queue.push(Entry {
            key: Reverse((at, seq)),
            id,
            callback: Box::new(callback),
        });
        id
    }

    /// Cancel a pending event. Cancelling an event that already fired (or was
    /// already cancelled) is a no-op.
    pub fn cancel(&self, id: EventId) {
        self.core.borrow_mut().cancelled.insert(id);
    }

    /// Run events until the queue is empty. Returns the final clock value.
    pub fn run(&self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run events with timestamps `<= deadline`. The clock is left at
    /// `deadline` (or at the last event time if the queue drained first and
    /// the deadline is `SimTime::MAX`).
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        loop {
            let (callback, at) = {
                let mut core = self.core.borrow_mut();
                let Some(head) = core.queue.peek() else {
                    break;
                };
                let Reverse((at, _)) = head.key;
                if at > deadline {
                    break;
                }
                let entry = core.queue.pop().expect("peeked entry vanished");
                if core.cancelled.remove(&entry.id) {
                    continue;
                }
                core.now = at;
                core.executed += 1;
                (entry.callback, at)
            };
            debug_assert!(at <= deadline);
            callback(self);
        }
        if deadline != SimTime::MAX {
            let mut core = self.core.borrow_mut();
            core.now = core.now.max(deadline);
        }
        self.now()
    }

    /// Advance the clock by `step`, running everything due in the window.
    pub fn step(&self, step: Duration) -> SimTime {
        let deadline = self.now() + step;
        self.run_until(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for (delay_ms, tag) in [(30u64, 3u32), (10, 1), (20, 2)] {
            let log = log.clone();
            sim.schedule(Duration::from_millis(delay_ms), move |_| {
                log.borrow_mut().push(tag)
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_is_fifo() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for tag in 0..5u32 {
            let log = log.clone();
            sim.schedule(Duration::from_millis(5), move |_| {
                log.borrow_mut().push(tag)
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling_from_callbacks() {
        let sim = Sim::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        sim.schedule(Duration::from_millis(1), move |sim| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            sim.schedule(Duration::from_millis(1), move |_| {
                *h2.borrow_mut() += 1;
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn cancellation_suppresses_event() {
        let sim = Sim::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule(Duration::from_millis(1), move |_| {
            *h.borrow_mut() += 1;
        });
        sim.cancel(id);
        sim.run();
        assert_eq!(*hits.borrow(), 0);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let hits = Rc::new(RefCell::new(0u32));
        for ms in [10u64, 20, 30] {
            let h = hits.clone();
            sim.schedule(Duration::from_millis(ms), move |_| {
                *h.borrow_mut() += 1;
            });
        }
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        sim.run();
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let sim = Sim::new();
        sim.schedule(Duration::from_millis(10), |sim| {
            // Absolute instant in the past: clamped, still runs.
            let hit = Rc::new(RefCell::new(false));
            let h = hit.clone();
            sim.schedule_at(SimTime::ZERO, move |sim| {
                *h.borrow_mut() = true;
                assert_eq!(sim.now(), SimTime::from_millis(10));
            });
        });
        sim.run();
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn step_advances_clock_even_when_idle() {
        let sim = Sim::new();
        sim.step(Duration::from_secs(2));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }
}
