//! Virtual timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, measured in nanoseconds since simulation start.
///
/// `SimTime` is a plain newtype over `u64` so it is `Copy`, totally ordered,
/// and cheap to store in event-queue keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A timestamp later than any other; used as a sentinel deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from milliseconds since epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds since epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since epoch expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time since epoch expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier > self`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        self.0.checked_add(d.as_nanos() as u64).map(SimTime)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics if `rhs` is later than `self`; use [`SimTime::saturating_since`]
    /// when the ordering is not statically known.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(50);
        assert_eq!(t.as_nanos(), 50_000_000);
        let u = t + Duration::from_millis(25);
        assert_eq!(u - t, Duration::from_millis(25));
        assert_eq!(u.as_millis_f64(), 75.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::from_secs(1) < SimTime::MAX);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX.checked_add(Duration::from_nanos(1)).is_none());
        assert!(SimTime::ZERO.checked_add(Duration::from_secs(5)).is_some());
    }
}
