//! Queueing service centres.
//!
//! [`QueueingServer`] models a backend server as a FIFO queue drained by a
//! fixed pool of workers, with three knobs the paper's measurements hinge on:
//!
//! * **capacity** — `workers / service_time` bounds sustainable throughput
//!   (the saturation plateaus of Figs. 2–4 and 6);
//! * **contention degradation** — effective service time grows with queue
//!   depth, so throughput *declines* past saturation instead of levelling
//!   off (visible for Jini in Figs. 2–3);
//! * **memory budget** — each queued job holds buffer memory; exceeding the
//!   budget crashes the server, as the unbounded JGroups queues did in the
//!   paper's HDNS write test (Fig. 5). An optional restart delay brings the
//!   server back with an empty queue.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use crate::sched::Sim;

/// What happened to a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job was served to completion.
    Completed,
    /// The job was refused on arrival (bounded queue full, or server down).
    Rejected,
    /// The job was queued but the server crashed before finishing it.
    Crashed,
}

/// Server behaviour knobs. See the module docs for how each maps onto the
/// paper's observations.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Concurrent jobs in service.
    pub workers: usize,
    /// Maximum queued (not yet in service) jobs; `None` = unbounded.
    pub queue_limit: Option<usize>,
    /// Effective service time multiplier: `1 + degradation * queue_len`.
    pub degradation: f64,
    /// Bytes of buffer memory held per queued job.
    pub bytes_per_job: u64,
    /// Crash the server when queued bytes exceed this; `None` = never.
    pub memory_limit: Option<u64>,
    /// If set, a crashed server restarts (with an empty queue) after this
    /// delay; otherwise it stays down.
    pub restart_after: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            queue_limit: None,
            degradation: 0.0,
            bytes_per_job: 1024,
            memory_limit: None,
            restart_after: None,
        }
    }
}

type DoneFn = Box<dyn FnOnce(&Sim, JobOutcome)>;
type WorkFn = Box<dyn FnOnce(&Sim)>;

struct Job {
    service_time: Duration,
    work: Option<WorkFn>,
    done: DoneFn,
}

/// Aggregate counters, exposed for experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub completed: u64,
    pub rejected: u64,
    pub crashed_jobs: u64,
    pub crashes: u64,
}

struct Core {
    config: ServerConfig,
    queue: Vec<Job>,
    busy: usize,
    up: bool,
    /// Monotonic incarnation; jobs finishing from a previous incarnation
    /// (pre-crash) are ignored.
    epoch: u64,
    stats: ServerStats,
    /// When set, traced submissions report under this server label in the
    /// process-wide metrics registry and trace ring.
    obs_label: Option<String>,
}

/// A simulated queueing server. Cloneable handle.
#[derive(Clone)]
pub struct QueueingServer {
    sim: Sim,
    core: Rc<RefCell<Core>>,
}

impl QueueingServer {
    pub fn new(sim: &Sim, config: ServerConfig) -> Self {
        assert!(config.workers >= 1, "server needs at least one worker");
        QueueingServer {
            sim: sim.clone(),
            core: Rc::new(RefCell::new(Core {
                config,
                queue: Vec::new(),
                busy: 0,
                up: true,
                epoch: 0,
                stats: ServerStats::default(),
                obs_label: None,
            })),
        }
    }

    /// Name this server in the process-wide observability registry; traced
    /// submissions ([`QueueingServer::submit_traced`]) report under it.
    pub fn set_obs_label(&self, label: impl Into<String>) {
        self.core.borrow_mut().obs_label = Some(label.into());
    }

    /// Submit a job needing `service_time` of a worker. When the job finishes
    /// (or fails), `done` is invoked with the outcome.
    pub fn submit<F>(&self, service_time: Duration, done: F)
    where
        F: FnOnce(&Sim, JobOutcome) + 'static,
    {
        self.submit_with_work(service_time, |_| {}, done)
    }

    /// Like [`QueueingServer::submit`], but observable: the job is counted
    /// and its *virtual* sojourn time (queueing + service) recorded under
    /// the server's obs label, and when the submitter ships a trace context
    /// a `server`-layer span is linked into its trace.
    pub fn submit_traced<F>(
        &self,
        service_time: Duration,
        trace: Option<rndi_obs::TraceCtx>,
        done: F,
    ) where
        F: FnOnce(&Sim, JobOutcome) + 'static,
    {
        let label = self
            .core
            .borrow()
            .obs_label
            .clone()
            .unwrap_or_else(|| "simnet".to_string());
        let submitted_ns = self.sim.now().as_nanos();
        self.submit(service_time, move |sim, outcome| {
            use rndi_obs::metrics::names;
            let sojourn = Duration::from_nanos(sim.now().as_nanos().saturating_sub(submitted_ns));
            rndi_obs::metrics::counter(names::SERVER_OPS, &[("server", &label), ("op", "job")])
                .inc();
            rndi_obs::metrics::histogram(
                names::SERVER_DURATION,
                &[("server", &label), ("op", "job")],
            )
            .record_duration(sojourn);
            if let Some(ctx) = &trace {
                rndi_obs::trace::record(rndi_obs::SpanRecord::new(
                    &ctx.child(),
                    "server",
                    label.as_str(),
                    "job",
                    match outcome {
                        JobOutcome::Completed => rndi_obs::SpanOutcome::Ok,
                        JobOutcome::Rejected | JobOutcome::Crashed => rndi_obs::SpanOutcome::Err,
                    },
                    sojourn,
                ));
            }
            done(sim, outcome);
        });
    }

    /// The server's observability endpoint: a Prometheus-style text
    /// snapshot of the process-wide metrics registry (every simulated
    /// server shares the process, so each endpoint serves the same
    /// registry — exactly like scraping any one replica of a co-located
    /// deployment).
    pub fn obs_exposition(&self) -> String {
        rndi_obs::metrics::render()
    }

    /// Like [`QueueingServer::submit`], but runs `work` at service-completion
    /// time — this is where the benchmark harness executes the *real* backend
    /// operation whose virtual cost the job models.
    pub fn submit_with_work<W, F>(&self, service_time: Duration, work: W, done: F)
    where
        W: FnOnce(&Sim) + 'static,
        F: FnOnce(&Sim, JobOutcome) + 'static,
    {
        let job = Job {
            service_time,
            work: Some(Box::new(work)),
            done: Box::new(done),
        };
        let crash_now = {
            let mut core = self.core.borrow_mut();
            if !core.up {
                core.stats.rejected += 1;
                drop(core);
                (job.done)(&self.sim, JobOutcome::Rejected);
                return;
            }
            if let Some(limit) = core.config.queue_limit {
                if core.queue.len() >= limit {
                    core.stats.rejected += 1;
                    drop(core);
                    (job.done)(&self.sim, JobOutcome::Rejected);
                    return;
                }
            }
            core.queue.push(job);
            core.config
                .memory_limit
                .is_some_and(|limit| core.queue.len() as u64 * core.config.bytes_per_job > limit)
        };
        if crash_now {
            self.crash();
            return;
        }
        self.pump();
    }

    /// Start queued jobs while workers are free.
    fn pump(&self) {
        loop {
            let started = {
                let mut core = self.core.borrow_mut();
                if !core.up || core.busy >= core.config.workers || core.queue.is_empty() {
                    None
                } else {
                    let job = core.queue.remove(0);
                    core.busy += 1;
                    let factor = 1.0 + core.config.degradation * core.queue.len() as f64;
                    let effective =
                        Duration::from_nanos((job.service_time.as_nanos() as f64 * factor) as u64);
                    Some((job, effective, core.epoch))
                }
            };
            let Some((mut job, effective, epoch)) = started else {
                break;
            };
            let server = self.clone();
            self.sim.schedule(effective, move |sim| {
                let stale = {
                    let mut core = server.core.borrow_mut();
                    if core.epoch != epoch {
                        true
                    } else {
                        core.busy -= 1;
                        core.stats.completed += 1;
                        false
                    }
                };
                if !stale {
                    if let Some(work) = job.work.take() {
                        work(sim);
                    }
                    (job.done)(sim, JobOutcome::Completed);
                    server.pump();
                }
            });
        }
    }

    /// Crash the server: every queued job fails with [`JobOutcome::Crashed`],
    /// in-service jobs are abandoned, and — if configured — a restart is
    /// scheduled.
    pub fn crash(&self) {
        let (victims, restart_after) = {
            let mut core = self.core.borrow_mut();
            if !core.up {
                return;
            }
            core.up = false;
            core.epoch += 1;
            core.busy = 0;
            core.stats.crashes += 1;
            core.stats.crashed_jobs += core.queue.len() as u64;
            let victims: Vec<Job> = core.queue.drain(..).collect();
            (victims, core.config.restart_after)
        };
        for job in victims {
            (job.done)(&self.sim, JobOutcome::Crashed);
        }
        if let Some(delay) = restart_after {
            let server = self.clone();
            self.sim.schedule(delay, move |_| server.restart());
        }
    }

    /// Bring a crashed server back with an empty queue.
    pub fn restart(&self) {
        {
            let mut core = self.core.borrow_mut();
            if core.up {
                return;
            }
            core.up = true;
        }
        self.pump();
    }

    /// Whether the server is currently serving.
    pub fn is_up(&self) -> bool {
        self.core.borrow().up
    }

    /// Jobs waiting (excludes jobs in service).
    pub fn queue_len(&self) -> usize {
        self.core.borrow().queue.len()
    }

    /// Workers currently busy.
    pub fn busy(&self) -> usize {
        self.core.borrow().busy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.core.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    type OutcomeLog = Rc<RefCell<Vec<(SimTime, JobOutcome)>>>;

    fn outcomes() -> (OutcomeLog, impl Fn() -> DoneFn + Clone) {
        let log: Rc<RefCell<Vec<(SimTime, JobOutcome)>>> = Rc::default();
        let mk = {
            let log = log.clone();
            move || -> DoneFn {
                let log = log.clone();
                Box::new(move |sim: &Sim, out| log.borrow_mut().push((sim.now(), out)))
            }
        };
        (log, mk)
    }

    #[test]
    fn single_worker_serializes() {
        let sim = Sim::new();
        let srv = QueueingServer::new(&sim, ServerConfig::default());
        let (log, mk) = outcomes();
        for _ in 0..3 {
            let done = mk();
            srv.submit(Duration::from_millis(10), move |s, o| done(s, o));
        }
        sim.run();
        let log = log.borrow();
        let times: Vec<u64> = log.iter().map(|(t, _)| t.as_nanos() / 1_000_000).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert!(log.iter().all(|(_, o)| *o == JobOutcome::Completed));
    }

    #[test]
    fn multiple_workers_run_in_parallel() {
        let sim = Sim::new();
        let srv = QueueingServer::new(
            &sim,
            ServerConfig {
                workers: 3,
                ..Default::default()
            },
        );
        let (log, mk) = outcomes();
        for _ in 0..3 {
            let done = mk();
            srv.submit(Duration::from_millis(10), move |s, o| done(s, o));
        }
        sim.run();
        assert!(log
            .borrow()
            .iter()
            .all(|(t, _)| *t == SimTime::from_millis(10)));
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let sim = Sim::new();
        let srv = QueueingServer::new(
            &sim,
            ServerConfig {
                workers: 1,
                queue_limit: Some(1),
                ..Default::default()
            },
        );
        let (log, mk) = outcomes();
        for _ in 0..3 {
            let done = mk();
            srv.submit(Duration::from_millis(10), move |s, o| done(s, o));
        }
        // job0 in service, job1 queued, job2 rejected immediately.
        assert_eq!(srv.queue_len(), 1);
        sim.run();
        let outs: Vec<JobOutcome> = log.borrow().iter().map(|(_, o)| *o).collect();
        assert_eq!(outs[0], JobOutcome::Rejected);
        assert_eq!(
            outs[1..]
                .iter()
                .filter(|o| **o == JobOutcome::Completed)
                .count(),
            2
        );
    }

    #[test]
    fn memory_exhaustion_crashes_and_restarts() {
        let sim = Sim::new();
        let srv = QueueingServer::new(
            &sim,
            ServerConfig {
                workers: 1,
                bytes_per_job: 1000,
                memory_limit: Some(2500), // crashes at 3rd queued job
                restart_after: Some(Duration::from_millis(100)),
                ..Default::default()
            },
        );
        let (log, mk) = outcomes();
        for _ in 0..4 {
            let done = mk();
            srv.submit(Duration::from_secs(1), move |s, o| done(s, o));
        }
        assert!(!srv.is_up());
        sim.run_until(SimTime::from_millis(50));
        let crashed = log
            .borrow()
            .iter()
            .filter(|(_, o)| *o == JobOutcome::Crashed)
            .count();
        assert_eq!(crashed, 3, "queued jobs fail on crash");
        assert_eq!(srv.stats().crashes, 1);
        sim.run_until(SimTime::from_millis(200));
        assert!(srv.is_up(), "restarted after delay");
        // New work after restart completes.
        let done = mk();
        srv.submit(Duration::from_millis(10), move |s, o| done(s, o));
        sim.run();
        assert_eq!(
            log.borrow().last().map(|(_, o)| *o),
            Some(JobOutcome::Completed)
        );
    }

    #[test]
    fn in_service_job_is_abandoned_on_crash() {
        let sim = Sim::new();
        let srv = QueueingServer::new(&sim, ServerConfig::default());
        let (log, mk) = outcomes();
        let done = mk();
        srv.submit(Duration::from_secs(1), move |s, o| done(s, o));
        let s2 = srv.clone();
        sim.schedule(Duration::from_millis(100), move |_| s2.crash());
        sim.run();
        // The in-flight job never reports Completed; queue was empty so no
        // Crashed callbacks either.
        assert!(log.borrow().is_empty());
        assert_eq!(srv.stats().completed, 0);
    }

    #[test]
    fn degradation_slows_service_under_load() {
        let sim = Sim::new();
        let srv = QueueingServer::new(
            &sim,
            ServerConfig {
                degradation: 0.1,
                ..Default::default()
            },
        );
        let (log, mk) = outcomes();
        for _ in 0..3 {
            let done = mk();
            srv.submit(Duration::from_millis(100), move |s, o| done(s, o));
        }
        sim.run();
        // Job 0 starts on an empty queue (100 ms). Job 1 starts while job 2
        // still waits → 1.1×100 ms. Job 2 starts on an empty queue (100 ms).
        let times: Vec<u64> = log
            .borrow()
            .iter()
            .map(|(t, _)| t.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(times, vec![100, 210, 310]);
    }

    #[test]
    fn work_closure_runs_before_done() {
        let sim = Sim::new();
        let srv = QueueingServer::new(&sim, ServerConfig::default());
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (o1, o2) = (order.clone(), order.clone());
        srv.submit_with_work(
            Duration::from_millis(1),
            move |_| o1.borrow_mut().push("work"),
            move |_, _| o2.borrow_mut().push("done"),
        );
        sim.run();
        assert_eq!(*order.borrow(), vec!["work", "done"]);
    }

    #[test]
    fn traced_submit_reports_span_and_metrics() {
        let sim = Sim::new();
        let srv = QueueingServer::new(&sim, ServerConfig::default());
        srv.set_obs_label("obs-simnet-test");
        let ctx = rndi_obs::TraceCtx::root();
        srv.submit_traced(Duration::from_millis(5), Some(ctx), |_, _| {});
        sim.run();
        let spans = rndi_obs::trace::ring().snapshot();
        let span = spans
            .iter()
            .rev()
            .find(|s| &*s.provider == "obs-simnet-test")
            .expect("server span recorded");
        assert_eq!(span.layer, "server");
        assert_eq!(span.trace_id, ctx.trace_id);
        assert_eq!(span.parent_span, ctx.span_id, "span links to submitter");
        assert_eq!(span.duration_ns, 5_000_000, "virtual sojourn time");
        assert!(srv.obs_exposition().contains("rndi_server_ops_total"));
    }

    #[test]
    fn rejected_when_down_without_restart() {
        let sim = Sim::new();
        let srv = QueueingServer::new(&sim, ServerConfig::default());
        srv.crash();
        let (log, mk) = outcomes();
        let done = mk();
        srv.submit(Duration::from_millis(1), move |s, o| done(s, o));
        sim.run();
        assert_eq!(log.borrow()[0].1, JobOutcome::Rejected);
        assert!(!srv.is_up());
    }
}
