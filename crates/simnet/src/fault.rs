//! Failure injection utilities.
//!
//! [`MemoryBudget`] models a process heap limit: components account buffer
//! bytes against it, and when allocation fails the owner is expected to
//! crash. The paper traced the HDNS write-overload crash to exactly this —
//! "internal JGroups message queues … grow without bounds, eventually
//! causing memory exhaustion and server crash".
//!
//! [`FaultPlan`] schedules scripted crash/restart/partition events against
//! a [`Network`], which the HDNS recovery tests and examples use.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use crate::net::{Network, NodeId};
use crate::sched::Sim;

/// A shared memory budget (cheaply cloneable handle).
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    used: Rc<Cell<u64>>,
    limit: u64,
}

impl MemoryBudget {
    /// Create a budget with the given limit in bytes.
    pub fn new(limit: u64) -> Self {
        MemoryBudget {
            used: Rc::new(Cell::new(0)),
            limit,
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        MemoryBudget::new(u64::MAX)
    }

    /// Try to reserve `bytes`; `false` (with no reservation) when the limit
    /// would be exceeded.
    pub fn try_alloc(&self, bytes: u64) -> bool {
        let used = self.used.get();
        match used.checked_add(bytes) {
            Some(next) if next <= self.limit => {
                self.used.set(next);
                true
            }
            _ => false,
        }
    }

    /// Release previously reserved bytes (saturating).
    pub fn free(&self, bytes: u64) {
        self.used.set(self.used.get().saturating_sub(bytes));
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.get()
    }

    /// Configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Fraction of the budget in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.limit == 0 {
            1.0
        } else {
            self.used.get() as f64 / self.limit as f64
        }
    }
}

/// A scripted sequence of fault events against a simulated network.
pub struct FaultPlan {
    sim: Sim,
    net: Network,
}

impl FaultPlan {
    pub fn new(sim: &Sim, net: &Network) -> Self {
        FaultPlan {
            sim: sim.clone(),
            net: net.clone(),
        }
    }

    /// Crash `node` at `at` (relative to now).
    pub fn crash_at(&self, at: Duration, node: NodeId) -> &Self {
        let net = self.net.clone();
        self.sim.schedule(at, move |_| net.crash(node));
        self
    }

    /// Restart `node` at `at` (relative to now).
    pub fn restart_at(&self, at: Duration, node: NodeId) -> &Self {
        let net = self.net.clone();
        self.sim.schedule(at, move |_| net.restart(node));
        self
    }

    /// Partition the network into the given groups at `at`.
    pub fn partition_at(&self, at: Duration, groups: Vec<Vec<NodeId>>) -> &Self {
        let net = self.net.clone();
        self.sim.schedule(at, move |_| {
            let views: Vec<&[NodeId]> = groups.iter().map(|g| g.as_slice()).collect();
            net.partition(&views);
        });
        self
    }

    /// Heal all partitions at `at`.
    pub fn heal_at(&self, at: Duration) -> &Self {
        let net = self.net.clone();
        self.sim.schedule(at, move |_| net.heal());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkSpec;
    use crate::rng::SimRng;
    use crate::time::SimTime;

    #[test]
    fn budget_accounting() {
        let b = MemoryBudget::new(100);
        assert!(b.try_alloc(60));
        assert!(b.try_alloc(40));
        assert_eq!(b.used(), 100);
        assert!(!b.try_alloc(1), "over limit refused");
        assert_eq!(b.used(), 100, "failed alloc reserves nothing");
        b.free(50);
        assert!(b.try_alloc(30));
        assert_eq!(b.utilization(), 0.8);
    }

    #[test]
    fn budget_free_saturates() {
        let b = MemoryBudget::new(10);
        b.free(100);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = MemoryBudget::new(10);
        let b = a.clone();
        assert!(a.try_alloc(10));
        assert!(!b.try_alloc(1));
    }

    #[test]
    fn fault_plan_executes_script() {
        let sim = Sim::new();
        let net = Network::new(&sim, SimRng::seed_from_u64(0), LinkSpec::lan());
        let a = net.add_node();
        let b = net.add_node();
        let plan = FaultPlan::new(&sim, &net);
        plan.crash_at(Duration::from_secs(1), a)
            .restart_at(Duration::from_secs(2), a)
            .partition_at(Duration::from_secs(3), vec![vec![a], vec![b]])
            .heal_at(Duration::from_secs(4));

        sim.run_until(SimTime::from_millis(1500));
        assert!(!net.is_alive(a));
        sim.run_until(SimTime::from_millis(2500));
        assert!(net.is_alive(a));
        assert!(net.reachable(a, b));
        sim.run_until(SimTime::from_millis(3500));
        assert!(!net.reachable(a, b));
        sim.run_until(SimTime::from_millis(4500));
        assert!(net.reachable(a, b));
    }
}
