//! Simulated network: nodes, links, partitions, message delivery.
//!
//! A [`Network`] owns a set of nodes. Components register a packet handler
//! per `(node, port)` pair; [`Network::send`] then schedules delivery after
//! the link latency (plus jitter), subject to loss probability, node
//! liveness, and the current partition map.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use crate::rng::SimRng;
use crate::sched::Sim;
use crate::time::SimTime;

/// Identifies a simulated host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Link quality parameters between a pair of nodes.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// One-way propagation + switching latency.
    pub latency: Duration,
    /// Uniform jitter applied to `latency` as a `±fraction`.
    pub jitter: f64,
    /// Probability that any single packet is silently dropped.
    pub loss: f64,
}

impl LinkSpec {
    /// A LAN-like link: 100 µs one-way, 10% jitter, lossless — matching the
    /// paper's Gigabit Ethernet testbed.
    pub fn lan() -> Self {
        LinkSpec {
            latency: Duration::from_micros(100),
            jitter: 0.1,
            loss: 0.0,
        }
    }

    /// A lossy variant of [`LinkSpec::lan`] for failure-injection tests.
    pub fn lossy(loss: f64) -> Self {
        LinkSpec {
            loss,
            ..LinkSpec::lan()
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

/// A message in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    pub src: NodeId,
    pub dst: NodeId,
    /// Multiplexing key — analogous to a UDP port.
    pub port: u16,
    pub bytes: Vec<u8>,
    /// Virtual instant the packet was sent.
    pub sent_at: SimTime,
}

type Handler = Rc<RefCell<dyn FnMut(&Sim, Packet)>>;

struct NodeState {
    alive: bool,
    /// Partition group; nodes with differing groups cannot communicate.
    group: u32,
    handlers: HashMap<u16, Handler>,
}

#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
/// Delivery counters, for assertions in tests and experiment reports.
pub struct NetStats {
    pub sent: u64,
    pub delivered: u64,
    pub dropped_loss: u64,
    pub dropped_partition: u64,
    pub dropped_dead: u64,
}

struct Core {
    nodes: HashMap<NodeId, NodeState>,
    default_link: LinkSpec,
    links: HashMap<(NodeId, NodeId), LinkSpec>,
    stats: NetStats,
}

/// The simulated network fabric (cheaply cloneable handle).
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    rng: SimRng,
    core: Rc<RefCell<Core>>,
}

impl Network {
    /// Create a network with the given default link quality.
    pub fn new(sim: &Sim, rng: SimRng, default_link: LinkSpec) -> Self {
        Network {
            sim: sim.clone(),
            rng,
            core: Rc::new(RefCell::new(Core {
                nodes: HashMap::new(),
                default_link,
                links: HashMap::new(),
                stats: NetStats::default(),
            })),
        }
    }

    /// Add a node (initially alive, in partition group 0). Returns its id.
    pub fn add_node(&self) -> NodeId {
        let mut core = self.core.borrow_mut();
        let id = NodeId(core.nodes.len() as u32);
        core.nodes.insert(
            id,
            NodeState {
                alive: true,
                group: 0,
                handlers: HashMap::new(),
            },
        );
        id
    }

    /// Override the link spec for the ordered pair `(src, dst)`.
    pub fn set_link(&self, src: NodeId, dst: NodeId, spec: LinkSpec) {
        self.core.borrow_mut().links.insert((src, dst), spec);
    }

    /// Register the packet handler for `(node, port)`, replacing any
    /// previous handler on that port.
    pub fn bind<F>(&self, node: NodeId, port: u16, handler: F)
    where
        F: FnMut(&Sim, Packet) + 'static,
    {
        let mut core = self.core.borrow_mut();
        let st = core.nodes.get_mut(&node).expect("unknown node");
        st.handlers.insert(port, Rc::new(RefCell::new(handler)));
    }

    /// Remove the handler for `(node, port)`.
    pub fn unbind(&self, node: NodeId, port: u16) {
        if let Some(st) = self.core.borrow_mut().nodes.get_mut(&node) {
            st.handlers.remove(&port);
        }
    }

    /// Whether the node is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.borrow().nodes.get(&node).is_some_and(|n| n.alive)
    }

    /// Crash a node: it stops receiving packets until restarted. Handlers
    /// stay registered so a restart resumes delivery.
    pub fn crash(&self, node: NodeId) {
        if let Some(st) = self.core.borrow_mut().nodes.get_mut(&node) {
            st.alive = false;
        }
    }

    /// Restart a previously crashed node.
    pub fn restart(&self, node: NodeId) {
        if let Some(st) = self.core.borrow_mut().nodes.get_mut(&node) {
            st.alive = true;
        }
    }

    /// Split the network: every listed node is moved into its own named
    /// partition group; unlisted nodes stay in group 0. Packets only flow
    /// within a group.
    pub fn partition(&self, groups: &[&[NodeId]]) {
        let mut core = self.core.borrow_mut();
        for st in core.nodes.values_mut() {
            st.group = 0;
        }
        for (i, members) in groups.iter().enumerate() {
            for node in *members {
                if let Some(st) = core.nodes.get_mut(node) {
                    st.group = (i + 1) as u32;
                }
            }
        }
    }

    /// Heal all partitions (everyone back in group 0).
    pub fn heal(&self) {
        let mut core = self.core.borrow_mut();
        for st in core.nodes.values_mut() {
            st.group = 0;
        }
    }

    /// True when `a` and `b` are both alive and in the same partition group.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        let core = self.core.borrow();
        match (core.nodes.get(&a), core.nodes.get(&b)) {
            (Some(x), Some(y)) => x.alive && y.alive && x.group == y.group,
            _ => false,
        }
    }

    /// Send a packet. Delivery is scheduled after the link latency; the
    /// packet is dropped on loss, on partition, or if either endpoint is dead
    /// at send or delivery time.
    pub fn send(&self, src: NodeId, dst: NodeId, port: u16, bytes: Vec<u8>) {
        let spec = {
            let mut core = self.core.borrow_mut();
            core.stats.sent += 1;
            let src_ok = core.nodes.get(&src).is_some_and(|n| n.alive);
            if !src_ok {
                core.stats.dropped_dead += 1;
                return;
            }
            core.links
                .get(&(src, dst))
                .copied()
                .unwrap_or(core.default_link)
        };
        if self.rng.chance(spec.loss) {
            self.core.borrow_mut().stats.dropped_loss += 1;
            return;
        }
        let delay = self.rng.jittered(spec.latency, spec.jitter);
        let net = self.clone();
        let packet = Packet {
            src,
            dst,
            port,
            bytes,
            sent_at: self.sim.now(),
        };
        self.sim
            .schedule(delay, move |sim| net.deliver(sim, packet));
    }

    /// Send the same payload to several destinations (unreliable multicast).
    pub fn multicast(&self, src: NodeId, dests: &[NodeId], port: u16, bytes: &[u8]) {
        for &dst in dests {
            if dst != src {
                self.send(src, dst, port, bytes.to_vec());
            }
        }
    }

    fn deliver(&self, sim: &Sim, packet: Packet) {
        let handler = {
            let mut core = self.core.borrow_mut();
            let reachable = match (core.nodes.get(&packet.src), core.nodes.get(&packet.dst)) {
                (Some(x), Some(y)) => x.alive && y.alive && x.group == y.group,
                _ => false,
            };
            if !reachable {
                let dst_alive = core.nodes.get(&packet.dst).is_some_and(|n| n.alive);
                if dst_alive {
                    core.stats.dropped_partition += 1;
                } else {
                    core.stats.dropped_dead += 1;
                }
                return;
            }
            let handler = core
                .nodes
                .get(&packet.dst)
                .and_then(|n| n.handlers.get(&packet.port))
                .cloned();
            match handler {
                Some(h) => {
                    core.stats.delivered += 1;
                    h
                }
                None => return,
            }
        };
        (handler.borrow_mut())(sim, packet);
    }

    /// Snapshot of the delivery counters.
    pub fn stats(&self) -> NetStats {
        self.core.borrow().stats
    }

    /// The simulation this network is attached to.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup() -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new();
        let net = Network::new(&sim, SimRng::seed_from_u64(1), LinkSpec::lan());
        let a = net.add_node();
        let b = net.add_node();
        (sim, net, a, b)
    }

    type Received = Rc<RefCell<Vec<(SimTime, Vec<u8>)>>>;

    #[test]
    fn packet_arrives_with_latency() {
        let (sim, net, a, b) = setup();
        let got: Received = Rc::default();
        let g = got.clone();
        net.bind(b, 9, move |sim, pkt| {
            g.borrow_mut().push((sim.now(), pkt.bytes));
        });
        net.send(a, b, 9, vec![1, 2, 3]);
        sim.run();
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, vec![1, 2, 3]);
        // latency 100µs ±10%
        let ns = got[0].0.as_nanos();
        assert!((90_000..=110_000).contains(&ns), "latency {ns}ns");
    }

    #[test]
    fn dead_destination_drops() {
        let (sim, net, a, b) = setup();
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        net.bind(b, 9, move |_, _| *h.borrow_mut() += 1);
        net.crash(b);
        net.send(a, b, 9, vec![]);
        sim.run();
        assert_eq!(*hits.borrow(), 0);
        assert_eq!(net.stats().dropped_dead, 1);
    }

    #[test]
    fn crash_mid_flight_drops_then_restart_delivers() {
        let (sim, net, a, b) = setup();
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        net.bind(b, 9, move |_, _| *h.borrow_mut() += 1);
        // Packet in flight when dst crashes.
        net.send(a, b, 9, vec![]);
        net.crash(b);
        sim.run();
        assert_eq!(*hits.borrow(), 0);
        net.restart(b);
        net.send(a, b, 9, vec![]);
        sim.run();
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (sim, net, a, b) = setup();
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        net.bind(b, 9, move |_, _| *h.borrow_mut() += 1);
        net.partition(&[&[a], &[b]]);
        assert!(!net.reachable(a, b));
        net.send(a, b, 9, vec![]);
        sim.run();
        assert_eq!(*hits.borrow(), 0);
        assert_eq!(net.stats().dropped_partition, 1);
        net.heal();
        assert!(net.reachable(a, b));
        net.send(a, b, 9, vec![]);
        sim.run();
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn lossy_link_drops_a_fraction() {
        let sim = Sim::new();
        let net = Network::new(&sim, SimRng::seed_from_u64(2), LinkSpec::lossy(0.5));
        let a = net.add_node();
        let b = net.add_node();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        net.bind(b, 1, move |_, _| *h.borrow_mut() += 1);
        for _ in 0..400 {
            net.send(a, b, 1, vec![]);
        }
        sim.run();
        let n = *hits.borrow();
        assert!((120..=280).contains(&n), "delivered {n}/400 at 50% loss");
    }

    #[test]
    fn multicast_skips_self() {
        let (sim, net, a, b) = setup();
        let c = net.add_node();
        let hits = Rc::new(RefCell::new(Vec::new()));
        for node in [a, b, c] {
            let h = hits.clone();
            net.bind(node, 7, move |_, pkt| h.borrow_mut().push(pkt.dst));
        }
        net.multicast(a, &[a, b, c], 7, b"x");
        sim.run();
        let mut got = hits.borrow().clone();
        got.sort();
        assert_eq!(got, vec![b, c]);
    }

    #[test]
    fn per_link_override_applies() {
        let (sim, net, a, b) = setup();
        net.set_link(
            a,
            b,
            LinkSpec {
                latency: Duration::from_millis(5),
                jitter: 0.0,
                loss: 0.0,
            },
        );
        let t: Rc<RefCell<Option<SimTime>>> = Rc::default();
        let tc = t.clone();
        net.bind(b, 9, move |sim, _| *tc.borrow_mut() = Some(sim.now()));
        net.send(a, b, 9, vec![]);
        sim.run();
        assert_eq!(t.borrow().unwrap(), SimTime::from_millis(5));
    }
}
