//! Deterministic randomness for simulations.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// A seeded RNG handle shared by simulation components.
///
/// Clones share the underlying stream, so a single seed fixes the entire
/// run. Components that need independent streams should call
/// [`SimRng::fork`], which derives a child seeded from the parent — forked
/// streams stay deterministic but are insensitive to each other's draw
/// counts.
#[derive(Clone)]
pub struct SimRng {
    inner: Rc<RefCell<ChaCha12Rng>>,
}

impl SimRng {
    /// Create from an explicit 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: Rc::new(RefCell::new(ChaCha12Rng::seed_from_u64(seed))),
        }
    }

    /// Derive an independent child stream.
    pub fn fork(&self) -> SimRng {
        let seed = self.inner.borrow_mut().next_u64();
        SimRng::seed_from_u64(seed)
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    pub fn gen_range<T, R>(&self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.borrow_mut().gen_range(range)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&self) -> f64 {
        self.inner.borrow_mut().gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for service-time and inter-arrival jitter; the discrete-event
    /// server models draw from this to avoid artificial phase lock between
    /// closed-loop clients.
    pub fn exp_duration(&self, mean: Duration) -> Duration {
        let u: f64 = self.gen_f64().max(1e-12);
        let scale = -u.ln();
        Duration::from_nanos((mean.as_nanos() as f64 * scale) as u64)
    }

    /// Duration uniformly jittered by `±fraction` around `base`.
    pub fn jittered(&self, base: Duration, fraction: f64) -> Duration {
        let f = fraction.clamp(0.0, 1.0);
        let lo = 1.0 - f;
        let hi = 1.0 + f;
        let scale = self.gen_range(lo..hi.max(lo + f64::EPSILON));
        Duration::from_nanos((base.as_nanos() as f64 * scale) as u64)
    }

    /// Choose a uniformly random element of a slice; `None` if empty.
    pub fn choose<'a, T>(&self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(0..items.len())])
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SimRng::seed_from_u64(7);
        let b = SimRng::seed_from_u64(7);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0..1000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn forks_are_independent_of_parent_draws() {
        let a = SimRng::seed_from_u64(7);
        let fork1 = a.fork();
        let v1: Vec<u32> = (0..8).map(|_| fork1.gen_range(0..1000)).collect();

        let b = SimRng::seed_from_u64(7);
        let fork2 = b.fork();
        // Draw from parent b *after* forking: fork stream unaffected.
        let _ = b.gen_f64();
        let v2: Vec<u32> = (0..8).map(|_| fork2.gen_range(0..1000)).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn chance_extremes() {
        let rng = SimRng::seed_from_u64(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exp_duration_mean_is_plausible() {
        let rng = SimRng::seed_from_u64(42);
        let mean = Duration::from_millis(10);
        let n = 4000;
        let total: u128 = (0..n).map(|_| rng.exp_duration(mean).as_nanos()).sum();
        let avg_ms = total as f64 / n as f64 / 1e6;
        assert!((8.0..12.0).contains(&avg_ms), "avg {avg_ms} ms");
    }

    #[test]
    fn jitter_stays_in_band() {
        let rng = SimRng::seed_from_u64(3);
        let base = Duration::from_millis(100);
        for _ in 0..200 {
            let d = rng.jittered(base, 0.2).as_millis();
            assert!((80..=120).contains(&d), "jittered {d}");
        }
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let rng = SimRng::seed_from_u64(5);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[9u8]), Some(&9));
    }
}
