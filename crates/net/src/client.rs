//! `NetClient`: a [`ProviderBackend`] whose backing service is a remote
//! [`NetServer`](crate::server::NetServer).
//!
//! Because the client is *itself* a backend, the whole existing pipeline
//! stack — cache, retry, stats, obs — composes over it unchanged:
//! [`NetClient::connect`] returns a standard
//! [`ProviderPipeline`](rndi_core::spi::ProviderPipeline) whose innermost
//! layer speaks TCP. Transport failures map to transient
//! [`NamingError::ServiceFailure`]/[`NamingError::Timeout`] errors, which
//! is exactly what the retry interceptor re-submits, so
//! `rndi.pipeline.retry.max-attempts=3` buys reconnect-on-drop for free.

use std::io::ErrorKind;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::name::CompoundSyntax;
use rndi_core::op::{NamingOp, OpOutcome};
use rndi_core::spi::{ProviderBackend, ProviderPipeline, UrlContextFactory};
use rndi_core::url::RndiUrl;
use rndi_obs::metrics::{self, names};
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

use crate::proto::{self, Request, Response};

/// Resolved client configuration (see the `rndi.net.*` environment keys).
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-request deadline budget in milliseconds; `0` disables. Also
    /// used as the socket read/write timeout.
    pub deadline_ms: u64,
    /// Idle pooled connections kept per endpoint.
    pub pool_size: usize,
    /// Ping pooled connections before reuse.
    pub health_check: bool,
}

impl ClientConfig {
    /// Read the `rndi.net.*` keys strictly: a present-but-unparsable value
    /// is a [`NamingError::ConfigurationError`], not a silent default.
    pub fn from_env(env: &Environment) -> Result<ClientConfig> {
        Ok(ClientConfig {
            deadline_ms: env.try_get_u64(keys::NET_DEADLINE_MS, 5_000)?,
            pool_size: env.try_get_u64(keys::NET_CLIENT_POOL_SIZE, 4)? as usize,
            health_check: env.try_get_bool(keys::NET_CLIENT_HEALTH_CHECK, true)?,
        })
    }
}

/// A pooled TCP client for one server endpoint.
pub struct NetClient {
    endpoint: String,
    config: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    label: String,
}

/// A connection checked out of the pool, remembering whether it was
/// reused — a send failure on a *reused* connection is redialed once
/// transparently (the server may simply have dropped an idle socket).
struct Checked {
    stream: TcpStream,
    reused: bool,
}

impl NetClient {
    /// A bare client backend for `endpoint` (`host:port`).
    pub fn new(endpoint: impl Into<String>, env: &Environment) -> Result<NetClient> {
        let endpoint = endpoint.into();
        let label = format!("net-client:{endpoint}");
        Ok(NetClient {
            config: ClientConfig::from_env(env)?,
            pool: Mutex::new(Vec::new()),
            endpoint,
            label,
        })
    }

    /// The standard composition: this client wrapped in the standard
    /// interceptor stack, so caching/retry/obs apply to remote calls
    /// exactly as they do to in-process backends.
    pub fn connect(
        endpoint: impl Into<String>,
        env: &Environment,
    ) -> Result<Arc<ProviderPipeline<NetClient>>> {
        let client = Arc::new(NetClient::new(endpoint, env)?);
        Ok(ProviderPipeline::standard(client, env))
    }

    /// The endpoint this client dials.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Idle pooled connections right now (diagnostics, tests).
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }

    fn event(&self, event: &str) {
        metrics::counter(
            names::NET_CLIENT_EVENTS,
            &[("endpoint", &self.endpoint), ("event", event)],
        )
        .inc();
    }

    fn timeout(&self) -> Option<Duration> {
        (self.config.deadline_ms > 0).then(|| Duration::from_millis(self.config.deadline_ms))
    }

    fn dial(&self) -> Result<TcpStream> {
        let stream = match self.timeout() {
            Some(budget) => {
                let addr = self.endpoint.parse().map_err(|e| {
                    NamingError::service(format!("endpoint {}: {e}", self.endpoint))
                })?;
                TcpStream::connect_timeout(&addr, budget)
            }
            None => TcpStream::connect(&self.endpoint),
        }
        .map_err(|e| io_error(&self.endpoint, "connect", e))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.timeout());
        let _ = stream.set_write_timeout(self.timeout());
        Ok(stream)
    }

    /// Round-trip a ping on a pooled connection; `false` means the socket
    /// is stale and should be dropped.
    fn healthy(&self, stream: &mut TcpStream) -> bool {
        let Ok(ping) = proto::encode_message(&Request::Ping) else {
            return false;
        };
        if proto::write_frame(stream, &ping).is_err() {
            return false;
        }
        match proto::read_frame(stream) {
            Ok(frame) => matches!(
                proto::decode_response(rndi_obs::frame::strip(&frame).1),
                Ok(Response::Pong)
            ),
            Err(_) => false,
        }
    }

    fn checkout(&self) -> Result<Checked> {
        while let Some(mut stream) = self.pool.lock().pop() {
            if self.config.health_check {
                if !self.healthy(&mut stream) {
                    self.event("health_fail");
                    continue;
                }
                self.event("health_ok");
            }
            self.event("reuse");
            return Ok(Checked {
                stream,
                reused: true,
            });
        }
        self.event("dial");
        Ok(Checked {
            stream: self.dial()?,
            reused: false,
        })
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.config.pool_size {
            pool.push(stream);
        } else {
            self.event("drop");
        }
    }

    /// One request/response exchange on one connection.
    fn exchange(&self, stream: &mut TcpStream, request_bytes: &[u8]) -> Result<Response> {
        proto::write_frame(stream, request_bytes)
            .map_err(|e| io_error(&self.endpoint, "send", e))?;
        metrics::counter(names::NET_BYTES, &[("server", &self.label), ("dir", "out")])
            .add((request_bytes.len() + 4) as u64);
        let frame =
            proto::read_frame(stream).map_err(|e| io_error(&self.endpoint, "receive", e))?;
        metrics::counter(names::NET_BYTES, &[("server", &self.label), ("dir", "in")])
            .add((frame.len() + 4) as u64);
        proto::decode_response(rndi_obs::frame::strip(&frame).1)
    }

    fn call(&self, op: &NamingOp, ctx: &TraceCtx) -> Result<OpOutcome> {
        // The op already carries the client span's context in its meta (we
        // re-annotated before this call); additionally wrap the payload in
        // the transport-level trace header for cross-wire linking.
        let wire_op = proto::encode_op(op)?;
        let request = Request::Call {
            v: proto::PROTOCOL_VERSION,
            op: Box::new(wire_op),
            deadline_ms: self.config.deadline_ms,
        };
        let bytes = proto::encode_message(&request)?;
        let framed = rndi_obs::frame::wrap(ctx, &bytes);

        let mut checked = self.checkout()?;
        let response = match self.exchange(&mut checked.stream, &framed) {
            Ok(resp) => resp,
            Err(first) => {
                // A reused socket may have been dropped server-side while
                // idle; redial once before surfacing the failure.
                if !checked.reused {
                    return Err(first);
                }
                self.event("redial");
                let mut fresh = self.dial()?;
                let resp = self.exchange(&mut fresh, &framed)?;
                checked.stream = fresh;
                resp
            }
        };
        match response {
            Response::Ok(out) => {
                self.checkin(checked.stream);
                proto::decode_outcome(&out)
            }
            Response::Err(e) => {
                self.checkin(checked.stream);
                Err(proto::decode_error(&e))
            }
            Response::Pong => Err(NamingError::service("unexpected pong response")),
        }
    }
}

/// Map transport errors onto the naming error model: timeouts stay
/// timeouts, everything else is a (transient, hence retryable)
/// service failure.
fn io_error(endpoint: &str, stage: &str, e: std::io::Error) -> NamingError {
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        NamingError::Timeout {
            detail: format!("{stage} {endpoint}: {e}"),
        }
    } else {
        NamingError::service(format!("{stage} {endpoint}: {e}"))
    }
}

impl ProviderBackend for NetClient {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        let ctx = match op.trace_ctx() {
            Some(parent) => parent.child(),
            None => TraceCtx::root(),
        };
        let mut annotated = op.clone();
        annotated.set_trace_ctx(&ctx);
        let start = Instant::now();
        let result = self.call(&annotated, &ctx);
        let outcome = match &result {
            Ok(_) => SpanOutcome::Ok,
            Err(e) if e.is_continue() => SpanOutcome::Continue,
            Err(_) => SpanOutcome::Err,
        };
        rndi_obs::trace::record(SpanRecord::new(
            &ctx,
            "client",
            &self.label,
            op.kind.label(),
            outcome,
            start.elapsed(),
        ));
        result
    }

    fn provider_id(&self) -> String {
        self.label.clone()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }
}

/// URL factory for `rtcp://host:port` — lets `InitialContext` federation
/// mount remote servers like any other provider scheme.
pub struct NetClientFactory {
    env: Environment,
}

impl NetClientFactory {
    pub fn new(env: Environment) -> Self {
        NetClientFactory { env }
    }
}

impl UrlContextFactory for NetClientFactory {
    fn scheme(&self) -> &str {
        "rtcp"
    }

    fn create(
        &self,
        url: &RndiUrl,
        env: &Environment,
    ) -> Result<Arc<dyn rndi_core::context::DirContext>> {
        let port = url.port.ok_or_else(|| NamingError::ConfigurationError {
            detail: format!("rtcp URL needs an explicit port: {url:?}"),
        })?;
        let endpoint = format!("{}:{port}", url.host);
        let merged = if env.is_empty() { &self.env } else { env };
        Ok(NetClient::connect(endpoint, merged)? as Arc<dyn rndi_core::context::DirContext>)
    }
}
