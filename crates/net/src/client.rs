//! `NetClient`: a [`ProviderBackend`] whose backing service is a remote
//! [`NetServer`](crate::server::NetServer).
//!
//! Because the client is *itself* a backend, the whole existing pipeline
//! stack — cache, retry, stats, obs — composes over it unchanged:
//! [`NetClient::connect`] returns a standard
//! [`ProviderPipeline`](rndi_core::spi::ProviderPipeline) whose innermost
//! layer speaks TCP. Transport failures map to transient
//! [`NamingError::ServiceFailure`]/[`NamingError::Timeout`] errors, which
//! is exactly what the retry interceptor re-submits, so
//! `rndi.pipeline.retry.max-attempts=3` buys reconnect-on-drop for free.
//!
//! ## v2: multiplexed, pipelined connections
//!
//! With `rndi.net.proto.version=2` (the default) the client speaks the
//! binary envelope protocol and **multiplexes** concurrent calls over a
//! small pool of connections instead of checking out one socket per
//! request. Each call stamps its envelope with a fresh request ID,
//! registers a response slot, and writes under a brief send lock; the
//! response side uses a *caller-as-driver* scheme — whichever caller can
//! take the read lock drives the socket, delivering responses to their
//! owners' slots by request ID, and hands the read baton to another
//! waiter when its own answer arrives. The serial case therefore never
//! pays a cross-thread handoff (the one caller writes, then immediately
//! reads its own reply), while N concurrent callers share one socket with
//! requests pipelined back-to-back up to
//! `rndi.net.client.pipeline-depth` in flight per connection.
//!
//! `rndi.net.proto.version=1` keeps the lock-step framed-JSON path —
//! one request per round trip on a checked-out pooled socket — which
//! every server still accepts as the negotiated fallback.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::name::CompoundSyntax;
use rndi_core::op::{NamingOp, OpOutcome};
use rndi_core::spi::{ProviderBackend, ProviderPipeline, UrlContextFactory};
use rndi_core::url::RndiUrl;
use rndi_obs::metrics::{self, names};
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

use crate::conn::{ClientConn, ClientDecoder, ClientEncoder};
use crate::proto::{self, AdminReply, AdminRequest, Envelope, EnvelopeBody, Request, Response};

/// Resolved client configuration (see the `rndi.net.*` environment keys).
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-request deadline budget in milliseconds; `0` disables. Also
    /// used as the socket read/write timeout.
    pub deadline_ms: u64,
    /// Idle pooled connections kept per endpoint (v1), or maximum
    /// multiplexed connections (v2).
    pub pool_size: usize,
    /// Ping pooled connections before reuse (v1 only; v2 connections
    /// prove liveness per call and are redialed on failure).
    pub health_check: bool,
    /// Wire protocol to speak: 2 = binary envelopes, multiplexed;
    /// 1 = lock-step framed JSON.
    pub proto_version: u32,
    /// Maximum in-flight requests per v2 connection before the pool
    /// prefers dialing another.
    pub pipeline_depth: usize,
    /// Hard cap on total pooled connections, redials included. Resolved
    /// at parse time: the `0 = pool-size` default is already applied.
    pub max_pool: usize,
    /// Idle milliseconds before a pooled connection is evicted; `0`
    /// disables idle eviction.
    pub idle_ms: u64,
}

impl ClientConfig {
    /// Read the `rndi.net.*` keys strictly: a present-but-unparsable value
    /// is a [`NamingError::ConfigurationError`], not a silent default.
    pub fn from_env(env: &Environment) -> Result<ClientConfig> {
        let proto_version = env.try_get_u64(keys::NET_PROTO_VERSION, 2)? as u32;
        if proto_version != proto::PROTOCOL_V1 && proto_version != proto::PROTOCOL_V2 {
            return Err(NamingError::ConfigurationError {
                detail: format!(
                    "{}: unknown protocol version {proto_version} (valid: 1, 2)",
                    keys::NET_PROTO_VERSION
                ),
            });
        }
        let pool_size = (env.try_get_u64(keys::NET_CLIENT_POOL_SIZE, 4)? as usize).max(1);
        let max_pool = match env.try_get_u64(keys::NET_CLIENT_MAX_POOL, 0)? as usize {
            0 => pool_size,
            n => n,
        };
        Ok(ClientConfig {
            deadline_ms: env.try_get_u64(keys::NET_DEADLINE_MS, 5_000)?,
            pool_size,
            health_check: env.try_get_bool(keys::NET_CLIENT_HEALTH_CHECK, true)?,
            proto_version,
            pipeline_depth: (env.try_get_u64(keys::NET_CLIENT_PIPELINE_DEPTH, 32)? as usize).max(1),
            max_pool,
            idle_ms: env.try_get_u64(keys::NET_CLIENT_IDLE_MS, 30_000)?,
        })
    }

    /// Steady-state pooled connections to keep: the pool-size target,
    /// never above the hard cap.
    fn keep(&self) -> usize {
        self.pool_size.min(self.max_pool)
    }
}

/// What a response-driving caller delivers to a waiting caller's slot.
enum Delivery {
    /// Your response body.
    Body(EnvelopeBody),
    /// The previous driver is done; a waiter must take over the read side.
    TakeOver,
    /// The connection failed; all in-flight requests are lost.
    Broken(String),
}

struct MuxWriter {
    enc: ClientEncoder,
    stream: TcpStream,
}

struct MuxReader {
    dec: ClientDecoder,
    stream: TcpStream,
    scratch: Vec<u8>,
}

/// One multiplexed v2 connection: many in-flight request IDs over one
/// socket. Send and receive halves lock independently; `pending` maps
/// request IDs to the channel of the caller awaiting that response.
struct MuxConn {
    writer: Mutex<MuxWriter>,
    reader: Mutex<MuxReader>,
    pending: Mutex<HashMap<u64, SyncSender<Delivery>>>,
    broken: AtomicBool,
    /// Milliseconds since the owning client's epoch at last checkout —
    /// the idle-eviction clock.
    last_used: AtomicU64,
}

impl MuxConn {
    fn inflight(&self) -> usize {
        self.pending.lock().len()
    }

    fn touch(&self, now_ms: u64) {
        self.last_used.store(now_ms, Ordering::Relaxed);
    }

    fn idle_for(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.last_used.load(Ordering::Relaxed))
    }

    /// Mark the connection dead and fail every in-flight request.
    fn fail(&self, detail: &str) {
        self.broken.store(true, Ordering::SeqCst);
        let waiters: Vec<_> = self.pending.lock().drain().collect();
        for (_, tx) in waiters {
            let _ = tx.try_send(Delivery::Broken(detail.to_string()));
        }
    }

    /// Hand the read baton to some waiting caller, if any.
    fn wake_someone(&self) {
        let pending = self.pending.lock();
        for tx in pending.values() {
            match tx.try_send(Delivery::TakeOver) {
                Ok(()) => return,
                // Full means that waiter already has a wakeup queued.
                Err(TrySendError::Full(_)) => return,
                // Disconnected: that caller gave up (timeout); try another.
                Err(TrySendError::Disconnected(_)) => continue,
            }
        }
    }
}

/// A pooled TCP client for one server endpoint.
pub struct NetClient {
    endpoint: String,
    config: ClientConfig,
    /// v1: idle checked-in sockets, stamped with their checkin time.
    pool: Mutex<Vec<(TcpStream, Instant)>>,
    /// v2: live multiplexed connections, shared by all callers.
    mux_pool: Mutex<Vec<Arc<MuxConn>>>,
    label: Arc<str>,
    /// Zero point of the pool's idle clock.
    epoch: Instant,
    /// Instrument handles resolved once at construction — a registry
    /// lookup allocates label strings under a global lock, which is too
    /// expensive per request.
    bytes_out: Arc<metrics::Counter>,
    bytes_in: Arc<metrics::Counter>,
    events: Vec<(&'static str, Arc<metrics::Counter>)>,
    pool_gauge: Arc<metrics::Gauge>,
    evicted_idle: Arc<metrics::Counter>,
    evicted_cap: Arc<metrics::Counter>,
}

/// A v1 connection checked out of the pool, remembering whether it was
/// reused — a send failure on a *reused* connection is redialed once
/// transparently (the server may simply have dropped an idle socket).
struct Checked {
    stream: TcpStream,
    reused: bool,
}

impl NetClient {
    /// A bare client backend for `endpoint` (`host:port`).
    pub fn new(endpoint: impl Into<String>, env: &Environment) -> Result<NetClient> {
        let endpoint = endpoint.into();
        let label = format!("net-client:{endpoint}");
        let bytes_out = metrics::counter(names::NET_BYTES, &[("server", &label), ("dir", "out")]);
        let bytes_in = metrics::counter(names::NET_BYTES, &[("server", &label), ("dir", "in")]);
        let label: Arc<str> = Arc::from(label.as_str());
        let events = [
            "reuse",
            "dial",
            "drop",
            "redial",
            "health_ok",
            "health_fail",
        ]
        .into_iter()
        .map(|ev| {
            let counter = metrics::counter(
                names::NET_CLIENT_EVENTS,
                &[("endpoint", &endpoint), ("event", ev)],
            );
            (ev, counter)
        })
        .collect();
        let pool_gauge = metrics::gauge(names::NET_POOL_SIZE, &[("endpoint", &endpoint)]);
        let evicted_idle = metrics::counter(
            names::NET_POOL_EVICTIONS,
            &[("endpoint", &endpoint), ("reason", "idle")],
        );
        let evicted_cap = metrics::counter(
            names::NET_POOL_EVICTIONS,
            &[("endpoint", &endpoint), ("reason", "cap")],
        );
        Ok(NetClient {
            config: ClientConfig::from_env(env)?,
            pool: Mutex::new(Vec::new()),
            mux_pool: Mutex::new(Vec::new()),
            endpoint,
            label,
            epoch: Instant::now(),
            bytes_out,
            bytes_in,
            events,
            pool_gauge,
            evicted_idle,
            evicted_cap,
        })
    }

    /// The standard composition: this client wrapped in the standard
    /// interceptor stack, so caching/retry/obs apply to remote calls
    /// exactly as they do to in-process backends.
    pub fn connect(
        endpoint: impl Into<String>,
        env: &Environment,
    ) -> Result<Arc<ProviderPipeline<NetClient>>> {
        let client = Arc::new(NetClient::new(endpoint, env)?);
        Ok(ProviderPipeline::standard(client, env))
    }

    /// The endpoint this client dials.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Idle pooled (v1) or live multiplexed (v2) connections right now
    /// (diagnostics, tests).
    pub fn pooled(&self) -> usize {
        if self.config.proto_version == proto::PROTOCOL_V2 {
            self.mux_pool.lock().len()
        } else {
            self.pool.lock().len()
        }
    }

    fn event(&self, event: &str) {
        if let Some((_, counter)) = self.events.iter().find(|(name, _)| *name == event) {
            counter.inc();
        } else {
            metrics::counter(
                names::NET_CLIENT_EVENTS,
                &[("endpoint", &self.endpoint), ("event", event)],
            )
            .inc();
        }
    }

    fn timeout(&self) -> Option<Duration> {
        (self.config.deadline_ms > 0).then(|| Duration::from_millis(self.config.deadline_ms))
    }

    fn dial(&self) -> Result<TcpStream> {
        let stream = match self.timeout() {
            Some(budget) => {
                let addr = self.endpoint.parse().map_err(|e| {
                    NamingError::service(format!("endpoint {}: {e}", self.endpoint))
                })?;
                TcpStream::connect_timeout(&addr, budget)
            }
            None => TcpStream::connect(&self.endpoint),
        }
        .map_err(|e| io_error(&self.endpoint, "connect", e))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.timeout());
        let _ = stream.set_write_timeout(self.timeout());
        Ok(stream)
    }

    // ------------------------------------------------------ v1 path --

    /// Round-trip a ping on a pooled connection; `false` means the socket
    /// is stale and should be dropped.
    fn healthy(&self, stream: &mut TcpStream) -> bool {
        let Ok(ping) = proto::encode_message(&Request::Ping) else {
            return false;
        };
        if proto::write_frame(stream, &ping).is_err() {
            return false;
        }
        match proto::read_frame(stream) {
            Ok(frame) => matches!(
                proto::decode_response(rndi_obs::frame::strip(&frame).1),
                Ok(Response::Pong)
            ),
            Err(_) => false,
        }
    }

    fn checkout(&self) -> Result<Checked> {
        loop {
            let popped = {
                let mut pool = self.pool.lock();
                let popped = pool.pop();
                self.pool_gauge.set(pool.len() as i64);
                popped
            };
            let Some((mut stream, idle_since)) = popped else {
                break;
            };
            if self.config.idle_ms > 0
                && idle_since.elapsed() > Duration::from_millis(self.config.idle_ms)
            {
                self.evicted_idle.inc();
                self.event("drop");
                continue;
            }
            if self.config.health_check {
                if !self.healthy(&mut stream) {
                    self.event("health_fail");
                    continue;
                }
                self.event("health_ok");
            }
            self.event("reuse");
            return Ok(Checked {
                stream,
                reused: true,
            });
        }
        self.event("dial");
        Ok(Checked {
            stream: self.dial()?,
            reused: false,
        })
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        // Purge entries that went stale while pooled, oldest first, so the
        // cap below counts only live candidates.
        if self.config.idle_ms > 0 {
            let ttl = Duration::from_millis(self.config.idle_ms);
            let before = pool.len();
            pool.retain(|(_, idle_since)| idle_since.elapsed() <= ttl);
            self.evicted_idle.add((before - pool.len()) as u64);
        }
        if pool.len() < self.config.keep() {
            pool.push((stream, Instant::now()));
        } else {
            self.evicted_cap.inc();
            self.event("drop");
        }
        self.pool_gauge.set(pool.len() as i64);
    }

    /// One request/response exchange on one connection.
    fn exchange(&self, stream: &mut TcpStream, request_bytes: &[u8]) -> Result<Response> {
        proto::write_frame(stream, request_bytes)
            .map_err(|e| io_error(&self.endpoint, "send", e))?;
        self.bytes_out.add((request_bytes.len() + 4) as u64);
        let frame =
            proto::read_frame(stream).map_err(|e| io_error(&self.endpoint, "receive", e))?;
        self.bytes_in.add((frame.len() + 4) as u64);
        proto::decode_response(rndi_obs::frame::strip(&frame).1)
    }

    fn call_v1(&self, wire_op: proto::WireOp, ctx: &TraceCtx) -> Result<OpOutcome> {
        // The op already carries the client span's context in its meta (we
        // re-annotated before this call); additionally wrap the payload in
        // the transport-level trace header for cross-wire linking.
        let request = Request::Call {
            v: proto::PROTOCOL_V1,
            op: Box::new(wire_op),
            deadline_ms: self.config.deadline_ms,
        };
        let bytes = proto::encode_message(&request)?;
        let framed = rndi_obs::frame::wrap(ctx, &bytes);

        let mut checked = self.checkout()?;
        let response = match self.exchange(&mut checked.stream, &framed) {
            Ok(resp) => resp,
            Err(first) => {
                // A reused socket may have been dropped server-side while
                // idle; redial once before surfacing the failure.
                if !checked.reused {
                    return Err(first);
                }
                self.event("redial");
                let mut fresh = self.dial()?;
                let resp = self.exchange(&mut fresh, &framed)?;
                checked.stream = fresh;
                resp
            }
        };
        match response {
            Response::Ok(out) => {
                self.checkin(checked.stream);
                proto::decode_outcome(&out)
            }
            Response::Err(e) => {
                self.checkin(checked.stream);
                Err(proto::decode_error(&e))
            }
            Response::Pong => Err(NamingError::service("unexpected pong response")),
        }
    }

    // ------------------------------------------------------ v2 path --

    fn dial_mux(&self) -> Result<Arc<MuxConn>> {
        self.event("dial");
        let stream = self.dial()?;
        let read_half = stream
            .try_clone()
            .map_err(|e| io_error(&self.endpoint, "clone", e))?;
        let (enc, dec) = ClientConn::new().into_split();
        Ok(Arc::new(MuxConn {
            writer: Mutex::new(MuxWriter { enc, stream }),
            reader: Mutex::new(MuxReader {
                dec,
                stream: read_half,
                scratch: vec![0u8; 64 * 1024],
            }),
            pending: Mutex::new(HashMap::new()),
            broken: AtomicBool::new(false),
            last_used: AtomicU64::new(self.now_ms()),
        }))
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Drop broken connections and idle-expired ones (nothing in flight,
    /// untouched past `idle-ms`) from the v2 pool. Call with the pool
    /// lock held; updates the size gauge.
    fn mux_sweep(&self, pool: &mut Vec<Arc<MuxConn>>) {
        pool.retain(|c| !c.broken.load(Ordering::SeqCst));
        if self.config.idle_ms > 0 {
            let now = self.now_ms();
            let before = pool.len();
            pool.retain(|c| c.inflight() > 0 || c.idle_for(now) <= self.config.idle_ms);
            let evicted = before - pool.len();
            if evicted > 0 {
                self.evicted_idle.add(evicted as u64);
                for _ in 0..evicted {
                    self.event("drop");
                }
            }
        }
        self.pool_gauge.set(pool.len() as i64);
    }

    /// Pool a freshly dialed v2 connection, enforcing the hard cap: if
    /// the pool is full even after sweeping, the connection stays
    /// unpooled — its caller finishes the in-flight exchange and the
    /// socket closes when the last reference drops.
    fn mux_insert(&self, conn: &Arc<MuxConn>) {
        let mut pool = self.mux_pool.lock();
        self.mux_sweep(&mut pool);
        if pool.len() < self.config.max_pool {
            pool.push(conn.clone());
            self.pool_gauge.set(pool.len() as i64);
        } else {
            self.evicted_cap.inc();
            self.event("drop");
        }
    }

    /// Pick the least-loaded live connection, dialing a new one when all
    /// are at pipeline depth and the pool has room. The bool is whether
    /// the connection was freshly dialed (a failure on a *reused* one is
    /// retried once on a fresh dial).
    fn mux_checkout(&self) -> Result<(Arc<MuxConn>, bool)> {
        {
            let mut pool = self.mux_pool.lock();
            self.mux_sweep(&mut pool);
            if let Some(best) = pool.iter().min_by_key(|c| c.inflight()) {
                if best.inflight() < self.config.pipeline_depth || pool.len() >= self.config.keep()
                {
                    best.touch(self.now_ms());
                    self.event("reuse");
                    return Ok((best.clone(), false));
                }
            }
        }
        let conn = self.dial_mux()?;
        self.mux_insert(&conn);
        Ok((conn, true))
    }

    fn call_v2(&self, wire_op: proto::WireOp, ctx: &TraceCtx) -> Result<OpOutcome> {
        // The request ID is assigned per attempt, under the writer lock.
        let mut env = Envelope {
            req_id: 0,
            body: EnvelopeBody::Call {
                op: Box::new(wire_op),
                deadline_ms: self.config.deadline_ms,
                trace: Some(*ctx),
            },
        };
        decode_body(self.v2_roundtrip(&mut env)?)
    }

    /// One v2 exchange with the standard resilience policy: a transport
    /// failure on a *reused* connection is retried once on a fresh dial
    /// (the server may simply have dropped the socket while it idled).
    fn v2_roundtrip(&self, env: &mut Envelope) -> Result<EnvelopeBody> {
        let (conn, fresh) = self.mux_checkout()?;
        match self.mux_exchange(&conn, env) {
            Ok(body) => Ok(body),
            Err(e) if !fresh && is_transport(&e) => {
                conn.fail("superseded by redial");
                self.event("redial");
                let conn = self.dial_mux()?;
                self.mux_insert(&conn);
                self.mux_exchange(&conn, env)
            }
            Err(e) => Err(e),
        }
    }

    // --------------------------------------------------- admin scrape --

    /// Round-trip one admin request. Admin vocabulary exists only in the
    /// v2 envelope protocol; a v1-configured client reports that rather
    /// than sending a frame the server cannot type.
    fn admin(&self, req: AdminRequest) -> Result<AdminReply> {
        if self.config.proto_version != proto::PROTOCOL_V2 {
            return Err(NamingError::unsupported(
                "admin scrapes require rndi.net.proto.version=2",
            ));
        }
        let mut env = Envelope {
            req_id: 0,
            body: EnvelopeBody::Admin(req),
        };
        match self.v2_roundtrip(&mut env)? {
            EnvelopeBody::AdminOk(reply) => Ok(reply),
            EnvelopeBody::Err(e) => Err(proto::decode_error(&e)),
            other => Err(NamingError::service(format!(
                "unexpected admin response body: {other:?}"
            ))),
        }
    }

    /// Round-trip one gossip request. Gossip, like admin, exists only in
    /// the v2 envelope protocol and multiplexes over the same socket as
    /// data ops.
    pub fn gossip(&self, req: proto::GossipRequest) -> Result<proto::GossipReply> {
        if self.config.proto_version != proto::PROTOCOL_V2 {
            return Err(NamingError::unsupported(
                "gossip requires rndi.net.proto.version=2",
            ));
        }
        let mut env = Envelope {
            req_id: 0,
            body: EnvelopeBody::Gossip(req),
        };
        match self.v2_roundtrip(&mut env)? {
            EnvelopeBody::GossipOk(reply) => Ok(reply),
            EnvelopeBody::Err(e) => Err(proto::decode_error(&e)),
            other => Err(NamingError::service(format!(
                "unexpected gossip response body: {other:?}"
            ))),
        }
    }

    /// Scrape the remote server's metrics registry as a mergeable
    /// snapshot (multiplexed over the same socket as data ops).
    pub fn scrape_metrics(&self) -> Result<rndi_obs::MetricsSnapshot> {
        match self.admin(AdminRequest::Metrics)? {
            AdminReply::Metrics(snap) => Ok(snap),
            other => Err(admin_mismatch("metrics", &other)),
        }
    }

    /// Scrape the remote server's health summary.
    pub fn scrape_health(&self) -> Result<rndi_obs::HealthSummary> {
        match self.admin(AdminRequest::Health)? {
            AdminReply::Health(health) => Ok(health),
            other => Err(admin_mismatch("health", &other)),
        }
    }

    /// Every span of one trace still buffered in the remote trace ring.
    pub fn dump_trace(&self, trace_id: u64) -> Result<Vec<SpanRecord>> {
        self.dump(AdminRequest::TraceDump {
            trace_id,
            slowest: 0,
        })
    }

    /// Full traces of the `n` slowest root spans in the remote ring.
    pub fn dump_slowest(&self, n: u32) -> Result<Vec<SpanRecord>> {
        self.dump(AdminRequest::TraceDump {
            trace_id: 0,
            slowest: n,
        })
    }

    /// Every span currently buffered in the remote trace ring.
    pub fn dump_spans(&self) -> Result<Vec<SpanRecord>> {
        self.dump(AdminRequest::TraceDump {
            trace_id: 0,
            slowest: 0,
        })
    }

    fn dump(&self, req: AdminRequest) -> Result<Vec<SpanRecord>> {
        match self.admin(req)? {
            AdminReply::TraceDump(spans) => Ok(spans),
            other => Err(admin_mismatch("trace dump", &other)),
        }
    }

    /// Send one call and wait for its response, driving the shared read
    /// side if no other caller is. Returns transport-level errors only;
    /// remote typed errors come back as `Ok(EnvelopeBody::Err(..))`.
    fn mux_exchange(&self, conn: &MuxConn, env: &mut Envelope) -> Result<EnvelopeBody> {
        let start = Instant::now();
        // Buffer 3: worst case one Body plus queued TakeOver wakeups.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Delivery>(3);
        let req_id;
        {
            let mut w = conn.writer.lock();
            req_id = w.enc.next_req_id();
            env.req_id = req_id;
            conn.pending.lock().insert(req_id, tx);
            let bytes = w.enc.encode(env)?;
            if let Err(e) = w.stream.write_all(&bytes) {
                conn.pending.lock().remove(&req_id);
                conn.fail(&format!("send {}: {e}", self.endpoint));
                return Err(io_error(&self.endpoint, "send", e));
            }
            self.bytes_out.add(bytes.len() as u64);
        }
        loop {
            // A driver may have delivered our body while we were between
            // states (e.g. just after a TakeOver wakeup).
            if let Ok(Delivery::Body(body)) = rx.try_recv() {
                return Ok(body);
            }
            if let Some(mut r) = conn.reader.try_lock() {
                let outcome = self.drive(conn, &mut r, req_id, start);
                drop(r);
                // Pass the read baton before returning, whatever happened
                // to our own request.
                if !conn.broken.load(Ordering::SeqCst) {
                    conn.wake_someone();
                }
                match outcome {
                    // The previous driver delivered our body just before
                    // we took the lock; it is waiting in our channel.
                    Ok(None) => continue,
                    Ok(Some(body)) => return Ok(body),
                    Err(e) => return Err(e),
                }
            }
            let wait = match self.remaining(start) {
                None => Duration::from_millis(50),
                Some(rem) if rem.is_zero() => {
                    conn.pending.lock().remove(&req_id);
                    return Err(NamingError::Timeout {
                        detail: format!("receive {}: response deadline", self.endpoint),
                    });
                }
                Some(rem) => rem.min(Duration::from_millis(50)),
            };
            match rx.recv_timeout(wait) {
                Ok(Delivery::Body(body)) => return Ok(body),
                Ok(Delivery::TakeOver) => continue,
                Ok(Delivery::Broken(detail)) => {
                    return Err(NamingError::service(format!("mux {detail}")))
                }
                // Re-check the clock and the reader lock; the 50ms cap
                // also covers a lost-baton race (driver exited just as we
                // entered recv).
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(NamingError::service(format!(
                        "mux receive {}: response slot dropped",
                        self.endpoint
                    )))
                }
            }
        }
    }

    fn remaining(&self, start: Instant) -> Option<Duration> {
        self.timeout()
            .map(|budget| budget.saturating_sub(start.elapsed()))
    }

    /// Drive the shared read side until our own response arrives,
    /// delivering everyone else's responses to their slots along the way.
    /// `Ok(None)` means a previous driver already delivered our body to
    /// our channel — the caller should receive from it, not the socket.
    fn drive(
        &self,
        conn: &MuxConn,
        r: &mut MuxReader,
        my_id: u64,
        start: Instant,
    ) -> Result<Option<EnvelopeBody>> {
        if conn.pending.lock().get(&my_id).is_none() {
            return Ok(None);
        }
        loop {
            let n = match r.stream.read(&mut r.scratch) {
                Ok(0) => {
                    conn.fail(&format!("receive {}: connection closed", self.endpoint));
                    return Err(NamingError::service(format!(
                        "receive {}: connection closed",
                        self.endpoint
                    )));
                }
                Ok(n) => n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Our read timed out. Give up on our request but leave
                    // the connection alive for the others.
                    conn.pending.lock().remove(&my_id);
                    return Err(io_error(&self.endpoint, "receive", e));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    conn.fail(&format!("receive {}: {e}", self.endpoint));
                    return Err(io_error(&self.endpoint, "receive", e));
                }
            };
            self.bytes_in.add(n as u64);
            let envelopes = match r.dec.receive(&r.scratch[..n]) {
                Ok(envs) => envs,
                Err(e) => {
                    conn.fail(&format!("receive {}: {e}", self.endpoint));
                    return Err(e);
                }
            };
            let mut mine = None;
            for env in envelopes {
                if env.req_id == my_id {
                    mine = Some(env.body);
                } else if let Some(tx) = conn.pending.lock().remove(&env.req_id) {
                    let _ = tx.send(Delivery::Body(env.body));
                }
            }
            if let Some(body) = mine {
                conn.pending.lock().remove(&my_id);
                return Ok(Some(body));
            }
            if let Some(rem) = self.remaining(start) {
                if rem.is_zero() {
                    conn.pending.lock().remove(&my_id);
                    return Err(NamingError::Timeout {
                        detail: format!("receive {}: response deadline", self.endpoint),
                    });
                }
            }
        }
    }
}

fn admin_mismatch(wanted: &str, got: &AdminReply) -> NamingError {
    NamingError::service(format!("expected {wanted} admin reply, got {got:?}"))
}

fn decode_body(body: EnvelopeBody) -> Result<OpOutcome> {
    match body {
        EnvelopeBody::Ok(out) => proto::decode_outcome(&out),
        EnvelopeBody::Err(e) => Err(proto::decode_error(&e)),
        other => Err(NamingError::service(format!(
            "unexpected response body: {other:?}"
        ))),
    }
}

/// Whether an error came from the transport (retryable on a fresh
/// connection) rather than from the remote naming semantics.
/// `Overloaded` deliberately stays out: a shed call travelled a healthy
/// connection to a live server that said "not now" — redialling would
/// only add connection churn on top of the overload. The retry layer
/// (not the pool) backs it off.
fn is_transport(e: &NamingError) -> bool {
    matches!(
        e,
        NamingError::ServiceFailure { .. } | NamingError::Timeout { .. }
    )
}

/// Map transport errors onto the naming error model: timeouts stay
/// timeouts, everything else is a (transient, hence retryable)
/// service failure.
fn io_error(endpoint: &str, stage: &str, e: std::io::Error) -> NamingError {
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        NamingError::Timeout {
            detail: format!("{stage} {endpoint}: {e}"),
        }
    } else {
        NamingError::service(format!("{stage} {endpoint}: {e}"))
    }
}

impl ProviderBackend for NetClient {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        let ctx = match op.trace_ctx() {
            Some(parent) => parent.child(),
            None => TraceCtx::root(),
        };
        let start = Instant::now();
        // Encode the wire form carrying the client span's context (not
        // the op's own) — the far side should link under this hop.
        let result = proto::encode_op_as(op, Some(ctx)).and_then(|wire_op| {
            if self.config.proto_version == proto::PROTOCOL_V2 {
                self.call_v2(wire_op, &ctx)
            } else {
                self.call_v1(wire_op, &ctx)
            }
        });
        let outcome = match &result {
            Ok(_) => SpanOutcome::Ok,
            Err(e) if e.is_continue() => SpanOutcome::Continue,
            Err(_) => SpanOutcome::Err,
        };
        rndi_obs::trace::record(SpanRecord::new(
            &ctx,
            "client",
            self.label.clone(),
            op.kind.label(),
            outcome,
            start.elapsed(),
        ));
        result
    }

    fn provider_id(&self) -> String {
        self.label.to_string()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }
}

/// URL factory for `rtcp://host:port` — lets `InitialContext` federation
/// mount remote servers like any other provider scheme.
pub struct NetClientFactory {
    env: Environment,
}

impl NetClientFactory {
    pub fn new(env: Environment) -> Self {
        NetClientFactory { env }
    }
}

impl UrlContextFactory for NetClientFactory {
    fn scheme(&self) -> &str {
        "rtcp"
    }

    fn create(
        &self,
        url: &RndiUrl,
        env: &Environment,
    ) -> Result<Arc<dyn rndi_core::context::DirContext>> {
        let port = url.port.ok_or_else(|| NamingError::ConfigurationError {
            detail: format!("rtcp URL needs an explicit port: {url:?}"),
        })?;
        let endpoint = format!("{}:{port}", url.host);
        let merged = if env.is_empty() { &self.env } else { env };
        Ok(NetClient::connect(endpoint, merged)? as Arc<dyn rndi_core::context::DirContext>)
    }
}
