//! rndi-net: a length-prefixed framed wire protocol over TCP for RNDI
//! naming operations.
//!
//! The transport reifies the same [`NamingOp`](rndi_core::op::NamingOp) /
//! [`OpOutcome`](rndi_core::op::OpOutcome) vocabulary the in-process
//! pipeline already speaks, so putting a network between a context and
//! its provider is a composition change, not a semantic one:
//!
//! - [`NetServer`] hosts **any** [`ProviderBackend`](rndi_core::spi::ProviderBackend)
//!   — including a full `ProviderPipeline`, which means server-side
//!   cache/retry/obs layers keep working — behind a bounded
//!   thread-per-connection accept loop with per-request deadlines and
//!   graceful drain.
//! - [`NetClient`] **is** a `ProviderBackend`, so the client-side
//!   pipeline stack (cache, retry, obs interceptors) wraps remote calls
//!   unchanged. It pools connections, health-checks them before reuse,
//!   propagates deadlines, and maps transport failures to transient
//!   naming errors so the retry interceptor recovers from dropped
//!   servers.
//!
//! ## Wire format
//!
//! Every frame is a `u32` big-endian length prefix followed by that many
//! payload bytes (16 MiB cap). Request payloads are optionally wrapped
//! in the `%RNDI-TRACE:<ctx>\n` header from `rndi_obs::frame`, linking
//! client spans to server spans across the wire. The payload proper is
//! JSON: see [`proto::Request`] / [`proto::Response`].

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, NetClient, NetClientFactory};
pub use server::{NetServer, ServerConfig};
