//! rndi-net: a layered wire transport for RNDI naming operations.
//!
//! The transport reifies the same [`NamingOp`](rndi_core::op::NamingOp) /
//! [`OpOutcome`](rndi_core::op::OpOutcome) vocabulary the in-process
//! pipeline already speaks, so putting a network between a context and
//! its provider is a composition change, not a semantic one. The crate is
//! split into three layers (fraktor-rs-style), each testable without the
//! one below it:
//!
//! - [`proto`] — pure protocol: message shapes, the v1 framed-JSON codec,
//!   the v2 compact binary envelope codec ([`proto::bin`]), and the
//!   4-byte version-negotiation preamble. No connection state, no IO.
//! - [`conn`] — sans-IO connection state machines: incremental frame
//!   reassembly, version negotiation, and request-ID multiplexing for
//!   pipelined calls. Bytes in, messages out; no sockets.
//! - [`server`] / [`client`] — IO strategy: [`NetServer`] hosts **any**
//!   [`ProviderBackend`](rndi_core::spi::ProviderBackend) — including a
//!   full `ProviderPipeline`, so server-side cache/retry/obs layers keep
//!   working — on a shard-per-core nonblocking event loop that holds
//!   thousands of connections with per-request deadlines and graceful
//!   drain. [`NetClient`] **is** a `ProviderBackend`: the client-side
//!   pipeline stack (cache, retry, obs interceptors) wraps remote calls
//!   unchanged, over pooled connections that multiplex concurrent
//!   requests when the far side speaks v2.
//!
//! ## Wire format
//!
//! Every frame is a `u32` big-endian length prefix followed by that many
//! payload bytes (16 MiB cap). A v2 client opens with the 4-byte
//! `RNI\x02` preamble, which the server echoes as an acknowledgement;
//! absent the preamble the connection is served as v1 framed JSON
//! ([`proto::Request`] / [`proto::Response`], optionally wrapped in the
//! `%RNDI-TRACE:<ctx>\n` header from `rndi_obs::frame`). v2 frames carry
//! binary [`proto::Envelope`]s whose request IDs let one connection hold
//! many in-flight calls and deliver responses out of order.

pub mod client;
pub mod conn;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, NetClient, NetClientFactory};
pub use server::{GossipHandler, MembershipStats, NetServer, ServerConfig};
