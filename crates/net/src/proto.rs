//! The wire protocol: framing, version negotiation, and the message
//! schema. This module is *pure* — no sockets, no threads — so every
//! codec path is unit- and property-testable in isolation; the sans-IO
//! connection machinery lives in [`crate::conn`] and the IO strategies in
//! [`crate::server`]/[`crate::client`].
//!
//! Two protocol versions share one vocabulary:
//!
//! - **v1 (JSON, lock-step).** Every frame is a big-endian `u32` length
//!   prefix followed by that many payload bytes (capped at
//!   [`MAX_FRAME_LEN`]). A request payload is optionally wrapped in the
//!   `%RNDI-TRACE:` header from [`rndi_obs::frame`]; the bytes after the
//!   optional header are a JSON-encoded [`Request`]. Responses are bare
//!   JSON [`Response`]s, answered strictly in request order.
//! - **v2 (binary, pipelined).** The connection opens with the 4-byte
//!   preamble `RNI\x02` (magic + protocol-version byte); the server echoes
//!   it back as an acknowledgement. Every subsequent frame is the same
//!   `u32` length prefix, but the payload is a compact binary
//!   [`Envelope`] carrying a request ID, so many calls can be in flight
//!   on one connection and responses may arrive out of order. See
//!   [`bin`] for the byte-level codec.
//!
//! Version negotiation is a single inspection of a connection's first
//! four bytes: a v1 frame's length prefix always starts `0x00`/`0x01`
//! (lengths are capped at 16 MiB), while the v2 magic starts `b'R'`, so
//! the two are unambiguous. A server that sees the magic with an
//! unsupported version byte closes the connection; anything else is
//! served as v1 — old JSON clients keep working against new servers.
//!
//! The message schema reuses the codec types the in-process pipeline
//! already standardised on: values cross the wire as
//! [`StoredValue`](rndi_core::StoredValue) (exactly what
//! `rndi_core::op::codec` marshals), names and filters as their canonical
//! string forms, and errors as a mirrored enum that round-trips every
//! [`NamingError`] variant — including federation `Continue`, so a remote
//! provider can hand resolution back across the wire.
//!
//! Not everything can cross a socket: live `Context` values and event
//! listeners are process-local. Encoding them fails with
//! [`NamingError::NotSupported`] before any bytes are written.

pub mod bin;

use std::collections::BTreeMap;
use std::io::{Read, Write};

use rndi_core::attrs::{AttrMod, Attributes};
use rndi_core::context::{Binding, NameClassPair, SearchControls, SearchItem, SearchScope};
use rndi_core::error::{NamingError, Result};
use rndi_core::filter::Filter;
use rndi_core::name::CompositeName;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload, ALL_OP_KINDS};
use rndi_core::value::{BoundValue, StoredValue};
use serde::{Deserialize, Serialize};

/// The legacy JSON protocol version (lock-step request/response).
pub const PROTOCOL_V1: u32 = 1;

/// The binary, pipelined protocol version (request-ID envelopes).
pub const PROTOCOL_V2: u32 = 2;

/// Protocol version tag carried in every v1 request.
pub const PROTOCOL_VERSION: u32 = PROTOCOL_V1;

/// Hard cap on a single frame's payload, request or response.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// The first three bytes of a v2+ connection preamble. `b'R'` can never
/// open a v1 frame: v1 length prefixes are capped at [`MAX_FRAME_LEN`],
/// so their first byte is always `0x00` or `0x01`.
pub const PREAMBLE_MAGIC: [u8; 3] = *b"RNI";

/// The full 4-byte preamble a v2 client sends on connect (and a v2
/// server echoes back as its acknowledgement): magic + version byte.
pub const PREAMBLE_V2: [u8; 4] = [b'R', b'N', b'I', PROTOCOL_V2 as u8];

/// What a connection's first four bytes negotiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Negotiated {
    /// No preamble: the bytes are the start of a v1 frame stream.
    V1,
    /// The v2 preamble: binary envelopes with request IDs.
    V2,
    /// Preamble magic with a version byte this build does not speak; the
    /// connection must be closed (there is no compatible framing).
    Unsupported(u8),
}

/// Classify a connection's first four bytes (see the module docs for why
/// this is unambiguous).
pub fn negotiate(first4: &[u8; 4]) -> Negotiated {
    if first4[..3] == PREAMBLE_MAGIC {
        match first4[3] as u32 {
            PROTOCOL_V2 => Negotiated::V2,
            other => Negotiated::Unsupported(other as u8),
        }
    } else {
        Negotiated::V1
    }
}

// ------------------------------------------------------------ framing --

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. Oversized length prefixes error out
/// before any allocation, so a corrupt or hostile peer cannot force a
/// multi-gigabyte buffer.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

// ----------------------------------------------------------- messages --

/// One client→server message.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Connection health probe; the server answers [`Response::Pong`].
    Ping,
    /// Execute one naming operation. `deadline_ms` is the client's
    /// remaining per-request budget (`0` = no deadline).
    Call {
        v: u32,
        op: Box<WireOp>,
        deadline_ms: u64,
    },
}

/// One server→client message.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    Pong,
    Ok(WireOutcome),
    Err(WireError),
}

/// A v2 message: a request ID plus a body, in either direction. Request
/// IDs are allocated by the client and echoed by the server, which is
/// what lets one connection carry many in-flight calls (pipelining) and
/// deliver responses out of order.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    pub req_id: u64,
    pub body: EnvelopeBody,
}

/// The body of a v2 [`Envelope`].
#[derive(Clone, Debug, PartialEq)]
pub enum EnvelopeBody {
    /// Connection health probe; answered with [`EnvelopeBody::Pong`].
    Ping,
    Pong,
    /// Execute one naming operation. `deadline_ms` is the client's
    /// remaining per-request budget (`0` = no deadline). `trace` is the
    /// transport-level trace context (the v2 analogue of the v1
    /// `%RNDI-TRACE:` payload header), used when the op meta carries no
    /// `obs.trace` annotation.
    Call {
        op: Box<WireOp>,
        deadline_ms: u64,
        trace: Option<rndi_obs::TraceCtx>,
    },
    Ok(WireOutcome),
    Err(WireError),
    /// A telemetry request (v2 only): scrape the serving instance over
    /// the same socket as data ops. Answered with
    /// [`EnvelopeBody::AdminOk`] or [`EnvelopeBody::Err`].
    Admin(AdminRequest),
    AdminOk(AdminReply),
    /// A cluster membership exchange (v2 only): gossip sync or a ferried
    /// group-communication frame. Answered with [`EnvelopeBody::GossipOk`]
    /// or [`EnvelopeBody::Err`].
    Gossip(GossipRequest),
    GossipOk(GossipReply),
}

/// The admin request family: remote scrape of one serving instance.
/// Unknown kinds decode as clean typed errors, never panics, so newer
/// clients degrade gracefully against older servers and vice versa.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminRequest {
    /// The instance's full metrics snapshot (its registry, serialized).
    Metrics,
    /// Trace-ring contents. `trace_id != 0` selects one trace's spans;
    /// otherwise `slowest != 0` selects the full traces of the N slowest
    /// roots; otherwise every buffered span.
    TraceDump { trace_id: u64, slowest: u32 },
    /// Uptime, connection occupancy, shard inbox depth, request/error
    /// totals, and trace-ring drop counts.
    Health,
}

/// The reply to an [`AdminRequest`], same order of kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum AdminReply {
    Metrics(rndi_obs::MetricsSnapshot),
    TraceDump(Vec<rndi_obs::SpanRecord>),
    Health(rndi_obs::HealthSummary),
}

/// One member's lifecycle state as gossiped between nodes (the
/// `Alive → Suspect → Dead → Quarantined` machine lives in
/// `rndi-cluster`; the wire only carries the verdicts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemberState {
    Alive,
    Suspect,
    Dead,
    Quarantined,
}

impl MemberState {
    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            MemberState::Alive => 0,
            MemberState::Suspect => 1,
            MemberState::Dead => 2,
            MemberState::Quarantined => 3,
        }
    }

    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Option<MemberState> {
        Some(match tag {
            0 => MemberState::Alive,
            1 => MemberState::Suspect,
            2 => MemberState::Dead,
            3 => MemberState::Quarantined,
            _ => return None,
        })
    }
}

/// One row of a gossiped membership table: who, where, which incarnation,
/// and what the gossiper believes about it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberEntry {
    /// Stable node name (survives restarts; the quarantine key).
    pub name: String,
    /// `host:port` the member's server listens on (a restart may move it).
    pub endpoint: String,
    /// Bumped by the member itself on restart or to refute a suspicion;
    /// higher incarnation always wins a merge.
    pub incarnation: u64,
    pub state: MemberState,
}

/// A view summary piggybacked on gossip so liveness information never
/// travels without the highest-seq view that goes with it (that coupling
/// is what prevents a healed minority coordinator from installing a
/// rival view).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewSummary {
    pub seq: u64,
    /// Member names in view (coordinator-first) order.
    pub members: Vec<String>,
}

/// The gossip request family (v2 only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipRequest {
    /// Push-pull membership exchange; doubles as the heartbeat the
    /// phi-accrual detector scores. `from` is the sender's own row.
    Sync {
        from: MemberEntry,
        entries: Vec<MemberEntry>,
        view: Option<ViewSummary>,
    },
    /// A group-communication frame ferried between members of `group`;
    /// `from` is the sender's group address, `wire` a serialized
    /// `groupcast::Wire`.
    Group {
        group: String,
        from: u64,
        wire: Vec<u8>,
    },
}

/// The reply to a [`GossipRequest`], same order of kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipReply {
    /// The pull half of the exchange: the responder's table and view.
    Sync {
        entries: Vec<MemberEntry>,
        view: Option<ViewSummary>,
    },
    /// A ferried frame was accepted for processing.
    Ack,
}

/// A [`NamingOp`] in wire form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireOp {
    /// [`OpKind::label`] string.
    pub kind: String,
    /// Canonical composite-name string.
    pub name: String,
    pub payload: WirePayload,
    pub attrs: Option<Attributes>,
    /// Op metadata — this is how the trace context
    /// (`obs.trace`) rides along even without the transport-level header.
    pub meta: BTreeMap<String, String>,
}

/// [`OpPayload`] in wire form. Listener registrations are process-local
/// and have no wire representation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WirePayload {
    None,
    Value(StoredValue),
    /// Raw marshalled bytes whose encoding this node does not recognise
    /// (foreign data, or a payload wrapped in a trace frame that must be
    /// preserved byte-exactly).
    Wire {
        bytes: Vec<u8>,
        class_name: String,
    },
    /// An already-marshalled payload carried *decoded*: the wire form is
    /// the [`StoredValue`] itself, not its serialized bytes nested inside
    /// the outer frame (the v1 double-encode this variant eliminates —
    /// `StoredValue::encode` bytes used to cross as a JSON array of
    /// integers). The receiver re-marshals with the shared op codec, so
    /// backends still see [`OpPayload::Wire`] bytes.
    Stored {
        value: StoredValue,
        class_name: String,
    },
    NewName(String),
    Mods(Vec<AttrMod>),
    Query {
        filter: String,
        scope: String,
        count_limit: u64,
        return_attrs: Option<Vec<String>>,
        return_values: bool,
    },
}

/// [`OpOutcome`] in wire form. `Subscribed` handles are process-local and
/// have no wire representation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireOutcome {
    Done,
    Value(StoredValue),
    Wire(Vec<u8>),
    Names(Vec<WireNameClass>),
    Bindings(Vec<WireBinding>),
    Attrs(Attributes),
    Found(Vec<WireHit>),
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireNameClass {
    pub name: String,
    pub class_name: String,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireBinding {
    pub name: String,
    pub value: StoredValue,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireHit {
    pub name: String,
    pub value: Option<StoredValue>,
    pub attrs: Attributes,
}

/// [`NamingError`] in wire form, one variant per source variant so every
/// error a remote backend can produce round-trips with full fidelity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    NameNotFound {
        name: String,
    },
    AlreadyBound {
        name: String,
    },
    NotAContext {
        name: String,
    },
    ContextExpected {
        name: String,
    },
    InvalidName {
        name: String,
        reason: String,
    },
    InvalidSearchFilter {
        filter: String,
        reason: String,
    },
    NotSupported {
        operation: String,
    },
    NoPermission {
        detail: String,
    },
    ServiceFailure {
        detail: String,
    },
    Timeout {
        detail: String,
    },
    NoProvider {
        scheme: String,
    },
    ConfigurationError {
        detail: String,
    },
    ContextNotEmpty {
        name: String,
    },
    LeaseExpired {
        name: String,
    },
    Continue {
        resolved: StoredValue,
        remaining: String,
    },
    FederationDepthExceeded {
        depth: u64,
    },
    Overloaded {
        retry_after_ms: u64,
    },
}

// -------------------------------------------------------- conversions --

fn not_remotable(what: &str) -> NamingError {
    NamingError::unsupported(format!("{what} cannot cross a network transport"))
}

fn stored(v: &BoundValue) -> Result<StoredValue> {
    StoredValue::try_from_bound(v).ok_or_else(|| not_remotable("a live context value"))
}

fn scope_label(scope: SearchScope) -> &'static str {
    match scope {
        SearchScope::Object => "object",
        SearchScope::OneLevel => "onelevel",
        SearchScope::Subtree => "subtree",
    }
}

fn parse_scope(s: &str) -> Result<SearchScope> {
    match s {
        "object" => Ok(SearchScope::Object),
        "onelevel" => Ok(SearchScope::OneLevel),
        "subtree" => Ok(SearchScope::Subtree),
        other => Err(NamingError::service(format!(
            "unknown search scope {other:?}"
        ))),
    }
}

/// Encode a reified op for the wire. Fails — without touching the socket —
/// for op shapes that are inherently process-local (listeners, handles,
/// live context payloads).
pub fn encode_op(op: &NamingOp) -> Result<WireOp> {
    encode_op_as(op, op.trace.get())
}

/// [`encode_op`], but materializing `trace` instead of the op's own trace
/// cell — for callers (the client) that annotate the wire form with their
/// own span's context and would otherwise encode the meta string twice.
pub fn encode_op_as(op: &NamingOp, trace: Option<rndi_obs::TraceCtx>) -> Result<WireOp> {
    let payload = match &op.payload {
        OpPayload::None => WirePayload::None,
        OpPayload::Value(v) => WirePayload::Value(stored(v)?),
        OpPayload::Wire { bytes, class_name } => encode_wire_payload(bytes, class_name),
        OpPayload::NewName(n) => WirePayload::NewName(n.to_string()),
        OpPayload::Mods(mods) => WirePayload::Mods(mods.clone()),
        OpPayload::Query { filter, controls } => WirePayload::Query {
            filter: filter.to_string(),
            scope: scope_label(controls.scope).to_string(),
            count_limit: controls.count_limit as u64,
            return_attrs: controls.return_attrs.clone(),
            return_values: controls.return_values,
        },
        OpPayload::Listener(_) => return Err(not_remotable("an event listener")),
        OpPayload::Handle(_) => return Err(not_remotable("a listener handle")),
    };
    Ok(WireOp {
        kind: op.kind.label().to_string(),
        name: op.name.to_string(),
        payload,
        attrs: op.attrs.clone(),
        meta: {
            let mut meta: std::collections::BTreeMap<String, String> =
                op.meta.iter().map(|(k, v)| (k.into(), v.into())).collect();
            // Materialize the trace context as the wire meta string, so
            // every encoder stays trace-correct.
            if let Some(ctx) = trace {
                meta.insert(rndi_core::op::TRACE_META_KEY.to_string(), ctx.encode());
            }
            meta
        },
    })
}

/// Choose the single-encoded wire form for an already-marshalled payload.
/// Bytes that are a bare canonical [`StoredValue`] encoding cross decoded
/// (and are re-encoded on the far side — `encode ∘ decode` is the
/// identity for the shared codec's own output); trace-framed payloads and
/// foreign bytes must survive byte-exactly, so they stay raw. JSON-tree
/// values also stay raw: their re-encoding need not be byte-identical.
fn encode_wire_payload(bytes: &[u8], class_name: &str) -> WirePayload {
    let (frame_ctx, payload) = rndi_obs::frame::strip(bytes);
    if frame_ctx.is_none() && payload.len() == bytes.len() {
        if let Some(value) = StoredValue::decode(bytes) {
            if !matches!(value, StoredValue::Json(_)) && value.encode() == bytes {
                return WirePayload::Stored {
                    value,
                    class_name: class_name.to_string(),
                };
            }
        }
    }
    WirePayload::Wire {
        bytes: bytes.to_vec(),
        class_name: class_name.to_string(),
    }
}

fn parse_kind(label: &str) -> Result<OpKind> {
    ALL_OP_KINDS
        .iter()
        .copied()
        .find(|k| k.label() == label)
        .ok_or_else(|| NamingError::service(format!("unknown op kind {label:?}")))
}

/// Decode a wire op back into a reified [`NamingOp`] (server side).
pub fn decode_op(wire: &WireOp) -> Result<NamingOp> {
    let kind = parse_kind(&wire.kind)?;
    let name = CompositeName::parse(&wire.name)?;
    let payload = match &wire.payload {
        WirePayload::None => OpPayload::None,
        WirePayload::Value(s) => OpPayload::Value(s.clone().into_bound()),
        WirePayload::Wire { bytes, class_name } => OpPayload::Wire {
            bytes: bytes.clone(),
            class_name: class_name.clone(),
        },
        WirePayload::Stored { value, class_name } => OpPayload::Wire {
            bytes: value.encode(),
            class_name: class_name.clone(),
        },
        WirePayload::NewName(n) => OpPayload::NewName(CompositeName::parse(n)?),
        WirePayload::Mods(mods) => OpPayload::Mods(mods.clone()),
        WirePayload::Query {
            filter,
            scope,
            count_limit,
            return_attrs,
            return_values,
        } => OpPayload::Query {
            filter: Filter::parse(filter)?,
            controls: SearchControls {
                scope: parse_scope(scope)?,
                count_limit: *count_limit as usize,
                return_attrs: return_attrs.clone(),
                return_values: *return_values,
            },
        },
    };
    let mut op = NamingOp::lookup(name);
    op.kind = kind;
    op.payload = payload;
    op.attrs = wire.attrs.clone();
    for (k, v) in &wire.meta {
        // The trace context travels the wire as a meta string; rehydrate
        // it into the op's first-class field so server-side layers never
        // re-parse (or re-clone) it.
        if k == rndi_core::op::TRACE_META_KEY {
            if let Some(ctx) = rndi_obs::TraceCtx::parse(v) {
                op.trace.set(&ctx);
            }
        } else {
            op.meta.set(k.clone(), v.clone());
        }
    }
    Ok(op)
}

/// Encode an outcome for the wire (server side).
pub fn encode_outcome(out: &OpOutcome) -> Result<WireOutcome> {
    Ok(match out {
        OpOutcome::Done => WireOutcome::Done,
        OpOutcome::Value(v) => WireOutcome::Value(stored(v)?),
        OpOutcome::Wire(b) => WireOutcome::Wire(b.clone()),
        OpOutcome::Names(names) => WireOutcome::Names(
            names
                .iter()
                .map(|n| WireNameClass {
                    name: n.name.clone(),
                    class_name: n.class_name.clone(),
                })
                .collect(),
        ),
        OpOutcome::Bindings(bindings) => WireOutcome::Bindings(
            bindings
                .iter()
                .map(|b| {
                    Ok(WireBinding {
                        name: b.name.clone(),
                        value: stored(&b.value)?,
                    })
                })
                .collect::<Result<_>>()?,
        ),
        OpOutcome::Attrs(a) => WireOutcome::Attrs(a.clone()),
        OpOutcome::Found(hits) => WireOutcome::Found(
            hits.iter()
                .map(|h| {
                    Ok(WireHit {
                        name: h.name.clone(),
                        value: h.value.as_ref().map(stored).transpose()?,
                        attrs: h.attrs.clone(),
                    })
                })
                .collect::<Result<_>>()?,
        ),
        OpOutcome::Subscribed(_) => return Err(not_remotable("a listener subscription")),
    })
}

/// Decode a wire outcome (client side).
pub fn decode_outcome(wire: &WireOutcome) -> Result<OpOutcome> {
    Ok(match wire {
        WireOutcome::Done => OpOutcome::Done,
        WireOutcome::Value(s) => OpOutcome::Value(s.clone().into_bound()),
        WireOutcome::Wire(b) => OpOutcome::Wire(b.clone()),
        WireOutcome::Names(names) => OpOutcome::Names(
            names
                .iter()
                .map(|n| NameClassPair {
                    name: n.name.clone(),
                    class_name: n.class_name.clone(),
                })
                .collect(),
        ),
        WireOutcome::Bindings(bindings) => OpOutcome::Bindings(
            bindings
                .iter()
                .map(|b| Binding {
                    name: b.name.clone(),
                    value: b.value.clone().into_bound(),
                })
                .collect(),
        ),
        WireOutcome::Attrs(a) => OpOutcome::Attrs(a.clone()),
        WireOutcome::Found(hits) => OpOutcome::Found(
            hits.iter()
                .map(|h| SearchItem {
                    name: h.name.clone(),
                    value: h.value.clone().map(StoredValue::into_bound),
                    attrs: h.attrs.clone(),
                })
                .collect(),
        ),
    })
}

/// Encode an error for the wire (server side). Every variant has a wire
/// form except it degrades `Continue` with a live-context boundary object
/// into a `ServiceFailure` (a context handle cannot cross the socket).
pub fn encode_error(e: &NamingError) -> WireError {
    match e {
        NamingError::NameNotFound { name } => WireError::NameNotFound { name: name.clone() },
        NamingError::AlreadyBound { name } => WireError::AlreadyBound { name: name.clone() },
        NamingError::NotAContext { name } => WireError::NotAContext { name: name.clone() },
        NamingError::ContextExpected { name } => WireError::ContextExpected { name: name.clone() },
        NamingError::InvalidName { name, reason } => WireError::InvalidName {
            name: name.clone(),
            reason: reason.clone(),
        },
        NamingError::InvalidSearchFilter { filter, reason } => WireError::InvalidSearchFilter {
            filter: filter.clone(),
            reason: reason.clone(),
        },
        NamingError::NotSupported { operation } => WireError::NotSupported {
            operation: operation.clone(),
        },
        NamingError::NoPermission { detail } => WireError::NoPermission {
            detail: detail.clone(),
        },
        NamingError::ServiceFailure { detail } => WireError::ServiceFailure {
            detail: detail.clone(),
        },
        NamingError::Timeout { detail } => WireError::Timeout {
            detail: detail.clone(),
        },
        NamingError::NoProvider { scheme } => WireError::NoProvider {
            scheme: scheme.clone(),
        },
        NamingError::ConfigurationError { detail } => WireError::ConfigurationError {
            detail: detail.clone(),
        },
        NamingError::ContextNotEmpty { name } => WireError::ContextNotEmpty { name: name.clone() },
        NamingError::LeaseExpired { name } => WireError::LeaseExpired { name: name.clone() },
        NamingError::Continue {
            resolved,
            remaining,
        } => match StoredValue::try_from_bound(resolved) {
            Some(resolved) => WireError::Continue {
                resolved,
                remaining: remaining.to_string(),
            },
            None => WireError::ServiceFailure {
                detail: "federation continuation with a live context cannot cross the wire"
                    .to_string(),
            },
        },
        NamingError::FederationDepthExceeded { depth } => WireError::FederationDepthExceeded {
            depth: *depth as u64,
        },
        NamingError::Overloaded { retry_after_ms } => WireError::Overloaded {
            retry_after_ms: *retry_after_ms,
        },
    }
}

/// Decode a wire error (client side).
pub fn decode_error(wire: &WireError) -> NamingError {
    match wire {
        WireError::NameNotFound { name } => NamingError::NameNotFound { name: name.clone() },
        WireError::AlreadyBound { name } => NamingError::AlreadyBound { name: name.clone() },
        WireError::NotAContext { name } => NamingError::NotAContext { name: name.clone() },
        WireError::ContextExpected { name } => NamingError::ContextExpected { name: name.clone() },
        WireError::InvalidName { name, reason } => NamingError::InvalidName {
            name: name.clone(),
            reason: reason.clone(),
        },
        WireError::InvalidSearchFilter { filter, reason } => NamingError::InvalidSearchFilter {
            filter: filter.clone(),
            reason: reason.clone(),
        },
        WireError::NotSupported { operation } => NamingError::NotSupported {
            operation: operation.clone(),
        },
        WireError::NoPermission { detail } => NamingError::NoPermission {
            detail: detail.clone(),
        },
        WireError::ServiceFailure { detail } => NamingError::ServiceFailure {
            detail: detail.clone(),
        },
        WireError::Timeout { detail } => NamingError::Timeout {
            detail: detail.clone(),
        },
        WireError::NoProvider { scheme } => NamingError::NoProvider {
            scheme: scheme.clone(),
        },
        WireError::ConfigurationError { detail } => NamingError::ConfigurationError {
            detail: detail.clone(),
        },
        WireError::ContextNotEmpty { name } => NamingError::ContextNotEmpty { name: name.clone() },
        WireError::LeaseExpired { name } => NamingError::LeaseExpired { name: name.clone() },
        WireError::Continue {
            resolved,
            remaining,
        } => NamingError::Continue {
            resolved: resolved.clone().into_bound(),
            remaining: CompositeName::parse(remaining).unwrap_or_else(|_| CompositeName::empty()),
        },
        WireError::FederationDepthExceeded { depth } => NamingError::FederationDepthExceeded {
            depth: *depth as usize,
        },
        WireError::Overloaded { retry_after_ms } => NamingError::Overloaded {
            retry_after_ms: *retry_after_ms,
        },
    }
}

/// Parse request bytes (after the optional transport trace header has been
/// stripped). Any decode failure maps to `ServiceFailure` — the server
/// answers with an error response instead of dropping the connection.
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    serde_json::from_slice(payload)
        .map_err(|e| NamingError::service(format!("malformed request: {e}")))
}

/// Parse response bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    serde_json::from_slice(payload)
        .map_err(|e| NamingError::service(format!("malformed response: {e}")))
}

/// Serialize any message to bytes.
pub fn encode_message<T: Serialize>(msg: &T) -> Result<Vec<u8>> {
    serde_json::to_vec(msg).map_err(|e| NamingError::service(format!("encode failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rndi_core::attrs::Attribute;
    use rndi_core::value::Reference;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 4 + 5);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
    }

    #[test]
    fn frame_rejects_oversized_length() {
        let mut bytes = (MAX_FRAME_LEN as u32 + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"x");
        let mut r = &bytes[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn op_roundtrip_covers_payload_shapes() {
        let ops = vec![
            NamingOp::lookup("a/b".into()),
            NamingOp::bind("x".into(), BoundValue::str("v")),
            NamingOp::rename("a".into(), "b".into()),
            NamingOp::modify_attributes(
                "n".into(),
                vec![
                    AttrMod::Add(Attribute::single("cpu", "8")),
                    AttrMod::Remove("mem".into()),
                ],
            ),
            NamingOp::bind_with_attrs(
                "s".into(),
                BoundValue::Reference(Reference::url("hdns://h")),
                Attributes::new().with("kind", "service"),
            ),
            NamingOp::search(
                "base".into(),
                Filter::parse("(&(a=1)(b>=2))").unwrap(),
                SearchControls {
                    scope: SearchScope::Subtree,
                    count_limit: 5,
                    return_attrs: Some(vec!["a".into()]),
                    return_values: true,
                },
            ),
        ];
        for op in ops {
            let mut traced = op.clone();
            traced.meta.set("obs.trace", "1-2-0-0");
            let wire = encode_op(&traced).unwrap();
            let bytes = encode_message(&wire).unwrap();
            let parsed: WireOp = serde_json::from_slice(&bytes).unwrap();
            let back = decode_op(&parsed).unwrap();
            assert_eq!(back.kind, op.kind);
            assert_eq!(back.name.to_string(), op.name.to_string());
            // The wire meta string rehydrates into the first-class trace
            // field on decode (and is kept out of the meta bag).
            assert_eq!(
                back.trace_ctx().map(|c| c.encode()).as_deref(),
                Some("1-2-0-0")
            );
            assert_eq!(back.meta.get("obs.trace"), None);
        }
    }

    #[test]
    fn local_only_ops_are_rejected_before_the_wire() {
        struct NopListener;
        impl rndi_core::event::NamingListener for NopListener {
            fn on_event(&self, _: &rndi_core::event::NamingEvent) {}
        }
        let err = encode_op(&NamingOp::add_listener(
            "a".into(),
            std::sync::Arc::new(NopListener),
        ))
        .unwrap_err();
        assert!(matches!(err, NamingError::NotSupported { .. }));
    }

    #[test]
    fn outcome_roundtrip() {
        let outs = vec![
            OpOutcome::Done,
            OpOutcome::Value(BoundValue::I64(9)),
            OpOutcome::Names(vec![NameClassPair {
                name: "a".into(),
                class_name: "string".into(),
            }]),
            OpOutcome::Bindings(vec![Binding {
                name: "b".into(),
                value: BoundValue::str("v"),
            }]),
            OpOutcome::Attrs(Attributes::new().with("k", "v")),
            OpOutcome::Found(vec![SearchItem {
                name: "hit".into(),
                value: Some(BoundValue::Bool(true)),
                attrs: Attributes::new(),
            }]),
        ];
        for out in outs {
            let wire = encode_outcome(&out).unwrap();
            let bytes = encode_message(&wire).unwrap();
            let parsed: WireOutcome = serde_json::from_slice(&bytes).unwrap();
            let back = decode_outcome(&parsed).unwrap();
            assert_eq!(format!("{back:?}"), format!("{out:?}"));
        }
    }

    #[test]
    fn error_roundtrip_including_continue() {
        let errors = vec![
            NamingError::not_found("a"),
            NamingError::already_bound("b"),
            NamingError::Timeout {
                detail: "slow".into(),
            },
            NamingError::Continue {
                resolved: BoundValue::Reference(Reference::url("ldap://h/dc=x")),
                remaining: CompositeName::parse("rest/of/name").unwrap(),
            },
            NamingError::FederationDepthExceeded { depth: 9 },
        ];
        for e in errors {
            let wire = encode_error(&e);
            let bytes = encode_message(&wire).unwrap();
            let parsed: WireError = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(decode_error(&parsed), e);
        }
    }

    #[test]
    fn request_response_roundtrip() {
        let req = Request::Call {
            v: PROTOCOL_VERSION,
            op: Box::new(encode_op(&NamingOp::lookup("x".into())).unwrap()),
            deadline_ms: 250,
        };
        let parsed = decode_request(&encode_message(&req).unwrap()).unwrap();
        match parsed {
            Request::Call { v, deadline_ms, .. } => {
                assert_eq!(v, PROTOCOL_VERSION);
                assert_eq!(deadline_ms, 250);
            }
            other => panic!("wrong request {other:?}"),
        }
        let resp = Response::Err(encode_error(&NamingError::not_found("y")));
        match decode_response(&encode_message(&resp).unwrap()).unwrap() {
            Response::Err(e) => assert_eq!(decode_error(&e), NamingError::not_found("y")),
            other => panic!("wrong response {other:?}"),
        }
        assert!(decode_request(b"not json").is_err());
        assert!(decode_response(b"{\"halfway\":").is_err());
    }
}
