//! The wire protocol: framing and the request/response message schema.
//!
//! A connection carries a sequence of frames in each direction. Every frame
//! is a big-endian `u32` length prefix followed by that many payload bytes
//! (capped at [`MAX_FRAME_LEN`]). A request payload is optionally wrapped
//! in the `%RNDI-TRACE:` header from [`rndi_obs::frame`] — the same frame
//! providers already use for stored bytes — so the server can link its
//! spans to the client's trace; the bytes after the optional header are a
//! JSON-encoded [`Request`]. Response payloads are bare JSON [`Response`]s.
//!
//! The message schema reuses the codec types the in-process pipeline
//! already standardised on: values cross the wire as
//! [`StoredValue`](rndi_core::StoredValue) (exactly what
//! `rndi_core::op::codec` marshals), names and filters as their canonical
//! string forms, and errors as a mirrored enum that round-trips every
//! [`NamingError`] variant — including federation `Continue`, so a remote
//! provider can hand resolution back across the wire.
//!
//! Not everything can cross a socket: live `Context` values and event
//! listeners are process-local. Encoding them fails with
//! [`NamingError::NotSupported`] before any bytes are written.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use rndi_core::attrs::{AttrMod, Attributes};
use rndi_core::context::{Binding, NameClassPair, SearchControls, SearchItem, SearchScope};
use rndi_core::error::{NamingError, Result};
use rndi_core::filter::Filter;
use rndi_core::name::CompositeName;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload, ALL_OP_KINDS};
use rndi_core::value::{BoundValue, StoredValue};
use serde::{Deserialize, Serialize};

/// Protocol version tag carried in every request.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single frame's payload, request or response.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

// ------------------------------------------------------------ framing --

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. Oversized length prefixes error out
/// before any allocation, so a corrupt or hostile peer cannot force a
/// multi-gigabyte buffer.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

// ----------------------------------------------------------- messages --

/// One client→server message.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Connection health probe; the server answers [`Response::Pong`].
    Ping,
    /// Execute one naming operation. `deadline_ms` is the client's
    /// remaining per-request budget (`0` = no deadline).
    Call {
        v: u32,
        op: Box<WireOp>,
        deadline_ms: u64,
    },
}

/// One server→client message.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    Pong,
    Ok(WireOutcome),
    Err(WireError),
}

/// A [`NamingOp`] in wire form.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireOp {
    /// [`OpKind::label`] string.
    pub kind: String,
    /// Canonical composite-name string.
    pub name: String,
    pub payload: WirePayload,
    pub attrs: Option<Attributes>,
    /// Op metadata — this is how the trace context
    /// (`obs.trace`) rides along even without the transport-level header.
    pub meta: BTreeMap<String, String>,
}

/// [`OpPayload`] in wire form. Listener registrations are process-local
/// and have no wire representation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WirePayload {
    None,
    Value(StoredValue),
    Wire {
        bytes: Vec<u8>,
        class_name: String,
    },
    NewName(String),
    Mods(Vec<AttrMod>),
    Query {
        filter: String,
        scope: String,
        count_limit: u64,
        return_attrs: Option<Vec<String>>,
        return_values: bool,
    },
}

/// [`OpOutcome`] in wire form. `Subscribed` handles are process-local and
/// have no wire representation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireOutcome {
    Done,
    Value(StoredValue),
    Wire(Vec<u8>),
    Names(Vec<WireNameClass>),
    Bindings(Vec<WireBinding>),
    Attrs(Attributes),
    Found(Vec<WireHit>),
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireNameClass {
    pub name: String,
    pub class_name: String,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireBinding {
    pub name: String,
    pub value: StoredValue,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireHit {
    pub name: String,
    pub value: Option<StoredValue>,
    pub attrs: Attributes,
}

/// [`NamingError`] in wire form, one variant per source variant so every
/// error a remote backend can produce round-trips with full fidelity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireError {
    NameNotFound {
        name: String,
    },
    AlreadyBound {
        name: String,
    },
    NotAContext {
        name: String,
    },
    ContextExpected {
        name: String,
    },
    InvalidName {
        name: String,
        reason: String,
    },
    InvalidSearchFilter {
        filter: String,
        reason: String,
    },
    NotSupported {
        operation: String,
    },
    NoPermission {
        detail: String,
    },
    ServiceFailure {
        detail: String,
    },
    Timeout {
        detail: String,
    },
    NoProvider {
        scheme: String,
    },
    ConfigurationError {
        detail: String,
    },
    ContextNotEmpty {
        name: String,
    },
    LeaseExpired {
        name: String,
    },
    Continue {
        resolved: StoredValue,
        remaining: String,
    },
    FederationDepthExceeded {
        depth: u64,
    },
}

// -------------------------------------------------------- conversions --

fn not_remotable(what: &str) -> NamingError {
    NamingError::unsupported(format!("{what} cannot cross a network transport"))
}

fn stored(v: &BoundValue) -> Result<StoredValue> {
    StoredValue::try_from_bound(v).ok_or_else(|| not_remotable("a live context value"))
}

fn scope_label(scope: SearchScope) -> &'static str {
    match scope {
        SearchScope::Object => "object",
        SearchScope::OneLevel => "onelevel",
        SearchScope::Subtree => "subtree",
    }
}

fn parse_scope(s: &str) -> Result<SearchScope> {
    match s {
        "object" => Ok(SearchScope::Object),
        "onelevel" => Ok(SearchScope::OneLevel),
        "subtree" => Ok(SearchScope::Subtree),
        other => Err(NamingError::service(format!(
            "unknown search scope {other:?}"
        ))),
    }
}

/// Encode a reified op for the wire. Fails — without touching the socket —
/// for op shapes that are inherently process-local (listeners, handles,
/// live context payloads).
pub fn encode_op(op: &NamingOp) -> Result<WireOp> {
    let payload = match &op.payload {
        OpPayload::None => WirePayload::None,
        OpPayload::Value(v) => WirePayload::Value(stored(v)?),
        OpPayload::Wire { bytes, class_name } => WirePayload::Wire {
            bytes: bytes.clone(),
            class_name: class_name.clone(),
        },
        OpPayload::NewName(n) => WirePayload::NewName(n.to_string()),
        OpPayload::Mods(mods) => WirePayload::Mods(mods.clone()),
        OpPayload::Query { filter, controls } => WirePayload::Query {
            filter: filter.to_string(),
            scope: scope_label(controls.scope).to_string(),
            count_limit: controls.count_limit as u64,
            return_attrs: controls.return_attrs.clone(),
            return_values: controls.return_values,
        },
        OpPayload::Listener(_) => return Err(not_remotable("an event listener")),
        OpPayload::Handle(_) => return Err(not_remotable("a listener handle")),
    };
    Ok(WireOp {
        kind: op.kind.label().to_string(),
        name: op.name.to_string(),
        payload,
        attrs: op.attrs.clone(),
        meta: op.meta.iter().map(|(k, v)| (k.into(), v.into())).collect(),
    })
}

fn parse_kind(label: &str) -> Result<OpKind> {
    ALL_OP_KINDS
        .iter()
        .copied()
        .find(|k| k.label() == label)
        .ok_or_else(|| NamingError::service(format!("unknown op kind {label:?}")))
}

/// Decode a wire op back into a reified [`NamingOp`] (server side).
pub fn decode_op(wire: &WireOp) -> Result<NamingOp> {
    let kind = parse_kind(&wire.kind)?;
    let name = CompositeName::parse(&wire.name)?;
    let payload = match &wire.payload {
        WirePayload::None => OpPayload::None,
        WirePayload::Value(s) => OpPayload::Value(s.clone().into_bound()),
        WirePayload::Wire { bytes, class_name } => OpPayload::Wire {
            bytes: bytes.clone(),
            class_name: class_name.clone(),
        },
        WirePayload::NewName(n) => OpPayload::NewName(CompositeName::parse(n)?),
        WirePayload::Mods(mods) => OpPayload::Mods(mods.clone()),
        WirePayload::Query {
            filter,
            scope,
            count_limit,
            return_attrs,
            return_values,
        } => OpPayload::Query {
            filter: Filter::parse(filter)?,
            controls: SearchControls {
                scope: parse_scope(scope)?,
                count_limit: *count_limit as usize,
                return_attrs: return_attrs.clone(),
                return_values: *return_values,
            },
        },
    };
    let mut op = NamingOp::lookup(name);
    op.kind = kind;
    op.payload = payload;
    op.attrs = wire.attrs.clone();
    for (k, v) in &wire.meta {
        op.meta.set(k.clone(), v.clone());
    }
    Ok(op)
}

/// Encode an outcome for the wire (server side).
pub fn encode_outcome(out: &OpOutcome) -> Result<WireOutcome> {
    Ok(match out {
        OpOutcome::Done => WireOutcome::Done,
        OpOutcome::Value(v) => WireOutcome::Value(stored(v)?),
        OpOutcome::Wire(b) => WireOutcome::Wire(b.clone()),
        OpOutcome::Names(names) => WireOutcome::Names(
            names
                .iter()
                .map(|n| WireNameClass {
                    name: n.name.clone(),
                    class_name: n.class_name.clone(),
                })
                .collect(),
        ),
        OpOutcome::Bindings(bindings) => WireOutcome::Bindings(
            bindings
                .iter()
                .map(|b| {
                    Ok(WireBinding {
                        name: b.name.clone(),
                        value: stored(&b.value)?,
                    })
                })
                .collect::<Result<_>>()?,
        ),
        OpOutcome::Attrs(a) => WireOutcome::Attrs(a.clone()),
        OpOutcome::Found(hits) => WireOutcome::Found(
            hits.iter()
                .map(|h| {
                    Ok(WireHit {
                        name: h.name.clone(),
                        value: h.value.as_ref().map(stored).transpose()?,
                        attrs: h.attrs.clone(),
                    })
                })
                .collect::<Result<_>>()?,
        ),
        OpOutcome::Subscribed(_) => return Err(not_remotable("a listener subscription")),
    })
}

/// Decode a wire outcome (client side).
pub fn decode_outcome(wire: &WireOutcome) -> Result<OpOutcome> {
    Ok(match wire {
        WireOutcome::Done => OpOutcome::Done,
        WireOutcome::Value(s) => OpOutcome::Value(s.clone().into_bound()),
        WireOutcome::Wire(b) => OpOutcome::Wire(b.clone()),
        WireOutcome::Names(names) => OpOutcome::Names(
            names
                .iter()
                .map(|n| NameClassPair {
                    name: n.name.clone(),
                    class_name: n.class_name.clone(),
                })
                .collect(),
        ),
        WireOutcome::Bindings(bindings) => OpOutcome::Bindings(
            bindings
                .iter()
                .map(|b| Binding {
                    name: b.name.clone(),
                    value: b.value.clone().into_bound(),
                })
                .collect(),
        ),
        WireOutcome::Attrs(a) => OpOutcome::Attrs(a.clone()),
        WireOutcome::Found(hits) => OpOutcome::Found(
            hits.iter()
                .map(|h| SearchItem {
                    name: h.name.clone(),
                    value: h.value.clone().map(StoredValue::into_bound),
                    attrs: h.attrs.clone(),
                })
                .collect(),
        ),
    })
}

/// Encode an error for the wire (server side). Every variant has a wire
/// form except it degrades `Continue` with a live-context boundary object
/// into a `ServiceFailure` (a context handle cannot cross the socket).
pub fn encode_error(e: &NamingError) -> WireError {
    match e {
        NamingError::NameNotFound { name } => WireError::NameNotFound { name: name.clone() },
        NamingError::AlreadyBound { name } => WireError::AlreadyBound { name: name.clone() },
        NamingError::NotAContext { name } => WireError::NotAContext { name: name.clone() },
        NamingError::ContextExpected { name } => WireError::ContextExpected { name: name.clone() },
        NamingError::InvalidName { name, reason } => WireError::InvalidName {
            name: name.clone(),
            reason: reason.clone(),
        },
        NamingError::InvalidSearchFilter { filter, reason } => WireError::InvalidSearchFilter {
            filter: filter.clone(),
            reason: reason.clone(),
        },
        NamingError::NotSupported { operation } => WireError::NotSupported {
            operation: operation.clone(),
        },
        NamingError::NoPermission { detail } => WireError::NoPermission {
            detail: detail.clone(),
        },
        NamingError::ServiceFailure { detail } => WireError::ServiceFailure {
            detail: detail.clone(),
        },
        NamingError::Timeout { detail } => WireError::Timeout {
            detail: detail.clone(),
        },
        NamingError::NoProvider { scheme } => WireError::NoProvider {
            scheme: scheme.clone(),
        },
        NamingError::ConfigurationError { detail } => WireError::ConfigurationError {
            detail: detail.clone(),
        },
        NamingError::ContextNotEmpty { name } => WireError::ContextNotEmpty { name: name.clone() },
        NamingError::LeaseExpired { name } => WireError::LeaseExpired { name: name.clone() },
        NamingError::Continue {
            resolved,
            remaining,
        } => match StoredValue::try_from_bound(resolved) {
            Some(resolved) => WireError::Continue {
                resolved,
                remaining: remaining.to_string(),
            },
            None => WireError::ServiceFailure {
                detail: "federation continuation with a live context cannot cross the wire"
                    .to_string(),
            },
        },
        NamingError::FederationDepthExceeded { depth } => WireError::FederationDepthExceeded {
            depth: *depth as u64,
        },
    }
}

/// Decode a wire error (client side).
pub fn decode_error(wire: &WireError) -> NamingError {
    match wire {
        WireError::NameNotFound { name } => NamingError::NameNotFound { name: name.clone() },
        WireError::AlreadyBound { name } => NamingError::AlreadyBound { name: name.clone() },
        WireError::NotAContext { name } => NamingError::NotAContext { name: name.clone() },
        WireError::ContextExpected { name } => NamingError::ContextExpected { name: name.clone() },
        WireError::InvalidName { name, reason } => NamingError::InvalidName {
            name: name.clone(),
            reason: reason.clone(),
        },
        WireError::InvalidSearchFilter { filter, reason } => NamingError::InvalidSearchFilter {
            filter: filter.clone(),
            reason: reason.clone(),
        },
        WireError::NotSupported { operation } => NamingError::NotSupported {
            operation: operation.clone(),
        },
        WireError::NoPermission { detail } => NamingError::NoPermission {
            detail: detail.clone(),
        },
        WireError::ServiceFailure { detail } => NamingError::ServiceFailure {
            detail: detail.clone(),
        },
        WireError::Timeout { detail } => NamingError::Timeout {
            detail: detail.clone(),
        },
        WireError::NoProvider { scheme } => NamingError::NoProvider {
            scheme: scheme.clone(),
        },
        WireError::ConfigurationError { detail } => NamingError::ConfigurationError {
            detail: detail.clone(),
        },
        WireError::ContextNotEmpty { name } => NamingError::ContextNotEmpty { name: name.clone() },
        WireError::LeaseExpired { name } => NamingError::LeaseExpired { name: name.clone() },
        WireError::Continue {
            resolved,
            remaining,
        } => NamingError::Continue {
            resolved: resolved.clone().into_bound(),
            remaining: CompositeName::parse(remaining).unwrap_or_else(|_| CompositeName::empty()),
        },
        WireError::FederationDepthExceeded { depth } => NamingError::FederationDepthExceeded {
            depth: *depth as usize,
        },
    }
}

/// Parse request bytes (after the optional transport trace header has been
/// stripped). Any decode failure maps to `ServiceFailure` — the server
/// answers with an error response instead of dropping the connection.
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    serde_json::from_slice(payload)
        .map_err(|e| NamingError::service(format!("malformed request: {e}")))
}

/// Parse response bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    serde_json::from_slice(payload)
        .map_err(|e| NamingError::service(format!("malformed response: {e}")))
}

/// Serialize any message to bytes.
pub fn encode_message<T: Serialize>(msg: &T) -> Result<Vec<u8>> {
    serde_json::to_vec(msg).map_err(|e| NamingError::service(format!("encode failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rndi_core::attrs::Attribute;
    use rndi_core::value::Reference;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 4 + 5);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
    }

    #[test]
    fn frame_rejects_oversized_length() {
        let mut bytes = (MAX_FRAME_LEN as u32 + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"x");
        let mut r = &bytes[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn op_roundtrip_covers_payload_shapes() {
        let ops = vec![
            NamingOp::lookup("a/b".into()),
            NamingOp::bind("x".into(), BoundValue::str("v")),
            NamingOp::rename("a".into(), "b".into()),
            NamingOp::modify_attributes(
                "n".into(),
                vec![
                    AttrMod::Add(Attribute::single("cpu", "8")),
                    AttrMod::Remove("mem".into()),
                ],
            ),
            NamingOp::bind_with_attrs(
                "s".into(),
                BoundValue::Reference(Reference::url("hdns://h")),
                Attributes::new().with("kind", "service"),
            ),
            NamingOp::search(
                "base".into(),
                Filter::parse("(&(a=1)(b>=2))").unwrap(),
                SearchControls {
                    scope: SearchScope::Subtree,
                    count_limit: 5,
                    return_attrs: Some(vec!["a".into()]),
                    return_values: true,
                },
            ),
        ];
        for op in ops {
            let mut traced = op.clone();
            traced.meta.set("obs.trace", "1-2-0-0");
            let wire = encode_op(&traced).unwrap();
            let bytes = encode_message(&wire).unwrap();
            let parsed: WireOp = serde_json::from_slice(&bytes).unwrap();
            let back = decode_op(&parsed).unwrap();
            assert_eq!(back.kind, op.kind);
            assert_eq!(back.name.to_string(), op.name.to_string());
            assert_eq!(back.meta.get("obs.trace"), Some("1-2-0-0"));
        }
    }

    #[test]
    fn local_only_ops_are_rejected_before_the_wire() {
        struct NopListener;
        impl rndi_core::event::NamingListener for NopListener {
            fn on_event(&self, _: &rndi_core::event::NamingEvent) {}
        }
        let err = encode_op(&NamingOp::add_listener(
            "a".into(),
            std::sync::Arc::new(NopListener),
        ))
        .unwrap_err();
        assert!(matches!(err, NamingError::NotSupported { .. }));
    }

    #[test]
    fn outcome_roundtrip() {
        let outs = vec![
            OpOutcome::Done,
            OpOutcome::Value(BoundValue::I64(9)),
            OpOutcome::Names(vec![NameClassPair {
                name: "a".into(),
                class_name: "string".into(),
            }]),
            OpOutcome::Bindings(vec![Binding {
                name: "b".into(),
                value: BoundValue::str("v"),
            }]),
            OpOutcome::Attrs(Attributes::new().with("k", "v")),
            OpOutcome::Found(vec![SearchItem {
                name: "hit".into(),
                value: Some(BoundValue::Bool(true)),
                attrs: Attributes::new(),
            }]),
        ];
        for out in outs {
            let wire = encode_outcome(&out).unwrap();
            let bytes = encode_message(&wire).unwrap();
            let parsed: WireOutcome = serde_json::from_slice(&bytes).unwrap();
            let back = decode_outcome(&parsed).unwrap();
            assert_eq!(format!("{back:?}"), format!("{out:?}"));
        }
    }

    #[test]
    fn error_roundtrip_including_continue() {
        let errors = vec![
            NamingError::not_found("a"),
            NamingError::already_bound("b"),
            NamingError::Timeout {
                detail: "slow".into(),
            },
            NamingError::Continue {
                resolved: BoundValue::Reference(Reference::url("ldap://h/dc=x")),
                remaining: CompositeName::parse("rest/of/name").unwrap(),
            },
            NamingError::FederationDepthExceeded { depth: 9 },
        ];
        for e in errors {
            let wire = encode_error(&e);
            let bytes = encode_message(&wire).unwrap();
            let parsed: WireError = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(decode_error(&parsed), e);
        }
    }

    #[test]
    fn request_response_roundtrip() {
        let req = Request::Call {
            v: PROTOCOL_VERSION,
            op: Box::new(encode_op(&NamingOp::lookup("x".into())).unwrap()),
            deadline_ms: 250,
        };
        let parsed = decode_request(&encode_message(&req).unwrap()).unwrap();
        match parsed {
            Request::Call { v, deadline_ms, .. } => {
                assert_eq!(v, PROTOCOL_VERSION);
                assert_eq!(deadline_ms, 250);
            }
            other => panic!("wrong request {other:?}"),
        }
        let resp = Response::Err(encode_error(&NamingError::not_found("y")));
        match decode_response(&encode_message(&resp).unwrap()).unwrap() {
            Response::Err(e) => assert_eq!(decode_error(&e), NamingError::not_found("y")),
            other => panic!("wrong response {other:?}"),
        }
        assert!(decode_request(b"not json").is_err());
        assert!(decode_response(b"{\"halfway\":").is_err());
    }
}
