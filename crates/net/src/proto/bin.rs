//! The v2 binary envelope codec.
//!
//! One [`Envelope`](super::Envelope) per frame: a request ID, a body tag,
//! and a body whose hot-path shapes (lookup, bind/rebind, their
//! outcomes) are encoded natively — fixed-width little-endian integers
//! and length-prefixed strings/bytes — instead of through `serde_json`.
//! Cold, deeply structured values (attribute sets, modification lists,
//! JSON trees, references) fall back to their canonical JSON bytes inside
//! a length-prefixed field, so the codec stays small while the hot path
//! pays no text marshalling at all.
//!
//! Decoding is defensive by construction: every length field is
//! bounds-checked against the *remaining input* before any allocation,
//! unknown tags are typed errors, and trailing bytes after a complete
//! envelope are rejected. The proptests in `tests/proto_fuzz.rs` pin the
//! no-panic guarantee on arbitrary and truncated input.

use rndi_core::attrs::{AttrMod, Attributes};
use rndi_core::error::{NamingError, Result};
use rndi_core::op::ALL_OP_KINDS;
use rndi_core::value::{Reference, StoredValue};
use rndi_obs::TraceCtx;

use super::{
    AdminReply, AdminRequest, Envelope, EnvelopeBody, GossipReply, GossipRequest, MemberEntry,
    MemberState, ViewSummary, WireBinding, WireError, WireHit, WireNameClass, WireOp, WireOutcome,
    WirePayload,
};

// -------------------------------------------------------------- writer --

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_json<T: serde::Serialize>(out: &mut Vec<u8>, v: &T) -> Result<()> {
    let bytes =
        serde_json::to_vec(v).map_err(|e| NamingError::service(format!("encode failed: {e}")))?;
    put_bytes(out, &bytes);
    Ok(())
}

fn put_stored(out: &mut Vec<u8>, v: &StoredValue) -> Result<()> {
    match v {
        StoredValue::Null => out.push(0),
        StoredValue::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
        StoredValue::I64(i) => {
            out.push(2);
            put_u64(out, *i as u64);
        }
        StoredValue::F64(f) => {
            out.push(3);
            put_u64(out, f.to_bits());
        }
        StoredValue::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
        StoredValue::Bytes(b) => {
            out.push(5);
            put_bytes(out, b);
        }
        StoredValue::Json(j) => {
            out.push(6);
            put_json(out, j)?;
        }
        StoredValue::Reference(r) => {
            out.push(7);
            put_json(out, r)?;
        }
    }
    Ok(())
}

fn put_trace(out: &mut Vec<u8>, ctx: &TraceCtx) {
    put_u64(out, ctx.trace_id);
    put_u64(out, ctx.span_id);
    put_u64(out, ctx.parent_span);
    put_u32(out, ctx.depth);
}

fn put_op(out: &mut Vec<u8>, op: &WireOp) -> Result<()> {
    let kind = ALL_OP_KINDS
        .iter()
        .position(|k| k.label() == op.kind)
        .ok_or_else(|| NamingError::service(format!("unknown op kind {:?}", op.kind)))?;
    out.push(kind as u8);
    put_str(out, &op.name);
    match &op.attrs {
        None => out.push(0),
        Some(attrs) => {
            out.push(1);
            put_json(out, attrs)?;
        }
    }
    put_u16(out, op.meta.len() as u16);
    for (k, v) in &op.meta {
        put_str(out, k);
        put_str(out, v);
    }
    match &op.payload {
        WirePayload::None => out.push(0),
        WirePayload::Value(v) => {
            out.push(1);
            put_stored(out, v)?;
        }
        WirePayload::Wire { bytes, class_name } => {
            out.push(2);
            put_bytes(out, bytes);
            put_str(out, class_name);
        }
        WirePayload::Stored { value, class_name } => {
            out.push(3);
            put_stored(out, value)?;
            put_str(out, class_name);
        }
        WirePayload::NewName(n) => {
            out.push(4);
            put_str(out, n);
        }
        WirePayload::Mods(mods) => {
            out.push(5);
            put_json(out, mods)?;
        }
        WirePayload::Query {
            filter,
            scope,
            count_limit,
            return_attrs,
            return_values,
        } => {
            out.push(6);
            put_str(out, filter);
            put_str(out, scope);
            put_u64(out, *count_limit);
            match return_attrs {
                None => out.push(0),
                Some(attrs) => {
                    out.push(1);
                    put_u32(out, attrs.len() as u32);
                    for a in attrs {
                        put_str(out, a);
                    }
                }
            }
            out.push(*return_values as u8);
        }
    }
    Ok(())
}

fn put_outcome(out: &mut Vec<u8>, outcome: &WireOutcome) -> Result<()> {
    match outcome {
        WireOutcome::Done => out.push(0),
        WireOutcome::Value(v) => {
            out.push(1);
            put_stored(out, v)?;
        }
        WireOutcome::Wire(b) => {
            out.push(2);
            put_bytes(out, b);
        }
        WireOutcome::Names(names) => {
            out.push(3);
            put_u32(out, names.len() as u32);
            for n in names {
                put_str(out, &n.name);
                put_str(out, &n.class_name);
            }
        }
        WireOutcome::Bindings(bindings) => {
            out.push(4);
            put_u32(out, bindings.len() as u32);
            for b in bindings {
                put_str(out, &b.name);
                put_stored(out, &b.value)?;
            }
        }
        WireOutcome::Attrs(attrs) => {
            out.push(5);
            put_json(out, attrs)?;
        }
        WireOutcome::Found(hits) => {
            out.push(6);
            put_u32(out, hits.len() as u32);
            for h in hits {
                put_str(out, &h.name);
                match &h.value {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        put_stored(out, v)?;
                    }
                }
                put_json(out, &h.attrs)?;
            }
        }
    }
    Ok(())
}

fn put_error(out: &mut Vec<u8>, err: &WireError) -> Result<()> {
    match err {
        WireError::NameNotFound { name } => {
            out.push(0);
            put_str(out, name);
        }
        WireError::AlreadyBound { name } => {
            out.push(1);
            put_str(out, name);
        }
        WireError::NotAContext { name } => {
            out.push(2);
            put_str(out, name);
        }
        WireError::ContextExpected { name } => {
            out.push(3);
            put_str(out, name);
        }
        WireError::InvalidName { name, reason } => {
            out.push(4);
            put_str(out, name);
            put_str(out, reason);
        }
        WireError::InvalidSearchFilter { filter, reason } => {
            out.push(5);
            put_str(out, filter);
            put_str(out, reason);
        }
        WireError::NotSupported { operation } => {
            out.push(6);
            put_str(out, operation);
        }
        WireError::NoPermission { detail } => {
            out.push(7);
            put_str(out, detail);
        }
        WireError::ServiceFailure { detail } => {
            out.push(8);
            put_str(out, detail);
        }
        WireError::Timeout { detail } => {
            out.push(9);
            put_str(out, detail);
        }
        WireError::NoProvider { scheme } => {
            out.push(10);
            put_str(out, scheme);
        }
        WireError::ConfigurationError { detail } => {
            out.push(11);
            put_str(out, detail);
        }
        WireError::ContextNotEmpty { name } => {
            out.push(12);
            put_str(out, name);
        }
        WireError::LeaseExpired { name } => {
            out.push(13);
            put_str(out, name);
        }
        WireError::Continue {
            resolved,
            remaining,
        } => {
            out.push(14);
            put_stored(out, resolved)?;
            put_str(out, remaining);
        }
        WireError::FederationDepthExceeded { depth } => {
            out.push(15);
            put_u64(out, *depth);
        }
        WireError::Overloaded { retry_after_ms } => {
            out.push(16);
            put_u64(out, *retry_after_ms);
        }
    }
    Ok(())
}

/// Encode one envelope to frame-payload bytes.
pub fn encode_envelope(env: &Envelope) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, env.req_id);
    match &env.body {
        EnvelopeBody::Ping => out.push(0),
        EnvelopeBody::Pong => out.push(1),
        EnvelopeBody::Call {
            op,
            deadline_ms,
            trace,
        } => {
            out.push(2);
            put_u64(&mut out, *deadline_ms);
            match trace {
                None => out.push(0),
                Some(ctx) => {
                    out.push(1);
                    put_trace(&mut out, ctx);
                }
            }
            put_op(&mut out, op)?;
        }
        EnvelopeBody::Ok(outcome) => {
            out.push(3);
            put_outcome(&mut out, outcome)?;
        }
        EnvelopeBody::Err(err) => {
            out.push(4);
            put_error(&mut out, err)?;
        }
        EnvelopeBody::Admin(req) => {
            out.push(5);
            match req {
                AdminRequest::Metrics => out.push(0),
                AdminRequest::TraceDump { trace_id, slowest } => {
                    out.push(1);
                    put_u64(&mut out, *trace_id);
                    put_u32(&mut out, *slowest);
                }
                AdminRequest::Health => out.push(2),
            }
        }
        EnvelopeBody::AdminOk(reply) => {
            out.push(6);
            // Admin payloads are cold-path telemetry structures; they
            // cross as canonical JSON inside a length-prefixed field, same
            // as attribute sets on the data path.
            match reply {
                AdminReply::Metrics(snapshot) => {
                    out.push(0);
                    put_json(&mut out, snapshot)?;
                }
                AdminReply::TraceDump(spans) => {
                    out.push(1);
                    put_json(&mut out, spans)?;
                }
                AdminReply::Health(health) => {
                    out.push(2);
                    put_json(&mut out, health)?;
                }
            }
        }
        EnvelopeBody::Gossip(req) => {
            out.push(7);
            match req {
                GossipRequest::Sync {
                    from,
                    entries,
                    view,
                } => {
                    out.push(0);
                    put_member(&mut out, from);
                    put_u32(&mut out, entries.len() as u32);
                    for e in entries {
                        put_member(&mut out, e);
                    }
                    put_view_summary(&mut out, view.as_ref());
                }
                GossipRequest::Group { group, from, wire } => {
                    out.push(1);
                    put_str(&mut out, group);
                    put_u64(&mut out, *from);
                    put_bytes(&mut out, wire);
                }
            }
        }
        EnvelopeBody::GossipOk(reply) => {
            out.push(8);
            match reply {
                GossipReply::Sync { entries, view } => {
                    out.push(0);
                    put_u32(&mut out, entries.len() as u32);
                    for e in entries {
                        put_member(&mut out, e);
                    }
                    put_view_summary(&mut out, view.as_ref());
                }
                GossipReply::Ack => out.push(1),
            }
        }
    }
    Ok(out)
}

fn put_member(out: &mut Vec<u8>, e: &MemberEntry) {
    put_str(out, &e.name);
    put_str(out, &e.endpoint);
    put_u64(out, e.incarnation);
    out.push(e.state.tag());
}

fn put_view_summary(out: &mut Vec<u8>, view: Option<&ViewSummary>) {
    match view {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v.seq);
            put_u32(out, v.members.len() as u32);
            for m in &v.members {
                put_str(out, m);
            }
        }
    }
}

// -------------------------------------------------------------- reader --

/// A bounds-checked reader over a frame payload. Every `take_*` verifies
/// the requested length against the remaining input *before* touching it,
/// so truncated or hostile length fields fail without allocation.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> NamingError {
    NamingError::service(format!("malformed envelope: truncated {what}"))
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(truncated(what));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8]> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let bytes = self.bytes(what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NamingError::service(format!("malformed envelope: non-UTF-8 {what}")))
    }

    fn json<T: serde::de::DeserializeOwned>(&mut self, what: &str) -> Result<T> {
        let bytes = self.bytes(what)?;
        serde_json::from_slice(bytes)
            .map_err(|e| NamingError::service(format!("malformed envelope: bad {what}: {e}")))
    }

    fn stored(&mut self) -> Result<StoredValue> {
        Ok(match self.u8("value tag")? {
            0 => StoredValue::Null,
            1 => StoredValue::Str(self.str("string value")?),
            2 => StoredValue::I64(self.u64("integer value")? as i64),
            3 => StoredValue::F64(f64::from_bits(self.u64("float value")?)),
            4 => StoredValue::Bool(self.u8("bool value")? != 0),
            5 => StoredValue::Bytes(self.bytes("bytes value")?.to_vec()),
            6 => StoredValue::Json(self.json::<serde_json::Value>("json value")?),
            7 => StoredValue::Reference(self.json::<Reference>("reference value")?),
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown value tag {other}"
                )))
            }
        })
    }

    fn opt_stored(&mut self, what: &str) -> Result<Option<StoredValue>> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.stored()?)),
            other => Err(NamingError::service(format!(
                "malformed envelope: bad option tag {other} for {what}"
            ))),
        }
    }

    fn member(&mut self) -> Result<MemberEntry> {
        Ok(MemberEntry {
            name: self.str("member name")?,
            endpoint: self.str("member endpoint")?,
            incarnation: self.u64("member incarnation")?,
            state: {
                let tag = self.u8("member state")?;
                MemberState::from_tag(tag).ok_or_else(|| {
                    NamingError::service(format!("malformed envelope: unknown member state {tag}"))
                })?
            },
        })
    }

    fn members(&mut self) -> Result<Vec<MemberEntry>> {
        let count = self.u32("member count")?;
        // No pre-allocation from the untrusted count: each row is
        // bounds-checked as it is read, so hostile counts fail fast.
        let mut entries = Vec::new();
        for _ in 0..count {
            entries.push(self.member()?);
        }
        Ok(entries)
    }

    fn view_summary(&mut self) -> Result<Option<ViewSummary>> {
        match self.u8("view flag")? {
            0 => Ok(None),
            1 => {
                let seq = self.u64("view seq")?;
                let count = self.u32("view member count")?;
                let mut members = Vec::new();
                for _ in 0..count {
                    members.push(self.str("view member")?);
                }
                Ok(Some(ViewSummary { seq, members }))
            }
            other => Err(NamingError::service(format!(
                "malformed envelope: bad view flag {other}"
            ))),
        }
    }

    fn trace(&mut self) -> Result<TraceCtx> {
        Ok(TraceCtx {
            trace_id: self.u64("trace id")?,
            span_id: self.u64("span id")?,
            parent_span: self.u64("parent span")?,
            depth: self.u32("trace depth")?,
        })
    }

    fn op(&mut self) -> Result<WireOp> {
        let kind_idx = self.u8("op kind")? as usize;
        let kind = ALL_OP_KINDS
            .get(kind_idx)
            .ok_or_else(|| {
                NamingError::service(format!("malformed envelope: unknown op kind {kind_idx}"))
            })?
            .label()
            .to_string();
        let name = self.str("op name")?;
        let attrs = match self.u8("attrs flag")? {
            0 => None,
            1 => Some(self.json::<Attributes>("attrs")?),
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: bad attrs flag {other}"
                )))
            }
        };
        let meta_count = self.u16("meta count")? as usize;
        let mut meta = std::collections::BTreeMap::new();
        for _ in 0..meta_count {
            let k = self.str("meta key")?;
            let v = self.str("meta value")?;
            meta.insert(k, v);
        }
        let payload = match self.u8("payload tag")? {
            0 => WirePayload::None,
            1 => WirePayload::Value(self.stored()?),
            2 => WirePayload::Wire {
                bytes: self.bytes("wire payload")?.to_vec(),
                class_name: self.str("wire class")?,
            },
            3 => WirePayload::Stored {
                value: self.stored()?,
                class_name: self.str("stored class")?,
            },
            4 => WirePayload::NewName(self.str("new name")?),
            5 => WirePayload::Mods(self.json::<Vec<AttrMod>>("attr mods")?),
            6 => {
                let filter = self.str("filter")?;
                let scope = self.str("scope")?;
                let count_limit = self.u64("count limit")?;
                let return_attrs = match self.u8("return-attrs flag")? {
                    0 => None,
                    1 => {
                        let n = self.u32("return-attrs count")? as usize;
                        let mut attrs = Vec::new();
                        for _ in 0..n {
                            attrs.push(self.str("return attr")?);
                        }
                        Some(attrs)
                    }
                    other => {
                        return Err(NamingError::service(format!(
                            "malformed envelope: bad return-attrs flag {other}"
                        )))
                    }
                };
                let return_values = self.u8("return-values flag")? != 0;
                WirePayload::Query {
                    filter,
                    scope,
                    count_limit,
                    return_attrs,
                    return_values,
                }
            }
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown payload tag {other}"
                )))
            }
        };
        Ok(WireOp {
            kind,
            name,
            payload,
            attrs,
            meta,
        })
    }

    fn outcome(&mut self) -> Result<WireOutcome> {
        Ok(match self.u8("outcome tag")? {
            0 => WireOutcome::Done,
            1 => WireOutcome::Value(self.stored()?),
            2 => WireOutcome::Wire(self.bytes("wire outcome")?.to_vec()),
            3 => {
                let n = self.u32("name count")? as usize;
                let mut names = Vec::new();
                for _ in 0..n {
                    names.push(WireNameClass {
                        name: self.str("entry name")?,
                        class_name: self.str("entry class")?,
                    });
                }
                WireOutcome::Names(names)
            }
            4 => {
                let n = self.u32("binding count")? as usize;
                let mut bindings = Vec::new();
                for _ in 0..n {
                    bindings.push(WireBinding {
                        name: self.str("binding name")?,
                        value: self.stored()?,
                    });
                }
                WireOutcome::Bindings(bindings)
            }
            5 => WireOutcome::Attrs(self.json::<Attributes>("attrs outcome")?),
            6 => {
                let n = self.u32("hit count")? as usize;
                let mut hits = Vec::new();
                for _ in 0..n {
                    hits.push(WireHit {
                        name: self.str("hit name")?,
                        value: self.opt_stored("hit value")?,
                        attrs: self.json::<Attributes>("hit attrs")?,
                    });
                }
                WireOutcome::Found(hits)
            }
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown outcome tag {other}"
                )))
            }
        })
    }

    fn error(&mut self) -> Result<WireError> {
        Ok(match self.u8("error tag")? {
            0 => WireError::NameNotFound {
                name: self.str("error name")?,
            },
            1 => WireError::AlreadyBound {
                name: self.str("error name")?,
            },
            2 => WireError::NotAContext {
                name: self.str("error name")?,
            },
            3 => WireError::ContextExpected {
                name: self.str("error name")?,
            },
            4 => WireError::InvalidName {
                name: self.str("error name")?,
                reason: self.str("error reason")?,
            },
            5 => WireError::InvalidSearchFilter {
                filter: self.str("error filter")?,
                reason: self.str("error reason")?,
            },
            6 => WireError::NotSupported {
                operation: self.str("error operation")?,
            },
            7 => WireError::NoPermission {
                detail: self.str("error detail")?,
            },
            8 => WireError::ServiceFailure {
                detail: self.str("error detail")?,
            },
            9 => WireError::Timeout {
                detail: self.str("error detail")?,
            },
            10 => WireError::NoProvider {
                scheme: self.str("error scheme")?,
            },
            11 => WireError::ConfigurationError {
                detail: self.str("error detail")?,
            },
            12 => WireError::ContextNotEmpty {
                name: self.str("error name")?,
            },
            13 => WireError::LeaseExpired {
                name: self.str("error name")?,
            },
            14 => WireError::Continue {
                resolved: self.stored()?,
                remaining: self.str("error remaining")?,
            },
            15 => WireError::FederationDepthExceeded {
                depth: self.u64("error depth")?,
            },
            16 => WireError::Overloaded {
                retry_after_ms: self.u64("error retry-after")?,
            },
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown error tag {other}"
                )))
            }
        })
    }
}

/// Decode one envelope from frame-payload bytes. Trailing bytes after a
/// complete envelope are rejected (they would mean the framing layer and
/// the codec disagree about message boundaries).
pub fn decode_envelope(payload: &[u8]) -> Result<Envelope> {
    let mut r = Reader::new(payload);
    let req_id = r.u64("request id")?;
    let body = match r.u8("body tag")? {
        0 => EnvelopeBody::Ping,
        1 => EnvelopeBody::Pong,
        2 => {
            let deadline_ms = r.u64("deadline")?;
            let trace = match r.u8("trace flag")? {
                0 => None,
                1 => Some(r.trace()?),
                other => {
                    return Err(NamingError::service(format!(
                        "malformed envelope: bad trace flag {other}"
                    )))
                }
            };
            let op = Box::new(r.op()?);
            EnvelopeBody::Call {
                op,
                deadline_ms,
                trace,
            }
        }
        3 => EnvelopeBody::Ok(r.outcome()?),
        4 => EnvelopeBody::Err(r.error()?),
        5 => EnvelopeBody::Admin(match r.u8("admin kind")? {
            0 => AdminRequest::Metrics,
            1 => AdminRequest::TraceDump {
                trace_id: r.u64("trace-dump id")?,
                slowest: r.u32("trace-dump slowest")?,
            },
            2 => AdminRequest::Health,
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown admin kind {other}"
                )))
            }
        }),
        6 => EnvelopeBody::AdminOk(match r.u8("admin reply kind")? {
            0 => AdminReply::Metrics(r.json::<rndi_obs::MetricsSnapshot>("metrics snapshot")?),
            1 => AdminReply::TraceDump(r.json::<Vec<rndi_obs::SpanRecord>>("trace dump")?),
            2 => AdminReply::Health(r.json::<rndi_obs::HealthSummary>("health summary")?),
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown admin reply kind {other}"
                )))
            }
        }),
        7 => EnvelopeBody::Gossip(match r.u8("gossip kind")? {
            0 => GossipRequest::Sync {
                from: r.member()?,
                entries: r.members()?,
                view: r.view_summary()?,
            },
            1 => GossipRequest::Group {
                group: r.str("gossip group")?,
                from: r.u64("gossip sender")?,
                wire: r.bytes("gossip frame")?.to_vec(),
            },
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown gossip kind {other}"
                )))
            }
        }),
        8 => EnvelopeBody::GossipOk(match r.u8("gossip reply kind")? {
            0 => GossipReply::Sync {
                entries: r.members()?,
                view: r.view_summary()?,
            },
            1 => GossipReply::Ack,
            other => {
                return Err(NamingError::service(format!(
                    "malformed envelope: unknown gossip reply kind {other}"
                )))
            }
        }),
        other => {
            return Err(NamingError::service(format!(
                "malformed envelope: unknown body tag {other}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(NamingError::service(format!(
            "malformed envelope: {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(Envelope { req_id, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use rndi_core::op::NamingOp;
    use rndi_core::value::BoundValue;

    fn roundtrip(env: &Envelope) -> Envelope {
        let bytes = encode_envelope(env).expect("encodes");
        decode_envelope(&bytes).expect("decodes")
    }

    #[test]
    fn ping_pong_roundtrip() {
        for body in [EnvelopeBody::Ping, EnvelopeBody::Pong] {
            let env = Envelope { req_id: 7, body };
            assert_eq!(roundtrip(&env), env);
        }
    }

    #[test]
    fn call_roundtrip_with_trace() {
        let mut op = NamingOp::rebind("a/b".into(), BoundValue::str("v"));
        op.meta.set("obs.trace", "1-2-0-0");
        let env = Envelope {
            req_id: 42,
            body: EnvelopeBody::Call {
                op: Box::new(proto::encode_op(&op).unwrap()),
                deadline_ms: 250,
                trace: Some(TraceCtx {
                    trace_id: 9,
                    span_id: 8,
                    parent_span: 7,
                    depth: 3,
                }),
            },
        };
        assert_eq!(roundtrip(&env), env);
    }

    #[test]
    fn hot_path_lookup_is_compact() {
        let op = proto::encode_op(&NamingOp::lookup("services/printer".into())).unwrap();
        let env = Envelope {
            req_id: 1,
            body: EnvelopeBody::Call {
                op: Box::new(op.clone()),
                deadline_ms: 5_000,
                trace: None,
            },
        };
        let bin = encode_envelope(&env).unwrap();
        let json = serde_json::to_vec(&proto::Request::Call {
            v: proto::PROTOCOL_V1,
            op: Box::new(op),
            deadline_ms: 5_000,
        })
        .unwrap();
        assert!(
            bin.len() < json.len(),
            "binary ({}) should undercut JSON ({})",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn admin_envelopes_roundtrip() {
        let snapshot = {
            let r = rndi_obs::Registry::new();
            r.counter("rndi_net_requests_total", &[("op", "lookup")])
                .add(5);
            r.histogram("rndi_net_request_duration_ns", &[("op", "lookup")])
                .record(1500);
            r.snapshot()
        };
        let span = rndi_obs::SpanRecord::new(
            &TraceCtx {
                trace_id: 11,
                span_id: 12,
                parent_span: 0,
                depth: 0,
            },
            "server",
            "net:hdns",
            "lookup",
            rndi_obs::SpanOutcome::Ok,
            std::time::Duration::from_micros(42),
        );
        let health = rndi_obs::HealthSummary {
            instance: "net:hdns".into(),
            uptime_ms: 1234,
            active_conns: 3,
            max_conns: 1024,
            requests_ok: 99,
            trace_spans: 7,
            trace_dropped: 1,
            ..Default::default()
        };
        let bodies = vec![
            EnvelopeBody::Admin(AdminRequest::Metrics),
            EnvelopeBody::Admin(AdminRequest::TraceDump {
                trace_id: 11,
                slowest: 0,
            }),
            EnvelopeBody::Admin(AdminRequest::TraceDump {
                trace_id: 0,
                slowest: 4,
            }),
            EnvelopeBody::Admin(AdminRequest::Health),
            EnvelopeBody::AdminOk(AdminReply::Metrics(snapshot)),
            EnvelopeBody::AdminOk(AdminReply::TraceDump(vec![span])),
            EnvelopeBody::AdminOk(AdminReply::Health(health)),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let env = Envelope {
                req_id: 100 + i as u64,
                body,
            };
            assert_eq!(roundtrip(&env), env);
        }
    }

    #[test]
    fn gossip_envelopes_roundtrip() {
        let me = MemberEntry {
            name: "node-0".into(),
            endpoint: "127.0.0.1:7000".into(),
            incarnation: 3,
            state: MemberState::Alive,
        };
        let peer = MemberEntry {
            name: "node-1".into(),
            endpoint: "127.0.0.1:7001".into(),
            incarnation: 9,
            state: MemberState::Suspect,
        };
        let view = ViewSummary {
            seq: 4,
            members: vec!["node-0".into(), "node-1".into()],
        };
        let bodies = vec![
            EnvelopeBody::Gossip(GossipRequest::Sync {
                from: me.clone(),
                entries: vec![me.clone(), peer.clone()],
                view: Some(view.clone()),
            }),
            EnvelopeBody::Gossip(GossipRequest::Sync {
                from: me,
                entries: vec![],
                view: None,
            }),
            EnvelopeBody::Gossip(GossipRequest::Group {
                group: "hdns".into(),
                from: 42,
                wire: vec![1, 2, 3, 255],
            }),
            EnvelopeBody::GossipOk(GossipReply::Sync {
                entries: vec![peer],
                view: Some(view),
            }),
            EnvelopeBody::GossipOk(GossipReply::Ack),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let env = Envelope {
                req_id: 500 + i as u64,
                body,
            };
            assert_eq!(roundtrip(&env), env);
        }
    }

    #[test]
    fn unknown_gossip_kinds_error_cleanly() {
        for (body_tag, kind) in [(7u8, 9u8), (8, 9)] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.push(body_tag);
            bytes.push(kind);
            let err = decode_envelope(&bytes).unwrap_err();
            assert!(
                format!("{err}").contains("unknown gossip"),
                "tag {body_tag}/{kind}: {err}"
            );
        }
    }

    #[test]
    fn hostile_member_count_fails_before_allocation() {
        // A Sync promising 4 billion members with no bytes behind it must
        // fail on the first row's bounds check, not allocate a table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u64.to_le_bytes()); // req id
        bytes.push(7); // Gossip
        bytes.push(0); // Sync
        bytes.extend_from_slice(&0u32.to_le_bytes()); // from.name = ""
        bytes.extend_from_slice(&0u32.to_le_bytes()); // from.endpoint = ""
        bytes.extend_from_slice(&1u64.to_le_bytes()); // incarnation
        bytes.push(0); // Alive
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile count
        assert!(decode_envelope(&bytes).is_err());
    }

    #[test]
    fn unknown_admin_kinds_error_cleanly() {
        for (body_tag, kind) in [(5u8, 9u8), (6, 9)] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.push(body_tag);
            bytes.push(kind);
            let err = decode_envelope(&bytes).unwrap_err();
            assert!(
                format!("{err}").contains("unknown admin"),
                "tag {body_tag}/{kind}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let env = Envelope {
            req_id: 3,
            body: EnvelopeBody::Pong,
        };
        let mut bytes = encode_envelope(&env).unwrap();
        bytes.push(0);
        assert!(decode_envelope(&bytes).is_err());
    }

    #[test]
    fn truncation_never_allocates_from_hostile_lengths() {
        // A string length promising 4 GiB with 2 bytes of input must fail
        // on the bounds check, not try to allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u64.to_le_bytes()); // req id
        bytes.push(4); // Err body
        bytes.push(8); // ServiceFailure
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // huge string len
        bytes.extend_from_slice(b"xy");
        assert!(decode_envelope(&bytes).is_err());
    }
}
