//! `NetServer`: hosts any [`ProviderBackend`] on a shard-per-core
//! nonblocking event loop.
//!
//! The accept thread classifies nothing and blocks on nothing: it hands
//! each new socket to one of `rndi.net.server.shards` worker shards in
//! round-robin order. Each shard owns its connections outright — no
//! cross-thread handoff per request — and drives them through the
//! sans-IO [`ServerConn`](crate::conn::ServerConn) state machine:
//! nonblocking reads feed the machine, decoded requests execute inline
//! against the backend, and responses drain from the machine's output
//! buffer back through nonblocking writes. Because one shard scans many
//! sockets, thousands of idle connections cost memory, not threads; an
//! adaptive backoff (spin → yield → escalating sleep) keeps an idle
//! shard off the CPU while keeping single-digit-microsecond reaction
//! when traffic resumes.
//!
//! Pipelined clients get pipelined service for free: every complete
//! frame buffered on a socket is decoded, executed, and answered in one
//! pass, so N queued requests cost one read wakeup and (at most) one
//! write flush.
//!
//! [`NetServer::shutdown`] drains: accepting stops, buffered requests
//! are answered, output buffers flush, then sockets close.
//! [`NetServer::abort`] is the unclean variant used by fault-injection
//! tests: it tears the sockets down mid-request.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::op::NamingOp;
use rndi_core::spi::ProviderBackend;
use rndi_obs::metrics::{global_registry, names, Registry};
use rndi_obs::{HealthSummary, SpanOutcome, SpanRecord, TraceCtx};

use crate::conn::{Inbound, InboundMsg, ResponseBody, ServerConn};
use crate::proto::{self, AdminReply, AdminRequest, GossipReply, GossipRequest};

/// Per-pass read budget per connection, so one firehose socket cannot
/// starve its shard siblings.
const READ_CHUNK: usize = 64 * 1024;

/// Idle passes a shard spin-yields before it starts sleeping.
const SPIN_PASSES: u32 = 1_500;

/// Ceiling for the escalating idle sleep.
const MAX_IDLE_SLEEP: Duration = Duration::from_millis(1);

/// How long a draining shard keeps trying to flush response bytes.
const DRAIN_FLUSH_BUDGET: Duration = Duration::from_millis(500);

/// Multiplicative decrease the adaptive admission bound takes on a
/// deadline signal (an op expired in queue or overran its budget).
const AIMD_DECREASE: f64 = 0.7;

/// Floor of the adaptive admission bound: never stop admitting entirely.
const AIMD_MIN_LIMIT: f64 = 1.0;

/// Weight of the newest sample in the service-time EMA that prices the
/// `retry_after_ms` hints.
const SERVICE_EMA_ALPHA: f64 = 0.1;

/// Ceiling on any `retry_after_ms` hint the server emits.
const MAX_RETRY_AFTER_MS: f64 = 10_000.0;

/// Resolved server configuration (see the `rndi.net.*` environment keys).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// `host:port` to listen on; port `0` binds ephemerally.
    pub listen: String,
    /// Maximum concurrently served connections.
    pub max_conns: usize,
    /// Per-request deadline budget in milliseconds; `0` disables.
    pub deadline_ms: u64,
    /// Event-loop shards; `0` sizes to `min(available cores, 4)`.
    pub shards: usize,
    /// Per-shard admission-queue bound: calls beyond this many waiting are
    /// shed with `Overloaded` instead of queueing past their deadline.
    /// `0` (the default) leaves the queue unbounded and keeps the
    /// pre-admission execute-inline fast path.
    pub queue_depth: usize,
    /// Per-connection token-bucket refill, ops per second; `0` disables
    /// rate limiting.
    pub rate_ops: u64,
    /// Token-bucket burst capacity; `0` means `rate_ops`.
    pub rate_burst: u64,
    /// Run the AIMD adaptive admission controller (needs `queue_depth > 0`
    /// to have a bound to adapt).
    pub adaptive: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            max_conns: 64,
            deadline_ms: 5_000,
            shards: 0,
            queue_depth: 0,
            rate_ops: 0,
            rate_burst: 0,
            adaptive: false,
        }
    }
}

impl ServerConfig {
    /// Read the `rndi.net.*` keys strictly: a present-but-unparsable value
    /// is a [`NamingError::ConfigurationError`], not a silent default.
    pub fn from_env(env: &Environment) -> Result<ServerConfig> {
        Ok(ServerConfig {
            listen: env
                .get(keys::NET_LISTEN)
                .unwrap_or("127.0.0.1:0")
                .to_string(),
            max_conns: env.try_get_u64(keys::NET_SERVER_MAX_CONNS, 64)? as usize,
            deadline_ms: env.try_get_u64(keys::NET_DEADLINE_MS, 5_000)?,
            shards: env.try_get_u64(keys::NET_SERVER_SHARDS, 0)? as usize,
            queue_depth: env.try_get_u64(keys::NET_SERVER_QUEUE_DEPTH, 0)? as usize,
            rate_ops: env.try_get_u64(keys::NET_SERVER_RATE_OPS, 0)?,
            rate_burst: env.try_get_u64(keys::NET_SERVER_RATE_BURST, 0)?,
            adaptive: env.try_get_bool(keys::NET_SERVER_ADAPTIVE, false)?,
        })
    }

    fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 4)
    }
}

struct ServerState {
    backend: Arc<dyn ProviderBackend>,
    label: Arc<str>,
    config: ServerConfig,
    /// Where this server's instruments live. Defaults to the process
    /// global; `serve_sharded` hands each shard its own registry so a
    /// remote scrape sees per-instance series, not a process-wide blur.
    registry: Arc<Registry>,
    started: Instant,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// Live sockets, for `abort` to tear down mid-request.
    conns: Mutex<Vec<TcpStream>>,
    /// Shard inboxes, kept for the health probe: their depth is the
    /// accepted-but-not-yet-adopted backlog.
    inboxes: Vec<Arc<ShardInbox>>,
    /// Per-shard admission-queue depths, mirrored out of each shard's
    /// event loop so the health probe can sum them without touching it.
    queue_depths: Vec<Arc<AtomicU64>>,
    /// Per-shard effective admission bounds (0 = unbounded), mirrored the
    /// same way.
    conc_limits: Vec<Arc<AtomicU64>>,
    /// Shed counters by reason, indexed by [`ShedReason`].
    shed: [Arc<rndi_obs::Counter>; 3],
    /// Per-op-kind request instruments, resolved once — a registry lookup
    /// allocates label strings under a global lock, far too expensive on
    /// the per-request path.
    req_instruments: Mutex<HashMap<String, ReqInstruments>>,
    /// Serves `Gossip` envelopes when a cluster membership plane attached
    /// itself; otherwise gossip requests answer a typed error.
    gossip: Mutex<Option<Arc<dyn GossipHandler>>>,
    /// Membership figures the attached plane keeps current, folded into
    /// the `Admin(Health)` answer.
    membership: Arc<MembershipStats>,
}

/// Serves the v2 `Gossip` request family — membership sync exchanges and
/// ferried group-communication frames. Runs inline on the shard event
/// loop, so implementations must be quick and never block on the network.
pub trait GossipHandler: Send + Sync {
    fn handle(&self, req: GossipRequest) -> GossipReply;
}

/// Membership figures a cluster plane publishes for the health probe —
/// plain atomics so `Admin(Health)` stays lock-free and nodes without a
/// plane report zeros.
#[derive(Default)]
pub struct MembershipStats {
    pub view_epoch: AtomicU64,
    pub alive: AtomicU64,
    pub suspect: AtomicU64,
    pub dead: AtomicU64,
}

#[derive(Clone)]
struct ReqInstruments {
    ok: Arc<rndi_obs::Counter>,
    err: Arc<rndi_obs::Counter>,
    duration: Arc<rndi_obs::metrics::Histogram>,
}

impl ServerState {
    fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<rndi_obs::Counter> {
        let mut all = vec![("server", &*self.label)];
        all.extend_from_slice(labels);
        self.registry.counter(name, &all)
    }

    /// The ok/err counters and duration histogram for one op kind.
    fn req_instruments(&self, op_label: &str) -> ReqInstruments {
        if let Some(found) = self.req_instruments.lock().get(op_label) {
            return found.clone();
        }
        let made = ReqInstruments {
            ok: self.counter(names::NET_REQUESTS, &[("op", op_label), ("outcome", "ok")]),
            err: self.counter(names::NET_REQUESTS, &[("op", op_label), ("outcome", "err")]),
            duration: self.registry.histogram(
                names::NET_REQUEST_DURATION,
                &[("server", &self.label), ("op", op_label)],
            ),
        };
        self.req_instruments
            .lock()
            .entry(op_label.to_string())
            .or_insert(made)
            .clone()
    }

    /// One self-contained health probe, cheap enough to serve inline on
    /// the event loop: everything reads atomics or short-held locks.
    fn health(&self) -> HealthSummary {
        let (mut ok, mut err) = (0u64, 0u64);
        for inst in self.req_instruments.lock().values() {
            ok += inst.ok.get();
            err += inst.err.get();
        }
        let inbox_depth = self
            .inboxes
            .iter()
            .map(|inbox| inbox.incoming.lock().len() as u64)
            .sum();
        let ring = rndi_obs::trace::ring();
        HealthSummary {
            instance: self.label.to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            active_conns: self.active.load(Ordering::Relaxed) as u64,
            max_conns: self.config.max_conns as u64,
            inbox_depth,
            requests_ok: ok,
            requests_err: err,
            trace_spans: ring.len() as u64,
            trace_dropped: ring.dropped(),
            queue_depth: self
                .queue_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum(),
            concurrency_limit: self
                .conc_limits
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .sum(),
            shed_total: self.shed.iter().map(|c| c.get()).sum(),
            view_epoch: self.membership.view_epoch.load(Ordering::Relaxed),
            members_alive: self.membership.alive.load(Ordering::Relaxed),
            members_suspect: self.membership.suspect.load(Ordering::Relaxed),
            members_dead: self.membership.dead.load(Ordering::Relaxed),
        }
    }
}

/// Why the admission layer refused a call before dispatch; doubles as
/// the index into `ServerState::shed`.
#[derive(Clone, Copy)]
enum ShedReason {
    /// The shard's admission queue was at its (possibly adaptive) bound.
    Queue = 0,
    /// The connection's token bucket was empty.
    Rate = 1,
    /// The call's deadline budget was spent while it waited in queue.
    Deadline = 2,
}

/// One connection owned by a shard: the socket plus its protocol state
/// machine.
struct ShardConn {
    /// Stable handle queued [`Pending`] entries point back at; unique
    /// within the owning shard for the server's life.
    id: u64,
    stream: TcpStream,
    machine: ServerConn,
    /// Admission rate limiter, present when `rate_ops > 0`.
    bucket: Option<TokenBucket>,
}

/// Per-connection token bucket: `rate` tokens/sec refill up to `burst`.
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    fn new(rate_ops: u64, rate_burst: u64) -> TokenBucket {
        let rate = rate_ops as f64;
        let burst = if rate_burst == 0 {
            rate
        } else {
            rate_burst as f64
        }
        .max(1.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            refilled: Instant::now(),
        }
    }

    /// Take one token, or say how many milliseconds until one refills.
    fn try_take(&mut self) -> std::result::Result<(), u64> {
        let now = Instant::now();
        let refill = now.duration_since(self.refilled).as_secs_f64() * self.rate;
        self.tokens = (self.tokens + refill).min(self.burst);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let wait_s = (1.0 - self.tokens) / self.rate.max(f64::EPSILON);
            Err((wait_s * 1_000.0).ceil().clamp(1.0, MAX_RETRY_AFTER_MS) as u64)
        }
    }
}

/// One admitted call parked in a shard's admission queue.
struct Pending {
    conn_id: u64,
    req_id: u64,
    op: Box<proto::WireOp>,
    deadline_ms: u64,
    trace: Option<TraceCtx>,
    /// When admission accepted the call; queue wait counts against the
    /// op's deadline budget from here.
    admitted: Instant,
}

/// Per-shard admission control: the bounded call queue, the AIMD bound,
/// and the service-time estimate that prices `retry_after_ms` hints.
///
/// Each shard is a serial executor, so a bound on *waiting* calls is the
/// shard's concurrency limit: by Little's law it caps queue wait at
/// roughly `bound × service time`, which the controller walks down until
/// admitted calls stop missing their deadlines.
struct Admission {
    queue: VecDeque<Pending>,
    /// Configured queue bound; `0` = unbounded (admission off).
    configured: usize,
    adaptive: bool,
    /// Current AIMD bound, `AIMD_MIN_LIMIT ..= configured`.
    limit: f64,
    /// EMA of backend service time, milliseconds.
    ema_service_ms: f64,
    depth_gauge: Arc<rndi_obs::metrics::Gauge>,
    limit_gauge: Arc<rndi_obs::metrics::Gauge>,
    depth_mirror: Arc<AtomicU64>,
    limit_mirror: Arc<AtomicU64>,
}

impl Admission {
    fn new(state: &ServerState, shard: usize) -> Admission {
        let shard_label = shard.to_string();
        let labels: &[(&str, &str)] = &[("server", &state.label), ("shard", &shard_label)];
        let configured = state.config.queue_depth;
        let admission = Admission {
            queue: VecDeque::new(),
            configured,
            adaptive: state.config.adaptive && configured > 0,
            limit: configured.max(1) as f64,
            ema_service_ms: 0.0,
            depth_gauge: state.registry.gauge(names::NET_QUEUE_DEPTH, labels),
            limit_gauge: state.registry.gauge(names::NET_CONCURRENCY_LIMIT, labels),
            depth_mirror: state.queue_depths[shard].clone(),
            limit_mirror: state.conc_limits[shard].clone(),
        };
        admission.publish();
        admission
    }

    /// Whether calls route through the queue at all. Off (the default)
    /// keeps the pre-existing execute-inline fast path.
    fn engaged(&self) -> bool {
        self.configured > 0
    }

    /// The effective bound on waiting calls right now.
    fn bound(&self) -> usize {
        if self.adaptive {
            self.limit.max(AIMD_MIN_LIMIT) as usize
        } else {
            self.configured
        }
    }

    /// Mirror queue depth and bound into the gauges and health atomics.
    fn publish(&self) {
        let depth = self.queue.len() as u64;
        self.depth_gauge.set(depth as i64);
        self.depth_mirror.store(depth, Ordering::Relaxed);
        let bound = if self.engaged() {
            self.bound() as u64
        } else {
            0
        };
        self.limit_gauge.set(bound as i64);
        self.limit_mirror.store(bound, Ordering::Relaxed);
    }

    /// Backoff hint for a shed caller: roughly one queue's worth of
    /// estimated service time.
    fn retry_after_ms(&self) -> u64 {
        let per_op = self.ema_service_ms.max(1.0);
        (self.queue.len().max(1) as f64 * per_op).clamp(1.0, MAX_RETRY_AFTER_MS) as u64
    }

    fn observe_service(&mut self, took: Duration) {
        let ms = took.as_secs_f64() * 1_000.0;
        self.ema_service_ms = if self.ema_service_ms == 0.0 {
            ms
        } else {
            self.ema_service_ms * (1.0 - SERVICE_EMA_ALPHA) + ms * SERVICE_EMA_ALPHA
        };
    }

    /// Additive increase: an in-budget completion earns capacity back,
    /// slower the closer the bound already is (1/limit per completion).
    fn on_in_budget(&mut self) {
        if self.adaptive {
            let ceiling = self.configured as f64;
            self.limit = (self.limit + 1.0 / self.limit.max(1.0)).min(ceiling);
        }
    }

    /// Multiplicative decrease on a deadline signal: admitted work is
    /// expiring, so the admission window is too wide.
    fn on_deadline_signal(&mut self) {
        if self.adaptive {
            self.limit = (self.limit * AIMD_DECREASE).max(AIMD_MIN_LIMIT);
        }
    }
}

/// The accept thread parks new sockets here; the owning shard adopts
/// them at the top of its next pass.
struct ShardInbox {
    incoming: Mutex<Vec<TcpStream>>,
}

/// A running TCP server hosting one backend (typically a fully-assembled
/// [`ProviderPipeline`](rndi_core::spi::ProviderPipeline), so cache, retry
/// and obs layers run server-side too).
pub struct NetServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind and start serving `backend` with configuration from `env`.
    pub fn bind(backend: Arc<dyn ProviderBackend>, env: &Environment) -> Result<NetServer> {
        Self::with_config(backend, ServerConfig::from_env(env)?)
    }

    /// Bind and start serving with an explicit configuration. Instruments
    /// land in the process-global registry.
    pub fn with_config(
        backend: Arc<dyn ProviderBackend>,
        config: ServerConfig,
    ) -> Result<NetServer> {
        Self::with_registry(backend, config, global_registry())
    }

    /// Bind and start serving with an explicit configuration and a
    /// dedicated metrics registry. A multi-shard host gives each server
    /// its own registry so `Admin(Metrics)` scrapes stay per-instance.
    pub fn with_registry(
        backend: Arc<dyn ProviderBackend>,
        config: ServerConfig,
        registry: Arc<Registry>,
    ) -> Result<NetServer> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| NamingError::service(format!("bind {}: {e}", config.listen)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NamingError::service(format!("listener setup: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| NamingError::service(format!("listener addr: {e}")))?;
        let label = format!("net:{}", backend.provider_id());
        let shard_count = config.effective_shards();
        let inboxes: Vec<Arc<ShardInbox>> = (0..shard_count)
            .map(|_| {
                Arc::new(ShardInbox {
                    incoming: Mutex::new(Vec::new()),
                })
            })
            .collect();
        let shed = [
            registry.counter(names::NET_SHED, &[("server", &label), ("reason", "queue")]),
            registry.counter(names::NET_SHED, &[("server", &label), ("reason", "rate")]),
            registry.counter(
                names::NET_SHED,
                &[("server", &label), ("reason", "deadline")],
            ),
        ];
        let state = Arc::new(ServerState {
            backend,
            label: label.into(),
            config,
            registry,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            inboxes: inboxes.clone(),
            queue_depths: (0..shard_count)
                .map(|_| Arc::new(AtomicU64::new(0)))
                .collect(),
            conc_limits: (0..shard_count)
                .map(|_| Arc::new(AtomicU64::new(0)))
                .collect(),
            shed,
            req_instruments: Mutex::new(HashMap::new()),
            gossip: Mutex::new(None),
            membership: Arc::new(MembershipStats::default()),
        });
        let mut threads = Vec::with_capacity(shard_count + 1);
        for (shard, inbox) in inboxes.iter().enumerate() {
            let state = state.clone();
            let inbox = inbox.clone();
            threads.push(std::thread::spawn(move || shard_loop(state, inbox, shard)));
        }
        {
            let state = state.clone();
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, state, inboxes)
            }));
        }
        Ok(NetServer {
            addr,
            state,
            threads,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry label (`net:<backend provider id>`).
    pub fn label(&self) -> &str {
        &self.state.label
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::Relaxed)
    }

    /// The registry this server's instruments land in.
    pub fn registry(&self) -> Arc<Registry> {
        self.state.registry.clone()
    }

    /// The health summary this server would answer to `Admin(Health)`.
    pub fn health(&self) -> HealthSummary {
        self.state.health()
    }

    /// Attach a cluster membership plane: `handler` answers the v2
    /// `Gossip` request family on this server's data sockets.
    pub fn set_gossip_handler(&self, handler: Arc<dyn GossipHandler>) {
        *self.state.gossip.lock() = Some(handler);
    }

    /// The membership figures folded into `Admin(Health)`; a cluster
    /// plane keeps them current.
    pub fn membership_stats(&self) -> Arc<MembershipStats> {
        self.state.membership.clone()
    }

    /// Graceful shutdown: stop accepting, answer buffered requests, flush
    /// responses, close every connection, and join all server threads.
    pub fn shutdown(mut self) {
        self.stop(false);
    }

    /// Unclean shutdown: tear sockets down immediately, mid-request if
    /// need be. Fault-injection tests use this to simulate a server crash.
    pub fn abort(mut self) {
        self.stop(true);
    }

    fn stop(&mut self, abort: bool) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if abort {
            for conn in self.state.conns.lock().iter() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.state.conns.lock().clear();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop(false);
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, inboxes: Vec<Arc<ShardInbox>>) {
    let active_gauge = state
        .registry
        .gauge(names::NET_ACTIVE_CONNS, &[("server", &state.label)]);
    let mut next_shard = 0usize;
    let mut idle = Backoff::new();
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                idle.reset();
                if state.active.load(Ordering::SeqCst) >= state.config.max_conns {
                    state
                        .counter(names::NET_CONNS, &[("event", "refused")])
                        .inc();
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                state
                    .counter(names::NET_CONNS, &[("event", "accepted")])
                    .inc();
                state.active.fetch_add(1, Ordering::SeqCst);
                active_gauge.add(1);
                if let Ok(clone) = stream.try_clone() {
                    state.conns.lock().push(clone);
                }
                inboxes[next_shard].incoming.lock().push(stream);
                next_shard = (next_shard + 1) % inboxes.len();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => idle.pause(),
            Err(_) => break,
        }
    }
}

/// Adaptive idle backoff: spin-yield while traffic is recent, then sleep
/// with an escalating interval. Keeps reaction latency in the microsecond
/// range for active connections and CPU near zero for idle ones.
struct Backoff {
    idle_passes: u32,
}

impl Backoff {
    fn new() -> Backoff {
        Backoff { idle_passes: 0 }
    }

    fn reset(&mut self) {
        self.idle_passes = 0;
    }

    fn pause(&mut self) {
        self.idle_passes = self.idle_passes.saturating_add(1);
        if self.idle_passes <= SPIN_PASSES {
            std::thread::yield_now();
        } else {
            let over = (self.idle_passes - SPIN_PASSES) as u64;
            let sleep = Duration::from_micros(50).saturating_mul(over.min(20) as u32);
            std::thread::sleep(sleep.min(MAX_IDLE_SLEEP));
        }
    }
}

fn shard_loop(state: Arc<ServerState>, inbox: Arc<ShardInbox>, shard: usize) {
    let active_gauge = state
        .registry
        .gauge(names::NET_ACTIVE_CONNS, &[("server", &state.label)]);
    let bytes_in = state.counter(names::NET_BYTES, &[("dir", "in")]);
    let bytes_out = state.counter(names::NET_BYTES, &[("dir", "out")]);
    let mut conns: Vec<ShardConn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut idle = Backoff::new();
    let mut admission = Admission::new(&state, shard);
    let mut next_conn_id: u64 = 0;

    while !state.shutdown.load(Ordering::SeqCst) {
        {
            let mut incoming = inbox.incoming.lock();
            for stream in incoming.drain(..) {
                next_conn_id += 1;
                conns.push(ShardConn {
                    id: next_conn_id,
                    stream,
                    machine: ServerConn::new(),
                    bucket: (state.config.rate_ops > 0)
                        .then(|| TokenBucket::new(state.config.rate_ops, state.config.rate_burst)),
                });
            }
        }
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            match drive_conn(
                &state,
                &mut conns[i],
                &mut admission,
                &mut scratch,
                &bytes_in,
                &bytes_out,
            ) {
                Ok(moved) => {
                    progress |= moved;
                    i += 1;
                }
                Err(_) => {
                    // Peer hung up, sent garbage framing, or spoke an
                    // unsupported protocol version: drop the connection.
                    conns.swap_remove(i);
                    state.active.fetch_sub(1, Ordering::SeqCst);
                    active_gauge.add(-1);
                    progress = true;
                }
            }
        }
        progress |= drain_admitted(&state, &mut admission, &mut conns, &bytes_out);
        if progress {
            idle.reset();
        } else {
            idle.pause();
        }
    }

    // Drain: answer whatever is already buffered and flush responses out
    // before closing, bounded so a stuck peer cannot wedge shutdown.
    drain_admitted(&state, &mut admission, &mut conns, &bytes_out);
    let deadline = Instant::now() + DRAIN_FLUSH_BUDGET;
    for conn in &mut conns {
        while !conn.machine.pending_out().is_empty() && Instant::now() < deadline {
            match conn.stream.write(conn.machine.pending_out()) {
                Ok(0) => break,
                Ok(n) => {
                    bytes_out.add(n as u64);
                    conn.machine.consume_out(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        state.active.fetch_sub(1, Ordering::SeqCst);
        active_gauge.add(-1);
    }
}

/// One event-loop pass over one connection: flush queued output, read
/// whatever the socket has, execute every complete request, flush again.
/// Returns whether any bytes moved; an `Err` means the connection is done.
fn drive_conn(
    state: &ServerState,
    conn: &mut ShardConn,
    admission: &mut Admission,
    scratch: &mut [u8],
    bytes_in: &Arc<rndi_obs::Counter>,
    bytes_out: &Arc<rndi_obs::Counter>,
) -> std::io::Result<bool> {
    let mut moved = flush_out(conn, bytes_out)?;

    // Read at most READ_CHUNK per pass so shard siblings stay served.
    let mut read_total = 0;
    let mut eof = false;
    while read_total < scratch.len() {
        match conn.stream.read(&mut scratch[read_total..]) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => read_total += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if read_total > 0 {
        moved = true;
        bytes_in.add(read_total as u64);
        let inbound = conn
            .machine
            .receive(&scratch[..read_total])
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        for req in inbound {
            respond(state, conn, admission, req)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        }
        flush_out(conn, bytes_out)?;
    }
    if eof {
        return Err(ErrorKind::UnexpectedEof.into());
    }
    Ok(moved)
}

/// Execute every queued call FIFO, shedding entries whose deadline budget
/// was spent waiting. Runs after the read sweep so one pass admits from
/// every connection before any queued work runs. Returns whether
/// anything ran or was answered.
fn drain_admitted(
    state: &ServerState,
    admission: &mut Admission,
    conns: &mut [ShardConn],
    bytes_out: &Arc<rndi_obs::Counter>,
) -> bool {
    if admission.queue.is_empty() {
        return false;
    }
    let mut progress = false;
    while let Some(entry) = admission.queue.pop_front() {
        // The peer may have hung up while its call queued.
        let Some(conn) = conns.iter_mut().find(|c| c.id == entry.conn_id) else {
            continue;
        };
        let deadline = effective_deadline(entry.deadline_ms, state.config.deadline_ms);
        let body = match deadline {
            Some(budget) if entry.admitted.elapsed() >= budget => {
                // The budget was spent in queue: reject cheaply instead of
                // computing an answer nobody is still waiting for.
                state.shed[ShedReason::Deadline as usize].inc();
                admission.on_deadline_signal();
                ResponseBody::Err(proto::WireError::Overloaded {
                    retry_after_ms: admission.retry_after_ms(),
                })
            }
            _ => {
                let started = Instant::now();
                let body = handle_call(
                    state,
                    &entry.op,
                    entry.deadline_ms,
                    entry.trace,
                    entry.admitted,
                );
                admission.observe_service(started.elapsed());
                match &body {
                    ResponseBody::Ok(_) => admission.on_in_budget(),
                    ResponseBody::Err(proto::WireError::Timeout { .. }) => {
                        admission.on_deadline_signal()
                    }
                    _ => {}
                }
                body
            }
        };
        progress = true;
        if conn.machine.push_response(entry.req_id, body).is_ok() {
            // Best-effort flush; a broken socket surfaces on the next
            // sweep's drive_conn and drops the connection there.
            let _ = flush_out(conn, bytes_out);
        }
    }
    admission.publish();
    progress
}

fn flush_out(conn: &mut ShardConn, bytes_out: &Arc<rndi_obs::Counter>) -> std::io::Result<bool> {
    let mut moved = false;
    while !conn.machine.pending_out().is_empty() {
        match conn.stream.write(conn.machine.pending_out()) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => {
                moved = true;
                bytes_out.add(n as u64);
                conn.machine.consume_out(n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(moved)
}

/// Route one decoded request: pings, admin scrapes, and malformed frames
/// are answered inline (bounded work); calls go through admission — shed
/// immediately, queued for [`drain_admitted`], or, with admission off,
/// executed inline exactly as before.
///
/// Shed responses can overtake queued ones from the same socket; that is
/// fine for the v2 mux (responses match by id) and unobservable for the
/// lock-step v1 client (it never has two calls in flight).
fn respond(
    state: &ServerState,
    conn: &mut ShardConn,
    admission: &mut Admission,
    req: Inbound,
) -> Result<()> {
    let body = match req.msg {
        InboundMsg::Ping => ResponseBody::Pong,
        InboundMsg::Call {
            op,
            deadline_ms,
            trace,
        } => {
            if let Some(bucket) = conn.bucket.as_mut() {
                if let Err(retry_after_ms) = bucket.try_take() {
                    state.shed[ShedReason::Rate as usize].inc();
                    return conn.machine.push_response(
                        req.req_id,
                        ResponseBody::Err(proto::WireError::Overloaded { retry_after_ms }),
                    );
                }
            }
            if admission.engaged() {
                if admission.queue.len() >= admission.bound() {
                    state.shed[ShedReason::Queue as usize].inc();
                    ResponseBody::Err(proto::WireError::Overloaded {
                        retry_after_ms: admission.retry_after_ms(),
                    })
                } else {
                    admission.queue.push_back(Pending {
                        conn_id: conn.id,
                        req_id: req.req_id,
                        op,
                        deadline_ms,
                        trace,
                        admitted: Instant::now(),
                    });
                    admission.publish();
                    return Ok(());
                }
            } else {
                handle_call(state, &op, deadline_ms, trace, Instant::now())
            }
        }
        InboundMsg::Admin(admin) => ResponseBody::Admin(handle_admin(state, admin)),
        InboundMsg::Gossip(req) => {
            let handler = state.gossip.lock().clone();
            match handler {
                Some(h) => ResponseBody::Gossip(h.handle(req)),
                None => ResponseBody::Err(proto::encode_error(&NamingError::service(
                    "no cluster membership plane on this node",
                ))),
            }
        }
        InboundMsg::Malformed(e) => ResponseBody::Err(proto::encode_error(&e)),
    };
    conn.machine.push_response(req.req_id, body)
}

/// Serve a telemetry request inline on the event loop. Every variant is
/// bounded work: a registry snapshot, a ring scan, or an atomic sweep.
fn handle_admin(state: &ServerState, req: AdminRequest) -> AdminReply {
    match req {
        AdminRequest::Metrics => AdminReply::Metrics(state.registry.snapshot()),
        AdminRequest::TraceDump { trace_id, slowest } => {
            let ring = rndi_obs::trace::ring();
            let spans = if trace_id != 0 {
                ring.trace(trace_id)
            } else if slowest != 0 {
                // Full traces of the N slowest roots, deduped across
                // traces that share spans (they shouldn't, but the ring
                // is best-effort evidence, not a ledger).
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for root in ring.slowest_roots(slowest as usize) {
                    for span in ring.trace(root.trace_id) {
                        if seen.insert(span.span_id) {
                            out.push(span);
                        }
                    }
                }
                out
            } else {
                ring.snapshot()
            };
            AdminReply::TraceDump(spans)
        }
        AdminRequest::Health => AdminReply::Health(state.health()),
    }
}

/// Execute one admitted call. `start` is when the op's budget clock began
/// — admission time for queued calls, so queue wait counts against the
/// deadline and shows in the duration histogram the client's latency
/// percentiles are derived from.
fn handle_call(
    state: &ServerState,
    wire_op: &proto::WireOp,
    deadline_ms: u64,
    transport_ctx: Option<TraceCtx>,
    start: Instant,
) -> ResponseBody {
    let instruments = state.req_instruments(&wire_op.kind);
    let result = dispatch_call(state, wire_op, deadline_ms, transport_ctx, start);
    let took = start.elapsed();
    if result.is_ok() {
        instruments.ok.inc();
    } else {
        instruments.err.inc();
    }
    instruments.duration.record_duration(took);
    match result {
        Ok(out) => ResponseBody::Ok(out),
        Err(e) => ResponseBody::Err(proto::encode_error(&e)),
    }
}

fn dispatch_call(
    state: &ServerState,
    wire_op: &proto::WireOp,
    deadline_ms: u64,
    transport_ctx: Option<TraceCtx>,
    start: Instant,
) -> Result<proto::WireOutcome> {
    let mut op = proto::decode_op(wire_op)?;
    // Prefer the op-meta context (set by the client's span), falling back
    // to the transport-level context (the v1 frame header or the v2
    // envelope field); record a "server" span as its child and re-annotate
    // so the backend pipeline's spans nest under this one.
    let inbound = op.trace_ctx().or(transport_ctx);
    let server_ctx = match &inbound {
        Some(parent) => parent.child(),
        None => TraceCtx::root(),
    };
    op.set_trace_ctx(&server_ctx);
    let deadline = effective_deadline(deadline_ms, state.config.deadline_ms);
    let result = run_with_deadline(state, &op, deadline, start);
    let span_outcome = match &result {
        Ok(_) => SpanOutcome::Ok,
        Err(e) if e.is_continue() => SpanOutcome::Continue,
        Err(_) => SpanOutcome::Err,
    };
    rndi_obs::trace::record(SpanRecord::new(
        &server_ctx,
        "server",
        state.label.clone(),
        op.kind.label(),
        span_outcome,
        start.elapsed(),
    ));
    result.and_then(|out| proto::encode_outcome(&out))
}

/// The stricter of the client's request budget and the server's own cap
/// (`0` on either side = that side imposes none).
fn effective_deadline(client_ms: u64, server_ms: u64) -> Option<Duration> {
    match (client_ms, server_ms) {
        (0, 0) => None,
        (0, s) => Some(Duration::from_millis(s)),
        (c, 0) => Some(Duration::from_millis(c)),
        (c, s) => Some(Duration::from_millis(c.min(s))),
    }
}

fn run_with_deadline(
    state: &ServerState,
    op: &NamingOp,
    deadline: Option<Duration>,
    start: Instant,
) -> Result<rndi_core::op::OpOutcome> {
    if let Some(budget) = deadline {
        if start.elapsed() >= budget {
            return Err(NamingError::Timeout {
                detail: format!("request expired before dispatch ({budget:?} budget)"),
            });
        }
    }
    let result = state.backend.execute(op);
    if let Some(budget) = deadline {
        if start.elapsed() > budget {
            // The op may have landed; deadline semantics report the miss
            // (the client's socket timeout has likely fired anyway).
            return Err(NamingError::Timeout {
                detail: format!("request exceeded its {budget:?} deadline"),
            });
        }
    }
    result
}
