//! `NetServer`: hosts any [`ProviderBackend`] behind a TCP listener.
//!
//! Thread-per-connection with a bounded connection count: the accept loop
//! refuses connections past `rndi.net.server.max-conns` instead of
//! queueing them, so a stalled client cannot exhaust server threads.
//! Each connection thread polls its socket with a short read timeout and
//! re-checks the shutdown flag between frames, which gives
//! [`NetServer::shutdown`] drain semantics (in-flight requests finish,
//! idle connections close). [`NetServer::abort`] is the unclean variant
//! used by fault-injection tests: it tears the sockets down mid-request.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::op::NamingOp;
use rndi_core::spi::ProviderBackend;
use rndi_obs::metrics::{self, names};
use rndi_obs::{SpanOutcome, SpanRecord, TraceCtx};

use crate::proto::{self, Request, Response};

/// How often blocked reads wake up to re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Resolved server configuration (see the `rndi.net.*` environment keys).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// `host:port` to listen on; port `0` binds ephemerally.
    pub listen: String,
    /// Maximum concurrently served connections.
    pub max_conns: usize,
    /// Per-request deadline budget in milliseconds; `0` disables.
    pub deadline_ms: u64,
}

impl ServerConfig {
    /// Read the `rndi.net.*` keys strictly: a present-but-unparsable value
    /// is a [`NamingError::ConfigurationError`], not a silent default.
    pub fn from_env(env: &Environment) -> Result<ServerConfig> {
        Ok(ServerConfig {
            listen: env
                .get(keys::NET_LISTEN)
                .unwrap_or("127.0.0.1:0")
                .to_string(),
            max_conns: env.try_get_u64(keys::NET_SERVER_MAX_CONNS, 64)? as usize,
            deadline_ms: env.try_get_u64(keys::NET_DEADLINE_MS, 5_000)?,
        })
    }
}

struct ServerState {
    backend: Arc<dyn ProviderBackend>,
    label: String,
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// Live sockets, for `abort` to tear down mid-request.
    conns: Mutex<Vec<TcpStream>>,
}

impl ServerState {
    fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<rndi_obs::Counter> {
        let mut all = vec![("server", self.label.as_str())];
        all.extend_from_slice(labels);
        metrics::counter(name, &all)
    }
}

/// A running TCP server hosting one backend (typically a fully-assembled
/// [`ProviderPipeline`](rndi_core::spi::ProviderPipeline), so cache, retry
/// and obs layers run server-side too).
pub struct NetServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind and start serving `backend` with configuration from `env`.
    pub fn bind(backend: Arc<dyn ProviderBackend>, env: &Environment) -> Result<NetServer> {
        Self::with_config(backend, ServerConfig::from_env(env)?)
    }

    /// Bind and start serving with an explicit configuration.
    pub fn with_config(
        backend: Arc<dyn ProviderBackend>,
        config: ServerConfig,
    ) -> Result<NetServer> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| NamingError::service(format!("bind {}: {e}", config.listen)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NamingError::service(format!("listener setup: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| NamingError::service(format!("listener addr: {e}")))?;
        let label = format!("net:{}", backend.provider_id());
        let state = Arc::new(ServerState {
            backend,
            label,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = state.clone();
            let workers = workers.clone();
            std::thread::spawn(move || accept_loop(listener, state, workers))
        };
        Ok(NetServer {
            addr,
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry label (`net:<backend provider id>`).
    pub fn label(&self) -> &str {
        &self.state.label
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// close every connection, and join all server threads.
    pub fn shutdown(mut self) {
        self.stop(false);
    }

    /// Unclean shutdown: tear sockets down immediately, mid-request if
    /// need be. Fault-injection tests use this to simulate a server crash.
    pub fn abort(mut self) {
        self.stop(true);
    }

    fn stop(&mut self, abort: bool) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if abort {
            for conn in self.state.conns.lock().iter() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
        self.state.conns.lock().clear();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop(false);
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let active_gauge = metrics::gauge(names::NET_ACTIVE_CONNS, &[("server", &state.label)]);
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.active.load(Ordering::SeqCst) >= state.config.max_conns {
                    state
                        .counter(names::NET_CONNS, &[("event", "refused")])
                        .inc();
                    drop(stream);
                    continue;
                }
                state
                    .counter(names::NET_CONNS, &[("event", "accepted")])
                    .inc();
                state.active.fetch_add(1, Ordering::SeqCst);
                active_gauge.add(1);
                if let Ok(clone) = stream.try_clone() {
                    state.conns.lock().push(clone);
                }
                let conn_state = state.clone();
                let gauge = active_gauge.clone();
                let handle = std::thread::spawn(move || {
                    serve_connection(stream, &conn_state);
                    conn_state.active.fetch_sub(1, Ordering::SeqCst);
                    gauge.add(-1);
                });
                workers.lock().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Fill `buf` from a socket whose read timeout is [`POLL_INTERVAL`].
/// Timeouts between frames (`interruptible` with nothing read yet) return
/// `Ok(false)` when the server is draining; timeouts mid-frame keep
/// reading so a slow writer does not desync the stream.
fn read_full(
    stream: &mut TcpStream,
    state: &ServerState,
    buf: &mut [u8],
    interruptible: bool,
) -> std::io::Result<bool> {
    use std::io::Read;

    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if interruptible && filled == 0 && state.shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one length-prefixed frame, polling for shutdown while idle.
/// `Ok(None)` means the server is draining and no request was in flight.
fn read_frame_polling(
    stream: &mut TcpStream,
    state: &ServerState,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_full(stream, state, &mut len, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > proto::MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    read_full(stream, state, &mut buf, false)?;
    Ok(Some(buf))
}

fn serve_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let bytes_in = state.counter(names::NET_BYTES, &[("dir", "in")]);
    let bytes_out = state.counter(names::NET_BYTES, &[("dir", "out")]);
    loop {
        let frame = match read_frame_polling(&mut stream, state) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // draining
            Err(_) => return,   // peer hung up or sent garbage framing
        };
        bytes_in.add((frame.len() + 4) as u64);
        // The transport-level trace header links the server's spans to the
        // client's trace even for requests whose op meta was stripped.
        let (frame_ctx, payload) = rndi_obs::frame::strip(&frame);
        let response = match proto::decode_request(payload) {
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Call {
                op, deadline_ms, ..
            }) => handle_call(state, &op, deadline_ms, frame_ctx),
            Err(e) => Response::Err(proto::encode_error(&e)),
        };
        let Ok(bytes) = proto::encode_message(&response) else {
            return;
        };
        bytes_out.add((bytes.len() + 4) as u64);
        if proto::write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

fn handle_call(
    state: &ServerState,
    wire_op: &proto::WireOp,
    deadline_ms: u64,
    frame_ctx: Option<TraceCtx>,
) -> Response {
    let start = Instant::now();
    let op_label = wire_op.kind.clone();
    let result = dispatch_call(state, wire_op, deadline_ms, frame_ctx, start);
    let took = start.elapsed();
    let outcome_label = if result.is_ok() { "ok" } else { "err" };
    state
        .counter(
            names::NET_REQUESTS,
            &[("op", &op_label), ("outcome", outcome_label)],
        )
        .inc();
    metrics::histogram(
        names::NET_REQUEST_DURATION,
        &[("server", &state.label), ("op", &op_label)],
    )
    .record_duration(took);
    match result {
        Ok(out) => Response::Ok(out),
        Err(e) => Response::Err(proto::encode_error(&e)),
    }
}

fn dispatch_call(
    state: &ServerState,
    wire_op: &proto::WireOp,
    deadline_ms: u64,
    frame_ctx: Option<TraceCtx>,
    start: Instant,
) -> Result<proto::WireOutcome> {
    let mut op = proto::decode_op(wire_op)?;
    // Prefer the op-meta context (set by the client's span), falling back
    // to the transport header; record a "server" span as its child and
    // re-annotate so the backend pipeline's spans nest under this one.
    let inbound = op.trace_ctx().or(frame_ctx);
    let server_ctx = match &inbound {
        Some(parent) => parent.child(),
        None => TraceCtx::root(),
    };
    op.set_trace_ctx(&server_ctx);
    let deadline = effective_deadline(deadline_ms, state.config.deadline_ms);
    let result = run_with_deadline(state, &op, deadline, start);
    let span_outcome = match &result {
        Ok(_) => SpanOutcome::Ok,
        Err(e) if e.is_continue() => SpanOutcome::Continue,
        Err(_) => SpanOutcome::Err,
    };
    rndi_obs::trace::record(SpanRecord::new(
        &server_ctx,
        "server",
        &state.label,
        op.kind.label(),
        span_outcome,
        start.elapsed(),
    ));
    result.and_then(|out| proto::encode_outcome(&out))
}

/// The stricter of the client's request budget and the server's own cap
/// (`0` on either side = that side imposes none).
fn effective_deadline(client_ms: u64, server_ms: u64) -> Option<Duration> {
    match (client_ms, server_ms) {
        (0, 0) => None,
        (0, s) => Some(Duration::from_millis(s)),
        (c, 0) => Some(Duration::from_millis(c)),
        (c, s) => Some(Duration::from_millis(c.min(s))),
    }
}

fn run_with_deadline(
    state: &ServerState,
    op: &NamingOp,
    deadline: Option<Duration>,
    start: Instant,
) -> Result<rndi_core::op::OpOutcome> {
    if let Some(budget) = deadline {
        if start.elapsed() >= budget {
            return Err(NamingError::Timeout {
                detail: format!("request expired before dispatch ({budget:?} budget)"),
            });
        }
    }
    let result = state.backend.execute(op);
    if let Some(budget) = deadline {
        if start.elapsed() > budget {
            // The op may have landed; deadline semantics report the miss
            // (the client's socket timeout has likely fired anyway).
            return Err(NamingError::Timeout {
                detail: format!("request exceeded its {budget:?} deadline"),
            });
        }
    }
    result
}
