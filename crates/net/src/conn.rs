//! Sans-IO connection state machines.
//!
//! Everything in this module operates on byte slices in and byte buffers
//! out — no sockets, no threads, no clocks — which is what makes the
//! protocol's trickiest behaviour (version negotiation, pipelined
//! request-ID bookkeeping, partial frames split at arbitrary byte
//! boundaries) unit-testable without IO. The readiness loops in
//! [`crate::server`] and [`crate::client`] are thin drivers: they feed
//! whatever bytes the socket produced into [`ServerConn::receive`] /
//! [`ClientConn::receive`] and write out whatever the machine queued.
//!
//! Layering (fraktor-rs-style): `proto` knows *messages*, `conn` knows
//! *connections* (negotiation state, frame reassembly, response
//! ordering), and only `server`/`client` know *sockets*.

use rndi_core::error::{NamingError, Result};
use rndi_obs::TraceCtx;

use crate::proto::{
    self, AdminReply, AdminRequest, Envelope, EnvelopeBody, GossipReply, GossipRequest, Negotiated,
    WireError, WireOp, WireOutcome,
};

/// An incremental length-prefixed frame reassembler. Bytes go in at
/// whatever granularity the transport produced them; complete frames come
/// out. The [`proto::MAX_FRAME_LEN`] cap is enforced on the length prefix
/// *before* the payload is buffered, so a hostile prefix cannot balloon
/// memory.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes before this offset have been consumed (compacted lazily).
    pos: usize,
}

impl FrameBuf {
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Buffer more bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by the largest
        // in-flight frame instead of the connection's lifetime traffic.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Peek at the unconsumed bytes without consuming them.
    pub fn peek(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Consume `n` unconsumed bytes (they have been processed elsewhere,
    /// e.g. a negotiation preamble).
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.pending());
        self.pos += n;
    }

    /// Extract the next complete frame, if one is fully buffered.
    /// An oversized length prefix is an error surfaced before any payload
    /// allocation.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let pending = self.peek();
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(pending[..4].try_into().unwrap()) as usize;
        if len > proto::MAX_FRAME_LEN {
            return Err(NamingError::service(format!(
                "frame length {len} exceeds cap"
            )));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let frame = pending[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }
}

/// One decoded client→server message, tagged with the request ID the
/// response must echo. v1 connections synthesize sequential IDs — v1
/// responses are matched by order, not ID, so the value only has to be
/// locally unique for deadline bookkeeping.
#[derive(Debug)]
pub struct Inbound {
    pub req_id: u64,
    pub msg: InboundMsg,
}

/// The body of an [`Inbound`] message.
#[derive(Debug)]
pub enum InboundMsg {
    Ping,
    Call {
        op: Box<WireOp>,
        deadline_ms: u64,
        /// Transport-level trace context (v1: the `%RNDI-TRACE:` payload
        /// header; v2: the envelope's trace field).
        trace: Option<TraceCtx>,
    },
    /// A telemetry scrape (v2 only — v1 has no admin vocabulary).
    Admin(AdminRequest),
    /// A cluster membership exchange (v2 only, like admin).
    Gossip(GossipRequest),
    /// The frame was self-delimiting but its payload did not decode; the
    /// server answers this error instead of dropping the connection.
    Malformed(NamingError),
}

/// What a server queues back for one request.
#[derive(Debug)]
pub enum ResponseBody {
    Pong,
    Ok(WireOutcome),
    Err(WireError),
    Admin(AdminReply),
    Gossip(GossipReply),
}

enum ServerProto {
    /// Waiting for the first four bytes to classify the connection.
    Negotiating,
    V1,
    V2,
}

/// Server-side per-connection state machine: negotiates the protocol
/// version from the first bytes, reassembles frames, decodes requests,
/// and encodes responses into an output buffer the IO layer drains.
pub struct ServerConn {
    proto: ServerProto,
    frames: FrameBuf,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    out_pos: usize,
}

impl Default for ServerConn {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerConn {
    pub fn new() -> Self {
        ServerConn {
            proto: ServerProto::Negotiating,
            frames: FrameBuf::new(),
            outbuf: Vec::new(),
            out_pos: 0,
        }
    }

    /// The negotiated protocol version, once known.
    pub fn version(&self) -> Option<u32> {
        match self.proto {
            ServerProto::Negotiating => None,
            ServerProto::V1 => Some(proto::PROTOCOL_V1),
            ServerProto::V2 => Some(proto::PROTOCOL_V2),
        }
    }

    /// Feed transport bytes in; get fully-decoded requests out. An `Err`
    /// means the connection is unrecoverable (unsupported version,
    /// corrupt framing) and must be closed.
    pub fn receive(&mut self, bytes: &[u8]) -> Result<Vec<Inbound>> {
        self.frames.push(bytes);
        if matches!(self.proto, ServerProto::Negotiating) {
            if self.frames.pending() < 4 {
                return Ok(Vec::new());
            }
            let first4: [u8; 4] = self.frames.peek()[..4].try_into().unwrap();
            match proto::negotiate(&first4) {
                Negotiated::V2 => {
                    // Consume the preamble and acknowledge it so the
                    // client knows the server speaks v2.
                    self.frames.consume(4);
                    self.outbuf.extend_from_slice(&proto::PREAMBLE_V2);
                    self.proto = ServerProto::V2;
                }
                Negotiated::V1 => {
                    // No preamble: the four bytes are the first frame's
                    // length prefix. Leave them buffered.
                    self.proto = ServerProto::V1;
                }
                Negotiated::Unsupported(v) => {
                    return Err(NamingError::service(format!(
                        "unsupported protocol version {v}"
                    )));
                }
            }
        }
        let mut inbound = Vec::new();
        while let Some(frame) = self.frames.next_frame()? {
            inbound.push(match self.proto {
                ServerProto::V1 => decode_v1_request(&frame),
                ServerProto::V2 => decode_v2_request(&frame)?,
                ServerProto::Negotiating => unreachable!("negotiated above"),
            });
        }
        Ok(inbound)
    }

    /// Queue the response for `req_id` in the connection's wire format.
    /// v1 ignores the ID (responses are matched by order); v2 echoes it.
    pub fn push_response(&mut self, req_id: u64, body: ResponseBody) -> Result<()> {
        let payload = match self.proto {
            ServerProto::V1 => proto::encode_message(&match body {
                ResponseBody::Pong => proto::Response::Pong,
                ResponseBody::Ok(out) => proto::Response::Ok(out),
                ResponseBody::Err(err) => proto::Response::Err(err),
                // Unreachable in practice: v1 cannot express an admin
                // request, so no handler ever produces this on v1.
                ResponseBody::Admin(_) => {
                    return Err(NamingError::service("admin replies require protocol v2"))
                }
                // Same story: gossip is a v2-only vocabulary.
                ResponseBody::Gossip(_) => {
                    return Err(NamingError::service("gossip replies require protocol v2"))
                }
            })?,
            ServerProto::V2 => proto::bin::encode_envelope(&Envelope {
                req_id,
                body: match body {
                    ResponseBody::Pong => EnvelopeBody::Pong,
                    ResponseBody::Ok(out) => EnvelopeBody::Ok(out),
                    ResponseBody::Err(err) => EnvelopeBody::Err(err),
                    ResponseBody::Admin(reply) => EnvelopeBody::AdminOk(reply),
                    ResponseBody::Gossip(reply) => EnvelopeBody::GossipOk(reply),
                },
            })?,
            ServerProto::Negotiating => {
                return Err(NamingError::service(
                    "response queued before version negotiation",
                ))
            }
        };
        self.outbuf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.outbuf.extend_from_slice(&payload);
        Ok(())
    }

    /// Bytes waiting to be written to the socket.
    pub fn pending_out(&self) -> &[u8] {
        &self.outbuf[self.out_pos..]
    }

    /// Record that `n` bytes of [`ServerConn::pending_out`] were written.
    pub fn consume_out(&mut self, n: usize) {
        self.out_pos += n;
        debug_assert!(self.out_pos <= self.outbuf.len());
        if self.out_pos == self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 {
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }

    /// Whether a request frame is partially buffered (used by graceful
    /// drain to decide if a client is mid-request).
    pub fn has_partial_input(&self) -> bool {
        self.frames.pending() > 0
    }
}

fn decode_v1_request(frame: &[u8]) -> Inbound {
    let (frame_ctx, payload) = rndi_obs::frame::strip(frame);
    let msg = match proto::decode_request(payload) {
        Ok(proto::Request::Ping) => InboundMsg::Ping,
        Ok(proto::Request::Call {
            op, deadline_ms, ..
        }) => InboundMsg::Call {
            op,
            deadline_ms,
            trace: frame_ctx,
        },
        Err(e) => InboundMsg::Malformed(e),
    };
    // v1 responses are matched by order; the ID is only a local handle.
    Inbound { req_id: 0, msg }
}

fn decode_v2_request(frame: &[u8]) -> Result<Inbound> {
    match proto::bin::decode_envelope(frame) {
        Ok(Envelope { req_id, body }) => {
            let msg = match body {
                EnvelopeBody::Ping => InboundMsg::Ping,
                EnvelopeBody::Call {
                    op,
                    deadline_ms,
                    trace,
                } => InboundMsg::Call {
                    op,
                    deadline_ms,
                    trace,
                },
                EnvelopeBody::Admin(req) => InboundMsg::Admin(req),
                EnvelopeBody::Gossip(req) => InboundMsg::Gossip(req),
                // A client must not send response bodies.
                EnvelopeBody::Pong
                | EnvelopeBody::Ok(_)
                | EnvelopeBody::Err(_)
                | EnvelopeBody::AdminOk(_)
                | EnvelopeBody::GossipOk(_) => {
                    InboundMsg::Malformed(NamingError::service("response body in a client request"))
                }
            };
            Ok(Inbound { req_id, msg })
        }
        Err(e) => {
            // Frames are self-delimiting, so a bad payload does not
            // desync the stream. If the request ID survived, answer a
            // typed error; without one there is nothing to address the
            // response to, so the connection must close.
            if frame.len() >= 8 {
                let req_id = u64::from_le_bytes(frame[..8].try_into().unwrap());
                Ok(Inbound {
                    req_id,
                    msg: InboundMsg::Malformed(e),
                })
            } else {
                Err(e)
            }
        }
    }
}

/// The send half of a v2 client connection: request-ID allocation and
/// envelope→bytes encoding, including the connect preamble on the first
/// send. Split from [`ClientDecoder`] so a multiplexing client can hold
/// the two halves under independent locks (writers encode while one
/// caller drives the read side).
pub struct ClientEncoder {
    next_id: u64,
    sent_preamble: bool,
}

impl Default for ClientEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClientEncoder {
    pub fn new() -> Self {
        ClientEncoder {
            next_id: 0,
            sent_preamble: false,
        }
    }

    /// Allocate the next request ID.
    pub fn next_req_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Encode one envelope as transport bytes: the 4-byte preamble (first
    /// send only) plus a length-prefixed frame.
    pub fn encode(&mut self, env: &Envelope) -> Result<Vec<u8>> {
        let payload = proto::bin::encode_envelope(env)?;
        if payload.len() > proto::MAX_FRAME_LEN {
            return Err(NamingError::service(format!(
                "frame of {} bytes exceeds cap",
                payload.len()
            )));
        }
        let preamble = if self.sent_preamble { 0 } else { 4 };
        let mut out = Vec::with_capacity(preamble + 4 + payload.len());
        if !self.sent_preamble {
            out.extend_from_slice(&proto::PREAMBLE_V2);
            self.sent_preamble = true;
        }
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }
}

/// The receive half of a v2 client connection: preamble-ack consumption
/// and frame reassembly into decoded envelopes.
#[derive(Default)]
pub struct ClientDecoder {
    frames: FrameBuf,
    acked: bool,
}

impl ClientDecoder {
    pub fn new() -> Self {
        ClientDecoder::default()
    }

    /// Feed server bytes in; get decoded response envelopes out. The
    /// server's 4-byte preamble ack is consumed here; a missing or
    /// mismatched ack means the far side does not speak v2 and the
    /// connection is unusable.
    pub fn receive(&mut self, bytes: &[u8]) -> Result<Vec<Envelope>> {
        self.frames.push(bytes);
        if !self.acked {
            if self.frames.pending() < 4 {
                return Ok(Vec::new());
            }
            let first4: [u8; 4] = self.frames.peek()[..4].try_into().unwrap();
            if first4 != proto::PREAMBLE_V2 {
                return Err(NamingError::service(
                    "server did not acknowledge protocol v2 (v1-only server? \
                     set rndi.net.proto.version=1)",
                ));
            }
            self.frames.consume(4);
            self.acked = true;
        }
        let mut envelopes = Vec::new();
        while let Some(frame) = self.frames.next_frame()? {
            envelopes.push(proto::bin::decode_envelope(&frame)?);
        }
        Ok(envelopes)
    }
}

/// Client-side sans-IO state for one v2 connection: request-ID
/// allocation, the connect preamble, ack handling, and response frame
/// reassembly. The threading (who waits, who drives the socket) lives in
/// [`crate::client`], which uses [`ClientConn::into_split`] to lock the
/// two directions independently.
#[derive(Default)]
pub struct ClientConn {
    enc: ClientEncoder,
    dec: ClientDecoder,
}

impl ClientConn {
    pub fn new() -> Self {
        ClientConn::default()
    }

    /// Allocate the next request ID.
    pub fn next_req_id(&mut self) -> u64 {
        self.enc.next_req_id()
    }

    /// See [`ClientEncoder::encode`].
    pub fn encode(&mut self, env: &Envelope) -> Result<Vec<u8>> {
        self.enc.encode(env)
    }

    /// See [`ClientDecoder::receive`].
    pub fn receive(&mut self, bytes: &[u8]) -> Result<Vec<Envelope>> {
        self.dec.receive(bytes)
    }

    /// Split into independently-lockable send and receive halves.
    pub fn into_split(self) -> (ClientEncoder, ClientDecoder) {
        (self.enc, self.dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rndi_core::op::NamingOp;

    #[test]
    fn framebuf_reassembles_byte_by_byte() {
        let mut framed = Vec::new();
        proto::write_frame(&mut framed, b"hello").unwrap();
        proto::write_frame(&mut framed, b"world!").unwrap();
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for b in &framed {
            fb.push(std::slice::from_ref(b));
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), b"world!".to_vec()]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn framebuf_rejects_oversized_prefix() {
        let mut fb = FrameBuf::new();
        fb.push(&(proto::MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn server_negotiates_v2_and_acks() {
        let mut server = ServerConn::new();
        let mut client = ClientConn::new();
        let id = client.next_req_id();
        let bytes = client
            .encode(&Envelope {
                req_id: id,
                body: EnvelopeBody::Ping,
            })
            .unwrap();
        let inbound = server.receive(&bytes).unwrap();
        assert_eq!(server.version(), Some(proto::PROTOCOL_V2));
        assert_eq!(inbound.len(), 1);
        assert!(matches!(inbound[0].msg, InboundMsg::Ping));
        server
            .push_response(inbound[0].req_id, ResponseBody::Pong)
            .unwrap();
        let responses = client.receive(server.pending_out()).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].req_id, id);
        assert!(matches!(responses[0].body, EnvelopeBody::Pong));
    }

    #[test]
    fn server_negotiates_v1_from_bare_frames() {
        let mut server = ServerConn::new();
        let mut framed = Vec::new();
        let ping = proto::encode_message(&proto::Request::Ping).unwrap();
        proto::write_frame(&mut framed, &ping).unwrap();
        // Split delivery across the negotiation boundary.
        let inbound = server.receive(&framed[..3]).unwrap();
        assert!(inbound.is_empty());
        assert_eq!(server.version(), None);
        let inbound = server.receive(&framed[3..]).unwrap();
        assert_eq!(server.version(), Some(proto::PROTOCOL_V1));
        assert!(matches!(inbound[0].msg, InboundMsg::Ping));
        server.push_response(0, ResponseBody::Pong).unwrap();
        // v1 responses carry no preamble ack.
        let out = server.pending_out().to_vec();
        let frame = proto::read_frame(&mut &out[..]).unwrap();
        assert!(matches!(
            proto::decode_response(&frame).unwrap(),
            proto::Response::Pong
        ));
    }

    #[test]
    fn server_closes_on_unsupported_version() {
        let mut server = ServerConn::new();
        let err = server.receive(&[b'R', b'N', b'I', 9]).unwrap_err();
        assert!(err.to_string().contains("unsupported protocol version"));
    }

    #[test]
    fn malformed_v2_payload_answers_typed_error() {
        let mut server = ServerConn::new();
        let mut bytes = proto::PREAMBLE_V2.to_vec();
        // A frame with a valid req id but garbage body tag.
        let mut payload = 77u64.to_le_bytes().to_vec();
        payload.push(250);
        bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&payload);
        let inbound = server.receive(&bytes).unwrap();
        assert_eq!(inbound[0].req_id, 77);
        assert!(matches!(inbound[0].msg, InboundMsg::Malformed(_)));
    }

    #[test]
    fn pipelined_requests_decode_in_one_receive() {
        let mut server = ServerConn::new();
        let mut client = ClientConn::new();
        let mut bytes = Vec::new();
        let mut ids = Vec::new();
        for name in ["a", "b", "c"] {
            let id = client.next_req_id();
            ids.push(id);
            let op = proto::encode_op(&NamingOp::lookup(name.into())).unwrap();
            bytes.extend_from_slice(
                &client
                    .encode(&Envelope {
                        req_id: id,
                        body: EnvelopeBody::Call {
                            op: Box::new(op),
                            deadline_ms: 0,
                            trace: None,
                        },
                    })
                    .unwrap(),
            );
        }
        let inbound = server.receive(&bytes).unwrap();
        assert_eq!(
            inbound.iter().map(|i| i.req_id).collect::<Vec<_>>(),
            ids,
            "all three pipelined calls decoded from one receive"
        );
        // Answer out of order; the client matches by ID, not order.
        for i in inbound.iter().rev() {
            server
                .push_response(
                    i.req_id,
                    ResponseBody::Err(proto::encode_error(&NamingError::not_found("x"))),
                )
                .unwrap();
        }
        let responses = client.receive(server.pending_out()).unwrap();
        let got: Vec<u64> = responses.iter().map(|r| r.req_id).collect();
        let mut want = ids.clone();
        want.reverse();
        assert_eq!(got, want);
    }

    #[test]
    fn client_rejects_non_v2_server() {
        let mut client = ClientConn::new();
        // A v1 server's first bytes are a frame length prefix, not an ack.
        let err = client.receive(&[0, 0, 0, 42]).unwrap_err();
        assert!(err.to_string().contains("did not acknowledge"));
    }
}
