//! Fuzz-style hardening for the wire decoder: arbitrary, malformed, or
//! truncated bytes must surface as errors — never panics, never huge
//! allocations from attacker-controlled length prefixes.

use std::io::Cursor;

use proptest::prelude::*;

use rndi_net::proto;

proptest! {
    /// Arbitrary bytes through the frame reader: error or frame, no panic.
    #[test]
    fn read_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = proto::read_frame(&mut Cursor::new(&bytes));
    }

    /// A length prefix promising more than the cap is rejected before any
    /// allocation, regardless of what follows.
    #[test]
    fn oversized_length_prefix_is_rejected(
        extra in 1u64..u32::MAX as u64 - proto::MAX_FRAME_LEN as u64,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let len = (proto::MAX_FRAME_LEN as u64 + extra) as u32;
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(proto::read_frame(&mut Cursor::new(&bytes)).is_err());
    }

    /// A well-formed frame truncated at any byte is an error, not a panic
    /// or a partial frame.
    #[test]
    fn truncated_frames_error(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..68,
    ) {
        let mut framed = Vec::new();
        proto::write_frame(&mut framed, &payload).expect("frame writes");
        let cut = cut.min(framed.len());
        if cut < framed.len() {
            prop_assert!(proto::read_frame(&mut Cursor::new(&framed[..cut])).is_err());
        } else {
            let back = proto::read_frame(&mut Cursor::new(&framed[..])).expect("intact frame");
            prop_assert_eq!(back, payload);
        }
    }

    /// Request/response decoders on arbitrary bytes: typed error, no panic.
    #[test]
    fn message_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = proto::decode_request(&bytes);
        let _ = proto::decode_response(&bytes);
    }

    /// Near-miss JSON — structurally valid but semantically wrong — is
    /// rejected as an error, not a panic.
    #[test]
    fn near_miss_json_is_rejected(
        key in "[a-zA-Z]{1,8}",
        val in "[a-zA-Z0-9]{0,8}",
        deep in 0usize..6,
    ) {
        let mut json = format!("{{\"{key}\":\"{val}\"}}");
        for _ in 0..deep {
            json = format!("{{\"{key}\":{json}}}");
        }
        prop_assert!(proto::decode_request(json.as_bytes()).is_err());
        prop_assert!(proto::decode_response(json.as_bytes()).is_err());
    }

    /// Frames whose payload is valid JSON for the right shape but with a
    /// corrupted op kind or scope string decode to an error.
    #[test]
    fn unknown_op_kinds_error(kind in "[a-z]{1,12}") {
        let known = rndi_core::op::ALL_OP_KINDS.iter().any(|k| k.label() == kind);
        let json = format!(
            "{{\"Call\":{{\"v\":1,\"op\":{{\"kind\":\"{kind}\",\"name\":\"a\",\
             \"payload\":\"None\",\"attrs\":null,\"meta\":{{}}}},\"deadline_ms\":0}}}}"
        );
        match proto::decode_request(json.as_bytes()) {
            Ok(proto::Request::Call { op, .. }) => {
                // Decoding the envelope is fine; materializing the op must
                // reject unknown kinds.
                prop_assert_eq!(proto::decode_op(&op).is_ok(), known);
            }
            Ok(_) => prop_assert!(false, "ping from a call payload"),
            Err(_) => prop_assert!(!known),
        }
    }
}
