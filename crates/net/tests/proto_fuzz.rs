//! Fuzz-style hardening for the wire decoders (v1 JSON and v2 binary):
//! arbitrary, malformed, or truncated bytes must surface as errors —
//! never panics, never huge allocations from attacker-controlled length
//! prefixes — and every well-formed envelope must round-trip exactly.

use std::io::Cursor;

use proptest::prelude::*;

use rndi_core::attrs::{AttrMod, Attribute, Attributes};
use rndi_core::op::ALL_OP_KINDS;
use rndi_core::value::StoredValue;
use rndi_net::conn::{FrameBuf, ServerConn};
use rndi_net::proto::{self, Envelope, EnvelopeBody};
use rndi_obs::TraceCtx;

proptest! {
    /// Arbitrary bytes through the frame reader: error or frame, no panic.
    #[test]
    fn read_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = proto::read_frame(&mut Cursor::new(&bytes));
    }

    /// A length prefix promising more than the cap is rejected before any
    /// allocation, regardless of what follows.
    #[test]
    fn oversized_length_prefix_is_rejected(
        extra in 1u64..u32::MAX as u64 - proto::MAX_FRAME_LEN as u64,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let len = (proto::MAX_FRAME_LEN as u64 + extra) as u32;
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(proto::read_frame(&mut Cursor::new(&bytes)).is_err());
    }

    /// A well-formed frame truncated at any byte is an error, not a panic
    /// or a partial frame.
    #[test]
    fn truncated_frames_error(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..68,
    ) {
        let mut framed = Vec::new();
        proto::write_frame(&mut framed, &payload).expect("frame writes");
        let cut = cut.min(framed.len());
        if cut < framed.len() {
            prop_assert!(proto::read_frame(&mut Cursor::new(&framed[..cut])).is_err());
        } else {
            let back = proto::read_frame(&mut Cursor::new(&framed[..])).expect("intact frame");
            prop_assert_eq!(back, payload);
        }
    }

    /// Request/response decoders on arbitrary bytes: typed error, no panic.
    #[test]
    fn message_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = proto::decode_request(&bytes);
        let _ = proto::decode_response(&bytes);
    }

    /// Near-miss JSON — structurally valid but semantically wrong — is
    /// rejected as an error, not a panic.
    #[test]
    fn near_miss_json_is_rejected(
        key in "[a-zA-Z]{1,8}",
        val in "[a-zA-Z0-9]{0,8}",
        deep in 0usize..6,
    ) {
        let mut json = format!("{{\"{key}\":\"{val}\"}}");
        for _ in 0..deep {
            json = format!("{{\"{key}\":{json}}}");
        }
        prop_assert!(proto::decode_request(json.as_bytes()).is_err());
        prop_assert!(proto::decode_response(json.as_bytes()).is_err());
    }

    /// Frames whose payload is valid JSON for the right shape but with a
    /// corrupted op kind or scope string decode to an error.
    #[test]
    fn unknown_op_kinds_error(kind in "[a-z]{1,12}") {
        let known = rndi_core::op::ALL_OP_KINDS.iter().any(|k| k.label() == kind);
        let json = format!(
            "{{\"Call\":{{\"v\":1,\"op\":{{\"kind\":\"{kind}\",\"name\":\"a\",\
             \"payload\":\"None\",\"attrs\":null,\"meta\":{{}}}},\"deadline_ms\":0}}}}"
        );
        match proto::decode_request(json.as_bytes()) {
            Ok(proto::Request::Call { op, .. }) => {
                // Decoding the envelope is fine; materializing the op must
                // reject unknown kinds.
                prop_assert_eq!(proto::decode_op(&op).is_ok(), known);
            }
            Ok(_) => prop_assert!(false, "ping from a call payload"),
            Err(_) => prop_assert!(!known),
        }
    }
}

// ------------------------------------------------ v2 binary envelope --

fn arb_stored() -> impl Strategy<Value = StoredValue> {
    prop_oneof![
        Just(StoredValue::Null),
        "[ -~]{0,16}".prop_map(StoredValue::Str),
        any::<i64>().prop_map(StoredValue::I64),
        // Constructed from an integer so the value is never NaN (which
        // would defeat the equality assertion, not the codec).
        any::<i32>().prop_map(|i| StoredValue::F64(f64::from(i) / 8.0)),
        any::<bool>().prop_map(StoredValue::Bool),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(StoredValue::Bytes),
        ("[a-z]{1,6}", any::<bool>()).prop_map(|(k, v)| {
            StoredValue::Json(serde_json::Value::Object(
                [(k, serde_json::Value::Bool(v))].into_iter().collect(),
            ))
        }),
    ]
}

fn arb_attrs() -> impl Strategy<Value = Attributes> {
    proptest::collection::btree_map("[a-z]{1,8}", "[ -~]{0,12}", 0..4).prop_map(|m| {
        let mut attrs = Attributes::new();
        for (k, v) in m {
            attrs = attrs.with(k, v.as_str());
        }
        attrs
    })
}

fn arb_payload() -> impl Strategy<Value = proto::WirePayload> {
    prop_oneof![
        Just(proto::WirePayload::None),
        arb_stored().prop_map(proto::WirePayload::Value),
        (
            proptest::collection::vec(any::<u8>(), 0..32),
            "[a-zA-Z.]{0,16}"
        )
            .prop_map(|(bytes, class_name)| proto::WirePayload::Wire { bytes, class_name }),
        (arb_stored(), "[a-zA-Z.]{0,16}")
            .prop_map(|(value, class_name)| { proto::WirePayload::Stored { value, class_name } }),
        "[ -~]{0,16}".prop_map(proto::WirePayload::NewName),
        proptest::collection::vec(
            prop_oneof![
                ("[a-z]{1,8}", "[ -~]{0,8}")
                    .prop_map(|(id, v)| AttrMod::Add(Attribute::single(id, v.as_str()))),
                ("[a-z]{1,8}", "[ -~]{0,8}")
                    .prop_map(|(id, v)| AttrMod::Replace(Attribute::single(id, v.as_str()))),
                "[a-z]{1,8}".prop_map(AttrMod::Remove),
                "[a-z]{1,8}".prop_map(|id| AttrMod::RemoveValues(Attribute::new(id))),
            ],
            0..3
        )
        .prop_map(proto::WirePayload::Mods),
        (
            "[(a-z=*)]{0,12}",
            prop_oneof![Just("object"), Just("onelevel"), Just("subtree")],
            any::<u64>(),
            proptest::option::of(proptest::collection::vec(
                "[a-z]{1,6}".prop_map(String::from),
                0..3
            )),
            any::<bool>(),
        )
            .prop_map(
                |(filter, scope, count_limit, return_attrs, return_values)| {
                    proto::WirePayload::Query {
                        filter,
                        scope: scope.to_string(),
                        count_limit,
                        return_attrs,
                        return_values,
                    }
                }
            ),
    ]
}

fn arb_wire_op() -> impl Strategy<Value = proto::WireOp> {
    (
        0..ALL_OP_KINDS.len(),
        "[ -~]{0,24}",
        arb_payload(),
        proptest::option::of(arb_attrs()),
        proptest::collection::btree_map("[a-z.]{1,10}", "[ -~]{0,16}", 0..3),
    )
        .prop_map(|(kind, name, payload, attrs, meta)| proto::WireOp {
            kind: ALL_OP_KINDS[kind].label().to_string(),
            name,
            payload,
            attrs,
            meta,
        })
}

fn arb_wire_error() -> impl Strategy<Value = proto::WireError> {
    let s = || "[ -~]{0,20}".prop_map(String::from);
    prop_oneof![
        s().prop_map(|name| proto::WireError::NameNotFound { name }),
        s().prop_map(|name| proto::WireError::AlreadyBound { name }),
        s().prop_map(|name| proto::WireError::NotAContext { name }),
        s().prop_map(|name| proto::WireError::ContextExpected { name }),
        (s(), s()).prop_map(|(name, reason)| proto::WireError::InvalidName { name, reason }),
        (s(), s())
            .prop_map(|(filter, reason)| proto::WireError::InvalidSearchFilter { filter, reason }),
        s().prop_map(|operation| proto::WireError::NotSupported { operation }),
        s().prop_map(|detail| proto::WireError::NoPermission { detail }),
        s().prop_map(|detail| proto::WireError::ServiceFailure { detail }),
        s().prop_map(|detail| proto::WireError::Timeout { detail }),
        s().prop_map(|scheme| proto::WireError::NoProvider { scheme }),
        s().prop_map(|detail| proto::WireError::ConfigurationError { detail }),
        s().prop_map(|name| proto::WireError::ContextNotEmpty { name }),
        s().prop_map(|name| proto::WireError::LeaseExpired { name }),
        (arb_stored(), s()).prop_map(|(resolved, remaining)| proto::WireError::Continue {
            resolved,
            remaining
        }),
        any::<u64>().prop_map(|depth| proto::WireError::FederationDepthExceeded { depth }),
        any::<u64>().prop_map(|retry_after_ms| proto::WireError::Overloaded { retry_after_ms }),
    ]
}

fn arb_outcome() -> impl Strategy<Value = proto::WireOutcome> {
    prop_oneof![
        Just(proto::WireOutcome::Done),
        arb_stored().prop_map(proto::WireOutcome::Value),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(proto::WireOutcome::Wire),
        proptest::collection::vec(
            ("[ -~]{0,12}", "[a-zA-Z.]{0,12}")
                .prop_map(|(name, class_name)| { proto::WireNameClass { name, class_name } }),
            0..3
        )
        .prop_map(proto::WireOutcome::Names),
        proptest::collection::vec(
            ("[ -~]{0,12}", arb_stored())
                .prop_map(|(name, value)| proto::WireBinding { name, value }),
            0..3
        )
        .prop_map(proto::WireOutcome::Bindings),
        arb_attrs().prop_map(proto::WireOutcome::Attrs),
        proptest::collection::vec(
            (
                "[ -~]{0,12}",
                proptest::option::of(arb_stored()),
                arb_attrs()
            )
                .prop_map(|(name, value, attrs)| proto::WireHit { name, value, attrs }),
            0..3
        )
        .prop_map(proto::WireOutcome::Found),
    ]
}

fn arb_trace() -> impl Strategy<Value = TraceCtx> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
        |(trace_id, span_id, parent_span, depth)| TraceCtx {
            trace_id,
            span_id,
            parent_span,
            depth,
        },
    )
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        any::<u64>(),
        prop_oneof![
            Just(EnvelopeBody::Ping),
            Just(EnvelopeBody::Pong),
            (
                arb_wire_op(),
                any::<u64>(),
                proptest::option::of(arb_trace())
            )
                .prop_map(|(op, deadline_ms, trace)| EnvelopeBody::Call {
                    op: Box::new(op),
                    deadline_ms,
                    trace,
                }),
            arb_outcome().prop_map(EnvelopeBody::Ok),
            arb_wire_error().prop_map(EnvelopeBody::Err),
        ],
    )
        .prop_map(|(req_id, body)| Envelope { req_id, body })
}

proptest! {
    /// Every envelope — all op kinds, all payload shapes, all outcome and
    /// error variants — round-trips the binary codec exactly.
    #[test]
    fn binary_envelope_roundtrip(env in arb_envelope()) {
        let bytes = proto::bin::encode_envelope(&env).expect("encodes");
        let back = proto::bin::decode_envelope(&bytes).expect("decodes");
        prop_assert_eq!(back, env);
    }

    /// Arbitrary bytes through the binary decoder: typed error or valid
    /// envelope, never a panic.
    #[test]
    fn binary_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..192)) {
        let _ = proto::bin::decode_envelope(&bytes);
    }

    /// A well-formed binary envelope truncated at any byte is an error,
    /// and appending trailing garbage is too (frames are exact).
    #[test]
    fn truncated_binary_envelopes_error(env in arb_envelope(), cut in 0usize..4096) {
        let bytes = proto::bin::encode_envelope(&env).expect("encodes");
        let cut = cut % bytes.len().max(1);
        if cut < bytes.len() {
            prop_assert!(proto::bin::decode_envelope(&bytes[..cut]).is_err());
        }
        let mut padded = bytes;
        padded.push(0);
        prop_assert!(proto::bin::decode_envelope(&padded).is_err());
    }

    /// Version negotiation on the first four connection bytes: the exact
    /// v2 preamble selects v2; the magic with any other version byte is
    /// rejected; everything else — in particular any v1 frame length
    /// prefix, whose first byte is at most 0x01 — falls back to v1.
    #[test]
    fn version_negotiation_classifies_first_bytes(first4 in any::<[u8; 4]>()) {
        let got = proto::negotiate(&first4);
        if first4 == proto::PREAMBLE_V2 {
            prop_assert_eq!(got, proto::Negotiated::V2);
        } else if first4[..3] == proto::PREAMBLE_MAGIC {
            prop_assert_eq!(got, proto::Negotiated::Unsupported(first4[3]));
        } else {
            prop_assert_eq!(got, proto::Negotiated::V1);
        }
        // A v1 length prefix can never be mistaken for the magic: capped
        // frame lengths keep the first byte at or below 0x01.
        let frame_len = (proto::MAX_FRAME_LEN as u32).to_be_bytes();
        prop_assert!(frame_len[0] < proto::PREAMBLE_MAGIC[0]);
    }

    /// A server connection fed an unknown-version preamble closes before
    /// buffering anything further; a hostile frame length after a valid
    /// preamble is rejected before allocation.
    #[test]
    fn server_conn_rejects_bad_preamble_and_oversized_frames(
        version in any::<u8>(),
        oversize in 1u32..1024,
    ) {
        if version != proto::PREAMBLE_V2[3] {
            let mut conn = ServerConn::new();
            let preamble = [b'R', b'N', b'I', version];
            prop_assert!(conn.receive(&preamble).is_err());
        }
        let mut fb = FrameBuf::new();
        fb.push(&(proto::MAX_FRAME_LEN as u32 + oversize).to_be_bytes());
        prop_assert!(fb.next_frame().is_err());
    }
}
