//! Mixed-version interop: one v2 server concurrently serving a v1
//! (lock-step framed JSON) client and a v2 (multiplexed binary) client,
//! with cross-wire trace linking verified on both — the negotiated
//! fallback is a live compatibility path, not dead code.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rndi_core::context::ContextExt;
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::name::CompoundSyntax;
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload};
use rndi_core::spi::ProviderBackend;
use rndi_core::value::BoundValue;
use rndi_net::{NetClient, NetServer, ServerConfig};

/// A minimal in-memory backend: enough of the op vocabulary for bind /
/// rebind / lookup, so the transport can be exercised without pulling a
/// full provider crate into rndi-net's dev graph.
#[derive(Default)]
struct MemBackend {
    map: Mutex<BTreeMap<String, StoredEntry>>,
}

enum StoredEntry {
    Value(BoundValue),
    Wire(Vec<u8>),
}

impl ProviderBackend for MemBackend {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        let name = op.name.to_string();
        match op.kind {
            OpKind::Bind | OpKind::Rebind | OpKind::BindWithAttrs | OpKind::RebindWithAttrs => {
                let entry = match &op.payload {
                    OpPayload::Value(v) => StoredEntry::Value(v.clone()),
                    OpPayload::Wire { bytes, .. } => StoredEntry::Wire(bytes.clone()),
                    other => {
                        return Err(NamingError::unsupported(format!(
                            "mem backend bind payload {other:?}"
                        )))
                    }
                };
                let mut map = self.map.lock();
                if matches!(op.kind, OpKind::Bind | OpKind::BindWithAttrs)
                    && map.contains_key(&name)
                {
                    return Err(NamingError::already_bound(name));
                }
                map.insert(name, entry);
                Ok(OpOutcome::Done)
            }
            OpKind::Lookup => match self.map.lock().get(&name) {
                Some(StoredEntry::Value(v)) => Ok(OpOutcome::Value(v.clone())),
                Some(StoredEntry::Wire(bytes)) => Ok(OpOutcome::Wire(bytes.clone())),
                None => Err(NamingError::not_found(name)),
            },
            OpKind::Unbind => {
                self.map.lock().remove(&name);
                Ok(OpOutcome::Done)
            }
            other => Err(NamingError::unsupported(format!("mem backend {other:?}"))),
        }
    }

    fn provider_id(&self) -> String {
        "mem".to_string()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }
}

fn v2_server() -> NetServer {
    NetServer::with_config(
        Arc::new(MemBackend::default()),
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            max_conns: 64,
            deadline_ms: 5_000,
            shards: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

#[test]
fn v1_and_v2_clients_share_one_server_concurrently() {
    let server = v2_server();
    let addr = server.local_addr().to_string();

    let v1_env = Environment::new().with(keys::NET_PROTO_VERSION, "1");
    let v2_env = Environment::new().with(keys::NET_PROTO_VERSION, "2");
    let v1 = NetClient::connect(addr.clone(), &v1_env).unwrap();
    let v2 = NetClient::connect(addr.clone(), &v2_env).unwrap();

    // Both clients hammer the same server at the same time, each speaking
    // its own protocol on its own connections.
    let threads: Vec<_> = [("v1", v1.clone()), ("v2", v2.clone())]
        .into_iter()
        .map(|(tag, client)| {
            std::thread::spawn(move || {
                for i in 0..16 {
                    let key = format!("{tag}-{i}");
                    client
                        .bind_str(&key, format!("val-{tag}-{i}").as_str())
                        .unwrap();
                    let got = client.lookup_str(&key).unwrap();
                    assert_eq!(got.as_str(), Some(format!("val-{tag}-{i}").as_str()));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    // Cross-checks through the *other* client: the two protocols read
    // each other's writes, so they demonstrably hit one backend.
    assert_eq!(
        v1.lookup_str("v2-0").unwrap().as_str(),
        Some("val-v2-0"),
        "v1 client reads a binding written over v2"
    );
    assert_eq!(
        v2.lookup_str("v1-0").unwrap().as_str(),
        Some("val-v1-0"),
        "v2 client reads a binding written over v1"
    );

    // Linked traces on both protocols: every client-layer lookup span for
    // this endpoint must have a server-side child span in the same trace.
    let ring = rndi_obs::trace::ring();
    let client_label = format!("net-client:{addr}");
    let client_spans: Vec<_> = ring
        .snapshot()
        .into_iter()
        .filter(|s| s.layer == "client" && s.provider.as_ref() == client_label && s.op == "lookup")
        .collect();
    assert!(
        client_spans.len() >= 32,
        "both clients' lookups recorded spans (got {})",
        client_spans.len()
    );
    for span in &client_spans {
        let trace = ring.trace(span.trace_id);
        let linked = trace
            .iter()
            .any(|s| s.layer == "server" && s.parent_span == span.span_id);
        assert!(
            linked,
            "server span links to client span {} in trace {}",
            span.span_id, span.trace_id
        );
    }

    server.shutdown();
}

#[test]
fn many_threads_multiplex_one_v2_connection() {
    let server = v2_server();
    let addr = server.local_addr().to_string();

    // One connection (pool of 1), deep pipeline: all threads' requests
    // interleave on a single socket and responses are matched by ID.
    let env = Environment::new()
        .with(keys::NET_PROTO_VERSION, "2")
        .with(keys::NET_CLIENT_POOL_SIZE, "1")
        .with(keys::NET_CLIENT_PIPELINE_DEPTH, "64");
    let client = NetClient::connect(addr, &env).unwrap();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let client = client.clone();
            std::thread::spawn(move || {
                for i in 0..32 {
                    let key = format!("t{t}-k{i}");
                    client
                        .bind_str(&key, format!("t{t}-v{i}").as_str())
                        .unwrap();
                    let got = client.lookup_str(&key).unwrap();
                    assert_eq!(got.as_str(), Some(format!("t{t}-v{i}").as_str()));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker thread");
    }

    server.shutdown();
}

#[test]
fn admin_scrape_serves_metrics_traces_and_health_over_the_data_socket() {
    // A dedicated registry isolates this server's series from every other
    // test in the binary: the scraped totals are exactly ours.
    let registry = std::sync::Arc::new(rndi_obs::Registry::new());
    let server = NetServer::with_registry(
        Arc::new(MemBackend::default()),
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            max_conns: 64,
            deadline_ms: 5_000,
            shards: 2,
            ..ServerConfig::default()
        },
        registry.clone(),
    )
    .expect("server starts");
    let addr = server.local_addr().to_string();

    let env = Environment::new().with(keys::NET_PROTO_VERSION, "2");
    let client = NetClient::new(addr.clone(), &env).unwrap();
    for i in 0..8 {
        let key = format!("adm-{i}");
        client
            .execute(&NamingOp::rebind(key.as_str().into(), BoundValue::str("x")))
            .unwrap();
        client
            .execute(&NamingOp::lookup(key.as_str().into()))
            .unwrap();
    }

    // Metrics arrive as a mergeable snapshot mirroring the live registry.
    let snap = client.scrape_metrics().unwrap();
    assert_eq!(
        snap.counter_total(rndi_obs::metrics::names::NET_REQUESTS),
        16,
        "scraped request totals count exactly this server's ops"
    );
    assert_eq!(
        snap.counter_total(rndi_obs::metrics::names::NET_REQUESTS),
        registry.counter_total(rndi_obs::metrics::names::NET_REQUESTS),
    );

    // Health reflects the same ledger plus liveness.
    let health = client.scrape_health().unwrap();
    assert_eq!(health.instance, "net:mem");
    assert_eq!(health.requests_ok, 16);
    assert_eq!(health.requests_err, 0);
    assert!(health.max_conns == 64 && health.error_rate() == 0.0);

    // The remote ring yields server spans; one trace pulls coherently.
    let spans = client.dump_spans().unwrap();
    let server_span = spans
        .iter()
        .find(|s| s.layer == "server" && s.provider.as_ref() == "net:mem")
        .expect("server recorded spans");
    let trace = client.dump_trace(server_span.trace_id).unwrap();
    assert!(!trace.is_empty());
    assert!(trace.iter().all(|s| s.trace_id == server_span.trace_id));
    assert!(!client.dump_slowest(2).unwrap().is_empty());

    // A v1-configured client refuses locally: the vocabulary is v2-only.
    let v1 = NetClient::new(addr, &Environment::new().with(keys::NET_PROTO_VERSION, "1")).unwrap();
    let err = v1.scrape_metrics().unwrap_err();
    assert!(
        matches!(err, NamingError::NotSupported { .. }),
        "v1 admin scrape should be NotSupported, got {err:?}"
    );

    server.shutdown();
}
