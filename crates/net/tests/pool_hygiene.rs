//! Client pool hygiene: idle eviction, the hard pool cap, and the
//! `rndi_net_pool_{size,evictions}` metrics — under shard-router fan-out
//! a process holds one `NetClient` per shard, so leaked or immortal
//! pooled sockets multiply by N.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use parking_lot::Mutex;
use rndi_core::context::ContextExt;
use rndi_core::env::{keys, Environment};
use rndi_core::error::{NamingError, Result};
use rndi_core::op::{NamingOp, OpKind, OpOutcome, OpPayload};
use rndi_core::spi::ProviderBackend;
use rndi_net::{NetClient, NetServer};
use rndi_obs::metrics::{self, names};

/// Minimal bind/lookup backend (see interop.rs for the full-vocabulary
/// variant; the pool doesn't care what the ops do).
#[derive(Default)]
struct MemBackend {
    map: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl ProviderBackend for MemBackend {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        let name = op.name.to_string();
        match op.kind {
            OpKind::Bind | OpKind::Rebind => {
                let bytes = match &op.payload {
                    OpPayload::Wire { bytes, .. } => bytes.clone(),
                    OpPayload::Value(v) => rndi_core::op::codec::marshal(v)?,
                    other => {
                        return Err(NamingError::unsupported(format!("payload {other:?}")));
                    }
                };
                self.map.lock().insert(name, bytes);
                Ok(OpOutcome::Done)
            }
            OpKind::Lookup => match self.map.lock().get(&name) {
                Some(bytes) => Ok(OpOutcome::Wire(bytes.clone())),
                None => Err(NamingError::not_found(name)),
            },
            other => Err(NamingError::unsupported(format!("mem backend {other:?}"))),
        }
    }

    fn provider_id(&self) -> String {
        "mem".to_string()
    }
}

fn serve() -> NetServer {
    NetServer::bind(Arc::new(MemBackend::default()), &Environment::new()).expect("server starts")
}

fn evictions(endpoint: &str, reason: &str) -> u64 {
    metrics::counter(
        names::NET_POOL_EVICTIONS,
        &[("endpoint", endpoint), ("reason", reason)],
    )
    .get()
}

fn pool_gauge(endpoint: &str) -> i64 {
    metrics::gauge(names::NET_POOL_SIZE, &[("endpoint", endpoint)]).get()
}

#[test]
fn v2_idle_connections_are_evicted_and_metered() {
    let server = serve();
    let addr = server.local_addr().to_string();
    let env = Environment::new()
        .with(keys::NET_CLIENT_POOL_SIZE, "4")
        .with(keys::NET_CLIENT_IDLE_MS, "60");
    let client = NetClient::connect(addr.clone(), &env).unwrap();

    client.bind_str("a", "1").unwrap();
    assert_eq!(client.pooled(), 1, "first call pools its connection");
    assert_eq!(pool_gauge(&addr), 1);

    let before = evictions(&addr, "idle");
    std::thread::sleep(Duration::from_millis(150));
    // The next checkout sweeps the expired connection and dials afresh.
    client.lookup_str("a").unwrap();
    assert_eq!(evictions(&addr, "idle"), before + 1, "idle socket evicted");
    assert_eq!(client.pooled(), 1, "replacement connection pooled");
    assert_eq!(pool_gauge(&addr), 1);

    server.shutdown();
}

#[test]
fn v2_pool_never_exceeds_max_pool_under_fanout() {
    let server = serve();
    let addr = server.local_addr().to_string();
    // Depth 1 makes every concurrent caller want its own connection;
    // max-pool forbids pooling more than 2 of them.
    let env = Environment::new()
        .with(keys::NET_CLIENT_POOL_SIZE, "8")
        .with(keys::NET_CLIENT_MAX_POOL, "2")
        .with(keys::NET_CLIENT_PIPELINE_DEPTH, "1");
    let client = NetClient::connect(addr.clone(), &env).unwrap();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let client = client.clone();
            std::thread::spawn(move || {
                for i in 0..20 {
                    client.rebind_str(&format!("k-{t}-{i}"), "v").unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }
    assert!(
        client.pooled() <= 2,
        "pool respects the hard cap (got {})",
        client.pooled()
    );
    assert!(pool_gauge(&addr) <= 2);

    server.shutdown();
}

#[test]
fn v1_pool_caps_and_evicts_idle_sockets() {
    let server = serve();
    let addr = server.local_addr().to_string();
    let env = Environment::new()
        .with(keys::NET_PROTO_VERSION, "1")
        .with(keys::NET_CLIENT_POOL_SIZE, "1")
        .with(keys::NET_CLIENT_IDLE_MS, "60")
        .with(keys::NET_CLIENT_HEALTH_CHECK, "false");
    let client = NetClient::connect(addr.clone(), &env).unwrap();

    // Concurrent callers hold checked-out connections while the pool is
    // empty, so they all dial; only one fits the pool at checkin, the
    // rest are dropped as cap evictions.
    let cap_before = evictions(&addr, "cap");
    let barrier = Arc::new(Barrier::new(4));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let client = client.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..50 {
                    client.rebind_str(&format!("k{t}-{i}"), "v").unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }
    assert_eq!(client.pooled(), 1);
    assert!(
        evictions(&addr, "cap") > cap_before,
        "overflow checkins dropped as cap evictions"
    );
    client.rebind_str("k0", "v").unwrap();

    // And the survivor expires once idle past the ttl.
    let idle_before = evictions(&addr, "idle");
    std::thread::sleep(Duration::from_millis(150));
    client.lookup_str("k0").unwrap();
    assert_eq!(evictions(&addr, "idle"), idle_before + 1);
    assert_eq!(client.pooled(), 1);

    server.shutdown();
}
