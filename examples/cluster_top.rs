//! `cluster_top`: a live terminal view of a sharded RNDI cluster's
//! telemetry plane.
//!
//! Stands up a 4-shard HDNS cluster, drives mixed load through the
//! routing client, and renders a per-shard table (requests, error rate,
//! connections, headroom) refreshed from [`ShardCluster::scrape_all`] —
//! every number crosses the wire through the v2 admin vocabulary, no
//! in-process peeking. Finishes by printing the merged cluster
//! exposition and the slowest assembled cross-node trace.
//!
//! Run with: `cargo run --example cluster_top`

use rndi::core::prelude::*;
use rndi::serve;
use rndi::shard::ClusterScrape;

fn render(scrape: &ClusterScrape, tick: usize) {
    println!("-- tick {tick} ---------------------------------------------------------");
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>7} {:>9} {:>9} {:>7} {:>9} {:>5} {:>6}",
        "shard",
        "req_ok",
        "req_err",
        "err%",
        "conns",
        "headroom",
        "adm_hdrm",
        "shed",
        "spans",
        "view",
        "alive"
    );
    for inst in &scrape.instances {
        let h = &inst.health;
        println!(
            "{:<10} {:>9} {:>9} {:>7.2}% {:>7} {:>8.0}% {:>8.0}% {:>7} {:>9} {:>5} {:>6}",
            inst.id,
            h.requests_ok,
            h.requests_err,
            100.0 * h.error_rate(),
            h.active_conns,
            100.0 * h.headroom(),
            100.0 * h.admission_headroom(),
            h.shed_total,
            h.trace_spans,
            h.view_epoch,
            h.members_alive,
        );
    }
    for id in &scrape.unreachable {
        println!("{id:<10} UNREACHABLE");
    }
    let s = &scrape.signals;
    println!(
        "cluster    imbalance {:>5.0}%  headroom {:>3.0}%  adm_headroom {:>3.0}%  shed {}  \
         view {} ({} alive, {} suspect, {})",
        s.imbalance_pct,
        100.0 * s.headroom,
        100.0 * s.admission_headroom,
        s.shed_total,
        s.view_epoch,
        s.members_alive,
        s.members_suspect,
        if s.view_converged {
            "converged"
        } else {
            "SPLIT"
        },
    );
    for op in &s.per_op {
        println!(
            "           {:<8} n={:<6} p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us",
            op.op,
            op.count,
            op.p50_ns / 1_000.0,
            op.p95_ns / 1_000.0,
            op.p99_ns / 1_000.0
        );
    }
}

fn main() {
    let env = Environment::new();
    let cluster = serve::serve_sharded_hdns(4, &env).expect("cluster starts");
    let ctx = cluster.connect(&env).expect("router connects");
    let observer = cluster.observer().expect("observer connects");

    println!("== cluster_top: 4 shards, scraped over the data sockets ==");
    let names: Vec<String> = (0..48).map(|i| format!("svc-{i:02}")).collect();
    for n in &names {
        ctx.bind_str(n, format!("endpoint-{n}").as_str()).unwrap();
    }

    for tick in 0..3 {
        for n in &names {
            ctx.lookup_str(n).unwrap();
        }
        ctx.list(&CompositeName::empty()).unwrap();
        render(&observer.scrape_all(), tick);
    }

    let scrape = observer.scrape_all();
    println!("\n== merged cluster exposition (rollup + per-instance) ==");
    for line in scrape
        .exposition()
        .lines()
        .filter(|l| l.starts_with("rndi_net_requests_total"))
    {
        println!("{line}");
    }

    if let Some(slowest) = scrape.slowest_traces(1).first() {
        println!(
            "\n== slowest assembled trace {:#x} ({:.1}us end to end) ==",
            slowest.trace_id,
            slowest.duration_ns() as f64 / 1_000.0
        );
        for span in &slowest.spans {
            println!(
                "{:indent$}{} {} {} {:.1}us",
                "",
                span.layer,
                span.provider,
                span.op,
                span.duration_ns as f64 / 1_000.0,
                indent = (span.depth as usize) * 2
            );
        }
    }

    // The assertions that make this example CI-meaningful.
    assert_eq!(scrape.instances.len(), 4);
    assert!(scrape.unreachable.is_empty());
    assert!(scrape.exposition().contains("instance=\"cluster\""));
    assert!(scrape.exposition().contains("instance=\"shard-0\""));

    cluster.shutdown();
    println!("\ncluster_top OK");
}
