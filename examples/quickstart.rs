//! Quickstart: one API over heterogeneous naming services.
//!
//! Deploys two very different backends — a Jini-style lookup service and a
//! replicated HDNS group — registers a provider for each URL scheme, and
//! then uses a single `InitialContext` to bind, look up, and search across
//! both without caring which is which.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use rndi::core::prelude::*;
use rndi::providers::{HdnsFactory, JiniFactory};

fn main() -> Result<()> {
    // ---- Deploy the backends (normally pre-existing infrastructure) ----

    // A Jini lookup service, announced in a discovery realm.
    let clock = rndi::rlus::SystemClock::new();
    let registrar = rndi::rlus::Registrar::new(clock.clone(), 600_000, 42);
    let realm = rndi::rlus::DiscoveryRealm::new();
    realm.announce(
        rndi::rlus::discovery::LookupLocator::new("host1", 4160),
        &["public"],
        registrar,
    );

    // A two-replica HDNS deployment.
    let hdns_realm = rndi::hdns::HdnsRealm::new(
        "quickstart",
        2,
        rndi::groupcast::StackConfig::default(),
        None,
        7,
    );

    // ---- Client side: register providers, open the initial context ----

    let registry = Arc::new(ProviderRegistry::new());
    registry.register(JiniFactory::new(realm, clock));
    let hdns_factory = HdnsFactory::new();
    hdns_factory.register_host("host2", hdns_realm, 0);
    registry.register(hdns_factory);

    let ctx = InitialContext::new(registry, Environment::new())?;

    // ---- The same API against both services ----

    ctx.bind("jini://host1/printer", "laser-3rd-floor")?;
    ctx.bind("hdns://host2/printer", "inkjet-basement")?;

    println!(
        "jini://host1/printer  -> {:?}",
        ctx.lookup("jini://host1/printer")?.as_str().unwrap()
    );
    println!(
        "hdns://host2/printer  -> {:?}",
        ctx.lookup("hdns://host2/printer")?.as_str().unwrap()
    );

    // Directory operations: bind with attributes, search with an
    // LDAP-style filter — on the Jini backend, which has no native notion
    // of either (the provider translates).
    ctx.bind_with_attrs(
        "jini://host1/node01",
        BoundValue::str("stub-node01"),
        Attributes::new().with("os", "linux").with("cpu", "16"),
    )?;
    ctx.bind_with_attrs(
        "jini://host1/node02",
        BoundValue::str("stub-node02"),
        Attributes::new().with("os", "linux").with("cpu", "4"),
    )?;

    let hits = ctx.search(
        "jini://host1",
        "(&(os=linux)(cpu>=8))",
        &SearchControls::default(),
    )?;
    println!("big linux boxes in the Jini registry:");
    for h in &hits {
        println!(
            "  {} (cpu={})",
            h.name,
            h.attrs.get("cpu").unwrap().first_str().unwrap()
        );
    }
    assert_eq!(hits.len(), 1);

    // Atomic bind semantics hold everywhere, even on Jini's
    // overwrite-only registry (the provider pays the distributed-lock
    // cost behind the scenes).
    let dup = ctx.bind("jini://host1/printer", "impostor");
    println!("double bind rejected: {}", dup.unwrap_err());

    // Federation in one line: mount the Jini service inside HDNS.
    ctx.bind(
        "hdns://host2/jiniCtx",
        BoundValue::Reference(Reference::url("jini://host1")),
    )?;
    let via = ctx.lookup("hdns://host2/jiniCtx/printer")?;
    println!(
        "hdns://host2/jiniCtx/printer -> {:?}",
        via.as_str().unwrap()
    );
    assert_eq!(via.as_str(), Some("laser-3rd-floor"));

    println!("quickstart OK");
    Ok(())
}
