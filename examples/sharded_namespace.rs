//! A sharded namespace: four HDNS shards behind TCP servers, one
//! rendezvous-hash router in front. The router is just another
//! `ProviderBackend`, so the standard pipeline (cache, retry, obs) wraps
//! it unchanged — callers see one flat namespace while every bind and
//! lookup lands on exactly one shard, and whole-namespace operations
//! scatter across all of them with a deterministic name-order merge.
//!
//! Run with: `cargo run --example sharded_namespace`

use rndi::core::context::{Context, ContextExt};
use rndi::core::env::{keys, Environment};
use rndi::core::name::CompositeName;
use rndi::core::prelude::*;
use rndi::serve;

fn main() -> Result<()> {
    // ---- Server side: four single-replica HDNS realms, each a shard ----
    let cluster = serve::serve_sharded_hdns(4, &Environment::new())?;
    for shard in cluster.map().shards() {
        println!("{:8} listening on {}", shard.id(), shard.endpoint());
    }

    // ---- Client side: the routing pipeline over all four shards ----
    let env = Environment::new().with(keys::SHARD_FANOUT, "4");
    let ctx = cluster.connect(&env)?;

    // Binds route by the first name component; these spread across shards.
    for dir in ["printers", "apps", "users", "svc"] {
        ctx.create_subcontext(&dir.into())?;
    }
    for (name, value) in [
        ("printers/laser-3", "bldg-a/floor-3"),
        ("printers/inkjet-1", "bldg-a/floor-1"),
        ("apps/compiler", "grid-node-17"),
        ("apps/profiler", "grid-node-04"),
        ("users/ada", "ada@example.org"),
        ("svc/scheduler", "grid-head"),
    ] {
        ctx.bind_str(name, value)?;
    }

    // Point lookups hit only the owner shard.
    println!(
        "lookup apps/compiler  -> {:?}",
        ctx.lookup_str("apps/compiler")?.as_str().unwrap()
    );
    for key in ["printers", "apps", "users", "svc"] {
        println!("owner of {key:9} -> {}", cluster.map().owner(key).id());
    }

    // A root list scatters to every shard and merges in name order.
    let names = ctx.list(&CompositeName::empty())?;
    println!("root list ({} entries):", names.len());
    for pair in &names {
        println!("  {}", pair.name);
    }

    cluster.shutdown();
    println!("sharded_namespace OK");
    Ok(())
}
