//! Jini-style service discovery through the provider: leases that expire
//! unless renewed, the provider's automatic client-side renewal, and
//! naming events bridged from the registry's remote events (paper §5.1).
//!
//! Uses a manual clock so lease expiry is demonstrated deterministically.
//!
//! Run with: `cargo run --example service_discovery`

use std::sync::Arc;

use rndi::core::context::ContextExt;
use rndi::core::prelude::*;
use rndi::providers::common::RlusClock;
use rndi::providers::JiniProviderContext;
use rndi::rlus::{ManualClock, Registrar};

fn main() -> Result<()> {
    let clock = ManualClock::new();
    let registrar = Registrar::new(clock.clone(), 600_000, 8);

    // Relaxed bind: this example has a single writer per name, the case
    // the paper calls out as safe to run without the distributed lock.
    let env = Environment::new()
        .with(env_keys::JINI_STRICT_BIND, "false")
        .with(env_keys::LEASE_MS, "60000");
    let ctx = JiniProviderContext::new(
        registrar.clone(),
        Arc::new(RlusClock(clock.clone() as Arc<dyn rndi::rlus::Clock>)),
        env,
        "demo",
    );

    // Watch the registry through the JNDI event API.
    let listener = CollectingListener::new();
    ctx.add_listener(&CompositeName::empty(), listener.clone())?;

    println!("== registration & discovery ==");
    ctx.bind_with_attrs(
        &"transcoder".into(),
        BoundValue::str("endpoint://gpu-box:7000"),
        Attributes::new()
            .with("service", "media")
            .with("codec", "h264")
            .with("codec", "av1"),
    )?;
    ctx.bind_with_attrs(
        &"thumbnailer".into(),
        BoundValue::str("endpoint://cpu-box:7001"),
        Attributes::new()
            .with("service", "media")
            .with("codec", "jpeg"),
    )?;

    let hits = ctx.search(
        &CompositeName::empty(),
        &Filter::parse("(&(service=media)(codec=av1))")?,
        &SearchControls::default(),
    )?;
    println!(
        "services speaking AV1: {:?}",
        hits.iter().map(|h| &h.name).collect::<Vec<_>>()
    );
    assert_eq!(hits.len(), 1);

    println!("== events ==");
    let events = listener.drain();
    for e in &events {
        println!("  {:?} {}", e.event_type, e.name);
    }
    assert_eq!(events.len(), 2, "two ObjectAdded events");

    println!("== leases: the provider renews, the registry reclaims ==");
    println!("lease duration 60 s; provider renews while polled");
    for t in (15_000..=180_000).step_by(15_000) {
        clock.set(t);
        let failed = ctx.poll_leases();
        assert!(failed.is_empty());
        registrar.sweep();
    }
    assert_eq!(
        ctx.lookup_str("transcoder")?.as_str(),
        Some("endpoint://gpu-box:7000"),
        "binding alive at t=180s thanks to renewal"
    );
    println!("t=180s: transcoder still registered (renewed 3+ times): OK");

    // Now simulate the owning process going away: nobody polls, leases
    // lapse, the registry cleans up — no stale references, ever.
    println!("owner stops renewing…");
    clock.set(300_000);
    registrar.sweep();
    assert!(ctx.lookup_str("transcoder").is_err());
    assert!(ctx.lookup_str("thumbnailer").is_err());
    println!("t=300s: expired registrations reclaimed: OK");

    // The registry fired removal transitions for the expiry sweeps.
    let removals = listener.drain();
    println!(
        "events after expiry: {} (registry-side reclamation)",
        removals.len()
    );

    println!("service discovery example OK");
    Ok(())
}
