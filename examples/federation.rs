//! The paper's §6 federation scenario, end to end.
//!
//! "When querying the status of an object referred to by the URL
//! `dns://global/emory/mathcs/dcl/mokey`, [the] JNDI client would contact
//! DNS to find the address of a nearest HDNS node belonging to the
//! 'global' federation, then it would use HDNS to query for the address of
//! the 'emory/mathcs/dcl' LDAP server, and finally, it would issue the
//! 'mokey' object query to that LDAP server."
//!
//! Run with: `cargo run --example federation`

use std::sync::Arc;

use rndi::core::prelude::*;
use rndi::core::value::StoredValue;
use rndi::providers::common::MsClock;
use rndi::providers::{DnsFactory, HdnsFactory, LdapFactory};

struct WallClock(std::time::Instant);
impl MsClock for WallClock {
    fn now_ms(&self) -> u64 {
        self.0.elapsed().as_millis() as u64
    }
}

fn main() -> Result<()> {
    let clock: Arc<dyn MsClock> = Arc::new(WallClock(std::time::Instant::now()));

    // ------------------------- The root layer: DNS -------------------------
    // A well-known name anchors the federation: a TXT record at the
    // "global" anchor resolves to the nearest HDNS node.
    let dns_server = rndi::dns::AuthServer::new();
    let mut zone = rndi::dns::Zone::new(rndi::dns::DnsName::parse("global.example").unwrap());
    zone.insert(rndi::dns::ResourceRecord::txt(
        "global.example",
        3600,
        "hdns://hdns-east",
    ));
    dns_server.add_zone(zone);
    let resolver = Arc::new(rndi::dns::Resolver::new(vec![dns_server]));

    // -------------------- The intermediate layer: HDNS ---------------------
    // "The replicated information shared by all HDNS nodes is the set of
    // references to all department-level naming services."
    let hdns_realm = rndi::hdns::HdnsRealm::new(
        "global-federation",
        3,
        rndi::groupcast::StackConfig::default(),
        None,
        11,
    );
    hdns_realm.create_context(0, "emory").unwrap();
    hdns_realm.create_context(0, "emory/mathcs").unwrap();
    hdns_realm
        .bind(
            0,
            "emory/mathcs/dcl",
            rndi::hdns::HdnsEntry::leaf(
                StoredValue::Reference(Reference::url("ldap://dcl-ldap/ou=dcl")).encode(),
            ),
        )
        .unwrap();

    // ---------------------- The leaf layer: LDAP ---------------------------
    let ldap = rndi::ldap::DirectoryServer::new(rndi::ldap::ServerConfig::default());
    let admin = ldap.connect_anonymous();
    for entry in [
        rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("o=emory").unwrap())
            .with("objectClass", "organization")
            .with("o", "emory"),
        rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("ou=dcl,o=emory").unwrap())
            .with("objectClass", "organizationalUnit")
            .with("ou", "dcl"),
        rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("cn=mokey,ou=dcl,o=emory").unwrap())
            .with("objectClass", "rndiObject")
            .with("cn", "mokey")
            .with(
                "rndiValue",
                String::from_utf8(StoredValue::Str("status: alive and banana-fed".into()).encode())
                    .unwrap(),
            ),
    ] {
        admin.add(entry).unwrap();
    }

    // --------------------- Client-side integration -------------------------
    let registry = Arc::new(ProviderRegistry::new());

    let dns_factory = DnsFactory::new(clock.clone());
    dns_factory.register_anchor(
        "global",
        resolver,
        rndi::dns::DnsName::parse("global.example").unwrap(),
    );
    registry.register(dns_factory);

    let hdns_factory = HdnsFactory::new();
    hdns_factory.register_host("hdns-east", hdns_realm.clone(), 0);
    registry.register(hdns_factory.clone());

    let ldap_factory = LdapFactory::new(clock);
    ldap_factory.register_host("dcl-ldap", ldap, rndi::ldap::Dn::parse("o=emory").unwrap());
    registry.register(ldap_factory);

    let ctx = InitialContext::new(registry, Environment::new())?;

    // One lookup, three naming systems, fully transparent:
    let url = "dns://global/emory/mathcs/dcl/mokey";
    let value = ctx.lookup(url)?;
    println!("{url}");
    println!("  DNS  (root)        resolved 'global' -> hdns://hdns-east");
    println!("  HDNS (intermediate) resolved 'emory/mathcs/dcl' -> ldap://dcl-ldap/ou=dcl");
    println!("  LDAP (leaf)         resolved 'mokey'");
    println!("  => {:?}", value.as_str().unwrap());
    assert_eq!(value.as_str(), Some("status: alive and banana-fed"));

    // The same works from any HDNS replica: reads are replica-local.
    hdns_factory.register_host("hdns-west", hdns_realm, 2);
    let value2 = ctx.lookup("hdns://hdns-west/emory/mathcs/dcl/mokey")?;
    assert_eq!(value2.as_str(), value.as_str());
    println!("same answer via replica hdns-west: OK");

    // And the paper's §6 API snippet — linking naming services by binding
    // one context into another:
    ctx.bind(
        "hdns://hdns-east/ldapDirect",
        BoundValue::Reference(Reference::url("ldap://dcl-ldap/ou=dcl")),
    )?;
    let shortcut = ctx.lookup("hdns://hdns-east/ldapDirect/mokey")?;
    assert_eq!(shortcut.as_str(), value.as_str());
    println!("federated shortcut hdns://hdns-east/ldapDirect/mokey: OK");

    println!("federation example OK");
    Ok(())
}
