//! `cluster_membership`: the membership plane managing a real HDNS
//! replica group over loopback TCP.
//!
//! Boots five `ClusterNode`s from one seed, lets gossip converge them
//! into a single view, replicates writes through arbitrary replicas,
//! then kills one node cold — no goodbye — and watches phi-accrual
//! suspicion excise it while the surviving majority keeps serving.
//! Finishes with the telemetry view: the membership gauges
//! (`rndi_cluster_*`) crossing the admin scrape.
//!
//! Run with: `cargo run --example cluster_membership`

use std::time::{Duration, Instant};

use hdns::{HdnsEntry, Op, OpOutcome};
use rndi::core::env::{keys, Environment};
use rndi::net::proto::MemberState;
use rndi::serve::{serve_cluster_hdns, HdnsCluster};

/// Poll `cond` until it holds or `budget` elapses.
fn wait_for(budget: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + budget;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn converged(cluster: &HdnsCluster, n: usize) -> bool {
    cluster.nodes().iter().all(|node| {
        node.view().map_or(0, |v| v.members.len()) == n
            && node.members().len() == n
            && node.members().iter().all(|m| m.state == MemberState::Alive)
    })
}

fn roster(cluster: &HdnsCluster) {
    for node in cluster.nodes() {
        let states: Vec<String> = node
            .members()
            .iter()
            .map(|m| format!("{}:{:?}@{}", m.name, m.state, m.incarnation))
            .collect();
        println!(
            "  {} view seq {:>2}  [{}]",
            node.name(),
            node.view().map_or(0, |v| v.seq),
            states.join(" ")
        );
    }
}

fn main() {
    // A fast failure detector keeps the demo snappy: 10ms gossip rounds
    // put suspicion around 200ms of silence and death around 400ms.
    let env = Environment::new()
        .with(keys::CLUSTER_GOSSIP_INTERVAL_MS, "10")
        .with(keys::CLUSTER_PHI_THRESHOLD, "8")
        .with(keys::CLUSTER_QUARANTINE_MS, "500");

    println!("== cluster_membership: 5 HDNS replicas, one seed, real TCP ==");
    let mut cluster = serve_cluster_hdns(5, "demo-realm", &env).expect("cluster boots");
    for node in cluster.nodes() {
        println!("  {} listening on {}", node.name(), node.endpoint());
    }

    wait_for(Duration::from_secs(15), "5-node convergence", || {
        converged(&cluster, 5)
    });
    println!("\n-- converged: one view, everyone Alive --");
    roster(&cluster);

    // Writes land through any replica and replicate to all.
    assert!(matches!(
        cluster.node(1).write_sync(Op::CreateContext {
            path: "services".into()
        }),
        OpOutcome::Done(Ok(()))
    ));
    assert!(matches!(
        cluster.node(3).write_sync(Op::Bind {
            path: "services/db".into(),
            entry: HdnsEntry::leaf(b"db:5432".to_vec()),
            overwrite: true,
        }),
        OpOutcome::Done(Ok(()))
    ));
    wait_for(Duration::from_secs(5), "bind replication", || {
        cluster
            .nodes()
            .iter()
            .all(|n| n.lookup("services/db").is_some())
    });
    println!("\nbound services/db via node-3; visible on all 5 replicas");

    // Kill node-4 cold: sockets torn down, no leave protocol.
    let victim = cluster.take(4);
    println!("\n-- killing {} (no goodbye) --", victim.name());
    victim.kill();

    wait_for(
        Duration::from_secs(15),
        "node-4 excised from the view",
        || {
            cluster
                .nodes()
                .iter()
                .all(|n| n.view().map_or(0, |v| v.members.len()) == 4)
        },
    );
    println!("phi accrued, node-4 declared dead, view shrank to the survivors:");
    roster(&cluster);

    // 4 of 5 known members is a quorum: the survivors keep writing.
    assert!(cluster.node(0).writes_allowed());
    assert!(matches!(
        cluster.node(0).write_sync(Op::Bind {
            path: "services/cache".into(),
            entry: HdnsEntry::leaf(b"cache:6379".to_vec()),
            overwrite: true,
        }),
        OpOutcome::Done(Ok(()))
    ));
    wait_for(Duration::from_secs(5), "post-kill replication", || {
        cluster
            .nodes()
            .iter()
            .all(|n| n.lookup("services/cache").is_some())
    });
    println!("post-kill write replicated across the surviving 4");

    // Membership is telemetry: the same admin scrape that carries
    // request counters carries the rndi_cluster_* gauges.
    let scrape = cluster.scrape_all().expect("admin scrape");
    println!("\n== membership series from the merged cluster exposition ==");
    for line in scrape.exposition().lines().filter(|l| {
        l.starts_with("rndi_cluster_")
            && (l.contains("instance=\"cluster\"") || l.contains("instance=\"node-0\""))
    }) {
        println!("{line}");
    }
    let s = &scrape.signals;
    println!(
        "signals: view {} ({} alive, {} suspect, {})",
        s.view_epoch,
        s.members_alive,
        s.members_suspect,
        if s.view_converged {
            "converged"
        } else {
            "SPLIT"
        }
    );

    // The assertions that make this example CI-meaningful.
    assert_eq!(scrape.instances.len(), 4, "survivors all scraped");
    assert!(scrape.exposition().contains("rndi_cluster_members"));
    assert!(scrape
        .exposition()
        .contains("rndi_cluster_gossip_rounds_total"));
    assert!(s.view_converged, "survivors agree on the view epoch");
    assert_eq!(s.members_alive, 4);

    cluster.shutdown();
    println!("\ncluster_membership OK");
}
