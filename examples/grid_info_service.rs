//! A grid information service — the workload class the paper's
//! introduction motivates (ICENI, JGrid, Triana, Globe all needed one).
//!
//! Two departments run their own, heterogeneous registries (one Jini, one
//! LDAP). A campus-level HDNS group federates them, and a scheduler-like
//! client discovers compute resources across both with a single
//! attribute query per site — never knowing which backend served it.
//!
//! Run with: `cargo run --example grid_info_service`

use std::sync::Arc;

use rndi::core::prelude::*;
use rndi::providers::common::MsClock;
use rndi::providers::{HdnsFactory, JiniFactory, LdapFactory};

struct WallClock(std::time::Instant);
impl MsClock for WallClock {
    fn now_ms(&self) -> u64 {
        self.0.elapsed().as_millis() as u64
    }
}

fn main() -> Result<()> {
    let ms_clock: Arc<dyn MsClock> = Arc::new(WallClock(std::time::Instant::now()));

    // Department A prefers Jini (like JGrid / JISGA / ALiCE).
    let rlus_clock = rndi::rlus::SystemClock::new();
    let registrar = rndi::rlus::Registrar::new(rlus_clock.clone(), 600_000, 3);
    let jini_realm = rndi::rlus::DiscoveryRealm::new();
    jini_realm.announce(
        rndi::rlus::discovery::LookupLocator::new("mathcs-lus", 4160),
        &["mathcs"],
        registrar,
    );

    // Department B runs LDAP (like Globus MDS v2).
    let ldap = rndi::ldap::DirectoryServer::new(rndi::ldap::ServerConfig::default());
    ldap.connect_anonymous()
        .add(
            rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("o=physics").unwrap())
                .with("objectClass", "organization")
                .with("o", "physics"),
        )
        .unwrap();

    // The campus federation layer: HDNS.
    let hdns_realm = rndi::hdns::HdnsRealm::new(
        "campus",
        2,
        rndi::groupcast::StackConfig::default(),
        None,
        13,
    );

    let registry = Arc::new(ProviderRegistry::new());
    registry.register(JiniFactory::new(jini_realm, rlus_clock));
    let ldap_factory = LdapFactory::new(ms_clock);
    ldap_factory.register_host(
        "physics-ldap",
        ldap,
        rndi::ldap::Dn::parse("o=physics").unwrap(),
    );
    registry.register(ldap_factory);
    let hdns_factory = HdnsFactory::new();
    hdns_factory.register_host("campus", hdns_realm, 0);
    registry.register(hdns_factory);

    let ctx = InitialContext::new(registry, Environment::new())?;

    // ---- Departments publish their resources (each in its own world) ----
    for (name, cpu, mem) in [("mc-n01", "16", "32768"), ("mc-n02", "8", "16384")] {
        ctx.bind_with_attrs(
            &format!("jini://mathcs-lus/{name}"),
            BoundValue::str(format!("endpoint://{name}.mathcs:9000")),
            Attributes::new()
                .with("type", "compute")
                .with("os", "linux")
                .with("cpu", cpu)
                .with("memoryMb", mem),
        )?;
    }
    for (name, cpu, mem) in [("ph-big01", "64", "262144"), ("ph-n07", "8", "8192")] {
        ctx.bind_with_attrs(
            &format!("ldap://physics-ldap/{name}"),
            BoundValue::str(format!("endpoint://{name}.physics:9000")),
            Attributes::new()
                .with("type", "compute")
                .with("os", "linux")
                .with("cpu", cpu)
                .with("memoryMb", mem),
        )?;
    }

    // ---- The campus mounts both departments into one name space ----
    ctx.bind(
        "hdns://campus/mathcs",
        BoundValue::Reference(Reference::url("jini://mathcs-lus")),
    )?;
    ctx.bind(
        "hdns://campus/physics",
        BoundValue::Reference(Reference::url("ldap://physics-ldap")),
    )?;

    // ---- A scheduler hunts for big machines across the federation ----
    let filter = "(&(type=compute)(cpu>=16))";
    println!("query: {filter}");
    let mut found = Vec::new();
    for dept in ["mathcs", "physics"] {
        let hits = ctx.search(
            &format!("hdns://campus/{dept}"),
            filter,
            &SearchControls {
                return_values: true,
                ..Default::default()
            },
        )?;
        for h in hits {
            let endpoint = h
                .value
                .as_ref()
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            println!(
                "  [{dept}] {:<10} cpu={:<3} mem={:<7} {endpoint}",
                h.name,
                h.attrs.get("cpu").unwrap().first_str().unwrap(),
                h.attrs.get("memoryMb").unwrap().first_str().unwrap(),
            );
            found.push(format!("{dept}/{}", h.name));
        }
    }
    found.sort();
    assert_eq!(found.len(), 2, "mc-n01 (jini) and ph-big01 (ldap)");

    // Drill into one resource through the federated path.
    let v = ctx.lookup("hdns://campus/physics/ph-big01")?;
    println!("allocated: {}", v.as_str().unwrap());

    // A department decommissions a node; the federation reflects it.
    ctx.unbind("hdns://campus/mathcs/mc-n02")?;
    assert!(ctx.lookup("jini://mathcs-lus/mc-n02").is_err());
    println!("decommissioned mc-n02 through the federated name: OK");

    println!("grid info service example OK");
    Ok(())
}
