//! A networked HDNS deployment: the replica group runs behind TCP
//! servers, and the client talks to it over loopback through a
//! `NetClient` — which is just another `ProviderBackend`, so the usual
//! pipeline (retry, cache, obs) wraps the remote calls unchanged.
//!
//! The connection speaks wire protocol v2 (binary envelopes multiplexed
//! by request ID) by default; setting `rndi.net.proto.version=1` on the
//! client environment would pin it to the legacy framed-JSON protocol —
//! the servers accept both on the same port.
//!
//! Run with: `cargo run --example remote_hdns`

use rndi::core::context::{ContextExt, DirContext};
use rndi::core::env::{keys, Environment};
use rndi::core::filter::Filter;
use rndi::core::name::CompositeName;
use rndi::core::prelude::*;
use rndi::net::NetClient;
use rndi::serve;

fn main() -> Result<()> {
    // ---- Server side: a two-replica HDNS realm, each node a TCP endpoint ----
    let realm = rndi::hdns::HdnsRealm::new(
        "remote",
        2,
        rndi::groupcast::StackConfig::default(),
        None,
        7,
    );
    let node0 = serve::serve_hdns(realm.clone(), 0, "remote", &Environment::new())?;
    let node1 = serve::serve_hdns(realm, 1, "remote", &Environment::new())?;
    println!("hdns node 0 listening on {}", node0.local_addr());
    println!("hdns node 1 listening on {}", node1.local_addr());

    // ---- Client side: dial the nearest node, with retry enabled ----
    let env = Environment::new()
        .with(keys::RETRY_MAX_ATTEMPTS, "3")
        .with(keys::RETRY_BACKOFF_MS, "50");
    let ctx = NetClient::connect(node0.local_addr().to_string(), &env)?;

    ctx.bind_str("printer", "laser-3rd-floor")?;
    ctx.bind_with_attrs(
        &"node01".into(),
        BoundValue::str("stub-node01"),
        Attributes::new().with("os", "linux").with("cpu", "16"),
    )?;

    println!(
        "lookup printer        -> {:?}",
        ctx.lookup_str("printer")?.as_str().unwrap()
    );

    // Writes replicate through the group: a second client on the *other*
    // node sees them.
    let other = NetClient::connect(node1.local_addr().to_string(), &env)?;
    println!(
        "lookup via node 1     -> {:?}",
        other.lookup_str("printer")?.as_str().unwrap()
    );

    // Directory search over the wire.
    let hits = other.search(
        &CompositeName::empty(),
        &Filter::parse("(&(os=linux)(cpu>=8))")?,
        &SearchControls::default(),
    )?;
    println!("big linux boxes       -> {:?}", hits[0].name);

    // One linked trace spans client and server: the last lookup's trace
    // contains spans from both sides of the wire.
    let ring = rndi::obs::trace::ring();
    if let Some(anchor) = ring
        .snapshot()
        .iter()
        .rev()
        .find(|s| s.layer == "client" && s.op == "search")
    {
        let trace = ring.trace(anchor.trace_id);
        println!("trace {:#x} has {} spans:", anchor.trace_id, trace.len());
        for s in &trace {
            println!("  depth {} {:10} {} {}", s.depth, s.layer, s.provider, s.op);
        }
    }

    node0.shutdown();
    node1.shutdown();
    println!("remote_hdns OK");
    Ok(())
}
