//! HDNS fault tolerance (paper §4.1): crash/restart recovery, disk
//! persistence across a complete shutdown, and network-partition healing
//! via the PRIMARY_PARTITION protocol.
//!
//! Run with: `cargo run --example fault_tolerance`

use rndi::groupcast::StackConfig;
use rndi::hdns::{HdnsEntry, HdnsEvent, HdnsRealm};

fn main() {
    let data_dir = std::env::temp_dir().join("rndi-fault-tolerance-example");
    let _ = std::fs::remove_dir_all(&data_dir);

    // Three replicas, persisting snapshots under data_dir.
    let realm = HdnsRealm::new(
        "ft-demo",
        3,
        StackConfig::default(),
        Some(data_dir.clone()),
        2026,
    );

    println!("== normal operation ==");
    realm
        .bind(0, "svc-a", HdnsEntry::leaf(b"alpha".to_vec()))
        .unwrap();
    realm
        .bind(1, "svc-b", HdnsEntry::leaf(b"beta".to_vec()))
        .unwrap();
    for i in 0..3 {
        assert_eq!(realm.lookup(i, "svc-a").unwrap().value, b"alpha");
    }
    println!("writes via different replicas visible everywhere: OK");

    println!("== crash & re-join ==");
    realm.crash(2);
    assert!(!realm.is_alive(2));
    // Service continues; writes land on the survivors.
    realm
        .bind(0, "svc-c", HdnsEntry::leaf(b"gamma".to_vec()))
        .unwrap();
    realm.restart(2);
    assert!(realm.is_alive(2));
    assert_eq!(
        realm.lookup(2, "svc-c").unwrap().value,
        b"gamma",
        "rejoined replica caught up via state transfer"
    );
    println!("crashed replica re-joined and re-synchronized: OK");

    println!("== network partition & PRIMARY_PARTITION ==");
    // Isolate replica 2; both sides keep answering reads and accepting
    // writes (availability over consistency during the partition).
    realm.partition(&[&[0, 1], &[2]]);
    realm
        .bind(0, "written-by-majority", HdnsEntry::leaf(b"keep".to_vec()))
        .unwrap();
    realm
        .bind(2, "written-by-minority", HdnsEntry::leaf(b"drop".to_vec()))
        .unwrap();
    println!("both sides accepted writes while partitioned");

    realm.heal();
    // "The PRIMARY PARTITION protocol resolves state conflicts by uniquely
    // selecting the partition deemed to have the valid state, and forcing
    // other partitions to re-synchronize."
    for i in 0..3 {
        assert!(realm.lookup(i, "written-by-majority").is_some());
        assert!(
            realm.lookup(i, "written-by-minority").is_none(),
            "divergent minority write discarded on replica {i}"
        );
    }
    let resynced = realm
        .take_events(2)
        .into_iter()
        .any(|e| e == HdnsEvent::Resynced);
    assert!(resynced, "loser side re-synchronized");
    println!("partition healed; minority side forced to re-synchronize: OK");

    println!("== dynamic deployment while in operation ==");
    // §6: "Additional nodes can be deployed dynamically at a later stage
    // as well, while the system is already in operation."
    let newcomer = realm.add_replica();
    assert_eq!(realm.lookup(newcomer, "svc-a").unwrap().value, b"alpha");
    realm
        .bind(newcomer, "svc-d", HdnsEntry::leaf(b"delta".to_vec()))
        .unwrap();
    assert_eq!(realm.lookup(0, "svc-d").unwrap().value, b"delta");
    println!("replica {newcomer} joined live, synced, and serves writes: OK");

    println!("== complete shutdown & cold recovery from disk ==");
    realm.shutdown_replica(0);
    realm.shutdown_replica(1);
    realm.shutdown_replica(2);
    drop(realm);

    let reborn = HdnsRealm::new(
        "ft-demo",
        3,
        StackConfig::default(),
        Some(data_dir.clone()),
        2027,
    );
    assert_eq!(reborn.lookup(0, "svc-a").unwrap().value, b"alpha");
    assert!(reborn.lookup(1, "written-by-majority").is_some());
    println!("fresh deployment recovered persisted state: OK");

    let _ = std::fs::remove_dir_all(&data_dir);
    println!("fault tolerance example OK");
}
