//! Serving the workspace's backends over the network transport.
//!
//! The net layer only knows the [`ProviderBackend`] vocabulary; these
//! helpers do the provider-specific assembly — build the provider's
//! standard pipeline (so the *server* side keeps its cache/retry/obs
//! layers) and bind a [`NetServer`] in front of it. A remote
//! [`NetClient`](rndi_net::NetClient) then composes its own pipeline on
//! the other end of the wire.

use std::sync::Arc;

use rndi_cluster::{ClusterConfig, ClusterNode};
use rndi_core::env::Environment;
use rndi_core::error::Result;
use rndi_core::spi::{ProviderBackend, ProviderPipeline};
use rndi_net::{NetServer, ServerConfig};
use rndi_shard::{ClusterObserver, ClusterScrape, ShardInfo, ShardMap, ShardRouter};

use dirserv::server::Connection;
use dirserv::Dn;
use groupcast::StackConfig;
use hdns::HdnsRealm;
use rlus::Registrar;
use rndi_providers::common::MsClock;
use rndi_providers::hdns::HdnsProviderContext;
use rndi_providers::jini::JiniProviderContext;
use rndi_providers::ldap::LdapProviderContext;

/// Host an arbitrary backend (or pipeline — `ProviderPipeline` is itself
/// a backend) behind a TCP listener configured by `rndi.net.*` keys.
pub fn serve_backend(backend: Arc<dyn ProviderBackend>, env: &Environment) -> Result<NetServer> {
    NetServer::bind(backend, env)
}

/// Expose one HDNS replica as a network endpoint: every node of a realm
/// can be served independently, giving remote clients the paper's
/// "nearest node" choice.
pub fn serve_hdns(
    realm: HdnsRealm,
    node: usize,
    instance: &str,
    env: &Environment,
) -> Result<NetServer> {
    let pipeline = HdnsProviderContext::with_env(realm, node, instance, env);
    NetServer::bind(pipeline, env)
}

/// Expose an LDAP directory connection as a network endpoint.
pub fn serve_ldap(
    conn: Connection,
    base: Dn,
    clock: Arc<dyn MsClock>,
    instance: &str,
    env: &Environment,
) -> Result<NetServer> {
    let pipeline = LdapProviderContext::with_env(conn, base, clock, instance, env);
    NetServer::bind(pipeline, env)
}

/// A locally-hosted shard cluster: N backends each behind their own
/// [`NetServer`], plus the [`ShardMap`] describing where they listen.
///
/// Built by [`serve_sharded`] (explicit backends) or
/// [`serve_sharded_hdns`] (one single-replica HDNS realm per shard).
/// Routers connect with [`ShardCluster::connect`]; any number of client
/// processes can instead read [`ShardCluster::map`]'s rendered form from
/// `rndi.shard.map` and call [`ShardRouter::connect`] themselves.
pub struct ShardCluster {
    map: ShardMap,
    servers: Vec<NetServer>,
    env: Environment,
}

impl ShardCluster {
    /// The membership: shard ids and the `host:port` each listens on.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// A routing client over this cluster: one pooled [`NetClient`]
    /// (rndi_net::NetClient) per shard under a [`ShardRouter`], wrapped in
    /// the standard pipeline stack.
    pub fn connect(&self, env: &Environment) -> Result<Arc<ProviderPipeline<ShardRouter>>> {
        ShardRouter::connect(self.map.clone(), env)
    }

    /// A telemetry scraper over this cluster: one admin client per shard
    /// (see [`ClusterObserver`]).
    pub fn observer(&self) -> Result<ClusterObserver> {
        ClusterObserver::new(&self.map, &self.env)
    }

    /// One full telemetry pass: scrape every shard's metrics, health, and
    /// trace ring over the data sockets and merge them into one cluster
    /// view (convenience for [`ShardCluster::observer`] + `scrape_all`).
    pub fn scrape_all(&self) -> Result<ClusterScrape> {
        Ok(self.observer()?.scrape_all())
    }

    /// Stop every shard server, draining in-flight requests first.
    pub fn shutdown(self) {
        for server in self.servers {
            server.shutdown();
        }
    }
}

/// Host `backends` as a shard cluster: shard `i` (id `shard-<i>`) serves
/// `backends[i]` behind its own [`NetServer`].
///
/// Each server binds per `rndi.net.listen`; keep the default ephemeral
/// `127.0.0.1:0` when hosting more than one shard in-process (a fixed
/// port can only bind once) and read the resulting endpoints back from
/// [`ShardCluster::map`].
pub fn serve_sharded(
    backends: Vec<Arc<dyn ProviderBackend>>,
    env: &Environment,
) -> Result<ShardCluster> {
    let config = ServerConfig::from_env(env)?;
    let mut servers = Vec::with_capacity(backends.len());
    for backend in backends {
        // Each shard gets its own metrics registry so a remote scrape
        // returns *that* instance's series; the cluster observer stamps
        // and merges them without per-process disambiguation hacks.
        let registry = Arc::new(rndi_obs::Registry::new());
        servers.push(NetServer::with_registry(backend, config.clone(), registry)?);
    }
    let map = ShardMap::new(
        servers
            .iter()
            .enumerate()
            .map(|(i, s)| ShardInfo::new(format!("shard-{i}"), s.local_addr().to_string()))
            .collect(),
    )?;
    Ok(ShardCluster {
        map,
        servers,
        env: env.clone(),
    })
}

/// The paper-native composition: partition the namespace across `shards`
/// independent single-replica HDNS realms, each with its own standard
/// provider pipeline and network endpoint. [`ShardCluster::connect`]
/// yields the routing client.
pub fn serve_sharded_hdns(shards: usize, env: &Environment) -> Result<ShardCluster> {
    let backends = (0..shards)
        .map(|i| {
            let realm = HdnsRealm::new(
                &format!("shard-{i}"),
                1,
                StackConfig::default(),
                None,
                i as u64 + 1,
            );
            HdnsProviderContext::with_env(realm, 0, &format!("hdns-shard-{i}"), env)
                as Arc<dyn ProviderBackend>
        })
        .collect();
    serve_sharded(backends, env)
}

/// A locally-hosted replicated HDNS cluster on the membership plane:
/// `n` [`ClusterNode`]s gossiping over real TCP, each hosting a replica
/// of the *same* namespace (contrast [`ShardCluster`], which partitions
/// it). Built by [`serve_cluster_hdns`].
///
/// The node list is mutable so chaos tests can [`HdnsCluster::take`] a
/// node out (to kill or restart it) and [`HdnsCluster::push`] a
/// replacement back in.
pub struct HdnsCluster {
    nodes: Vec<ClusterNode>,
    env: Environment,
}

impl HdnsCluster {
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    pub fn node(&self, i: usize) -> &ClusterNode {
        &self.nodes[i]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Remove a node from the cluster's bookkeeping (it keeps running —
    /// call [`ClusterNode::kill`] or [`ClusterNode::shutdown`] on it).
    pub fn take(&mut self, i: usize) -> ClusterNode {
        self.nodes.remove(i)
    }

    /// Adopt a node (e.g. a restarted one) into the bookkeeping.
    pub fn push(&mut self, node: ClusterNode) {
        self.nodes.push(node);
    }

    /// The membership rendered as a [`ShardMap`] (node name → endpoint),
    /// which is what the telemetry plane scrapes by.
    pub fn map(&self) -> Result<ShardMap> {
        ShardMap::new(
            self.nodes
                .iter()
                .map(|n| ShardInfo::new(n.name(), n.endpoint()))
                .collect(),
        )
    }

    /// A telemetry scraper over every live node's admin surface.
    pub fn observer(&self) -> Result<ClusterObserver> {
        ClusterObserver::new(&self.map()?, &self.env)
    }

    /// One full telemetry pass over the cluster: per-node metrics
    /// (including the `rndi_cluster_*` series), health with membership
    /// summaries, and trace rings, merged.
    pub fn scrape_all(&self) -> Result<ClusterScrape> {
        Ok(self.observer()?.scrape_all())
    }

    /// Gracefully stop every node.
    pub fn shutdown(self) {
        for node in self.nodes {
            node.shutdown();
        }
    }
}

/// Boot an `n`-node replicated HDNS cluster from one seed.
///
/// `node-0` bootstraps the view lineage; every other node is pointed at
/// its endpoint via `rndi.cluster.seed` and joins by gossip — membership
/// convergence, view installation, and state transfer all happen over
/// the wire exactly as they would across machines. Remaining
/// `rndi.cluster.*` knobs (gossip interval, phi threshold, quarantine)
/// are read from `env`.
pub fn serve_cluster_hdns(n: usize, group: &str, env: &Environment) -> Result<HdnsCluster> {
    let mut nodes = Vec::with_capacity(n);
    let seed_free = env.clone().with(rndi_core::env::keys::CLUSTER_SEED, "");
    nodes.push(ClusterNode::start(ClusterConfig::from_env(
        "node-0", group, &seed_free,
    )?)?);
    let seeded = env
        .clone()
        .with(rndi_core::env::keys::CLUSTER_SEED, nodes[0].endpoint());
    for i in 1..n {
        nodes.push(ClusterNode::start(ClusterConfig::from_env(
            format!("node-{i}"),
            group,
            &seeded,
        )?)?);
    }
    Ok(HdnsCluster {
        nodes,
        env: env.clone(),
    })
}

/// Expose an rlus registrar (the Jini-analog lookup service) as a
/// network endpoint.
pub fn serve_jini(
    registrar: Registrar,
    clock: Arc<dyn MsClock>,
    instance: &str,
    env: &Environment,
) -> Result<NetServer> {
    let pipeline = JiniProviderContext::new(registrar, clock, env.clone(), instance);
    NetServer::bind(pipeline, env)
}
