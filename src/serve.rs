//! Serving the workspace's backends over the network transport.
//!
//! The net layer only knows the [`ProviderBackend`] vocabulary; these
//! helpers do the provider-specific assembly — build the provider's
//! standard pipeline (so the *server* side keeps its cache/retry/obs
//! layers) and bind a [`NetServer`] in front of it. A remote
//! [`NetClient`](rndi_net::NetClient) then composes its own pipeline on
//! the other end of the wire.

use std::sync::Arc;

use rndi_core::env::Environment;
use rndi_core::error::Result;
use rndi_core::spi::ProviderBackend;
use rndi_net::NetServer;

use dirserv::server::Connection;
use dirserv::Dn;
use hdns::HdnsRealm;
use rlus::Registrar;
use rndi_providers::common::MsClock;
use rndi_providers::hdns::HdnsProviderContext;
use rndi_providers::jini::JiniProviderContext;
use rndi_providers::ldap::LdapProviderContext;

/// Host an arbitrary backend (or pipeline — `ProviderPipeline` is itself
/// a backend) behind a TCP listener configured by `rndi.net.*` keys.
pub fn serve_backend(backend: Arc<dyn ProviderBackend>, env: &Environment) -> Result<NetServer> {
    NetServer::bind(backend, env)
}

/// Expose one HDNS replica as a network endpoint: every node of a realm
/// can be served independently, giving remote clients the paper's
/// "nearest node" choice.
pub fn serve_hdns(
    realm: HdnsRealm,
    node: usize,
    instance: &str,
    env: &Environment,
) -> Result<NetServer> {
    let pipeline = HdnsProviderContext::with_env(realm, node, instance, env);
    NetServer::bind(pipeline, env)
}

/// Expose an LDAP directory connection as a network endpoint.
pub fn serve_ldap(
    conn: Connection,
    base: Dn,
    clock: Arc<dyn MsClock>,
    instance: &str,
    env: &Environment,
) -> Result<NetServer> {
    let pipeline = LdapProviderContext::with_env(conn, base, clock, instance, env);
    NetServer::bind(pipeline, env)
}

/// Expose an rlus registrar (the Jini-analog lookup service) as a
/// network endpoint.
pub fn serve_jini(
    registrar: Registrar,
    clock: Arc<dyn MsClock>,
    instance: &str,
    env: &Environment,
) -> Result<NetServer> {
    let pipeline = JiniProviderContext::new(registrar, clock, env.clone(), instance);
    NetServer::bind(pipeline, env)
}
