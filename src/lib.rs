//! # RNDI — Rust Naming and Directory Interface
//!
//! Facade crate for the RNDI workspace: a reproduction of
//! *"Integrating heterogeneous information services using JNDI"* (IPPS 2006).
//!
//! Re-exports the public API of every workspace crate so downstream users can
//! depend on a single crate:
//!
//! * [`core`] — the JNDI-analog client API and SPI (names, contexts,
//!   attributes, filters, federation, events, leases).
//! * [`providers`] — service providers bridging the API onto each backend.
//! * [`rlus`], [`hdns`], [`dns`], [`ldap`] — the backend services themselves.
//! * [`shard`] — the rendezvous-hash routing tier partitioning one
//!   namespace across N networked shards.
//! * [`groupcast`] — the group-communication toolkit underneath HDNS.
//! * [`simnet`] — the virtual-time cluster used by the evaluation harness.
//!
//! ## A one-minute federation
//!
//! ```
//! use rndi::core::prelude::*;
//! use std::sync::Arc;
//!
//! // Two "services" (in-memory here; jini/hdns/dns/ldap in production —
//! // see examples/).
//! let registry = Arc::new(ProviderRegistry::new());
//! registry.register(MemFactory::new());
//!
//! let ctx = InitialContext::new(registry, Environment::new()).unwrap();
//! ctx.bind("mem://east/printer", "laser-3").unwrap();
//!
//! // Link the east service into the west service, then traverse the
//! // composite URL — one lookup, two naming systems.
//! ctx.bind(
//!     "mem://west/east-link",
//!     BoundValue::Reference(Reference::url("mem://east")),
//! )
//! .unwrap();
//! let v = ctx.lookup("mem://west/east-link/printer").unwrap();
//! assert_eq!(v.as_str(), Some("laser-3"));
//! ```

pub mod serve;

pub use rndi_core as core;
pub use rndi_net as net;
pub use rndi_obs as obs;
pub use rndi_providers as providers;
pub use rndi_shard as shard;

pub use dirserv as ldap;
pub use groupcast;
pub use hdns;
pub use minidns as dns;
pub use rlus;
pub use rndi_cluster as cluster;
pub use simnet;
