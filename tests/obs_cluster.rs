//! End-to-end cluster telemetry acceptance: four HDNS shards behind TCP
//! servers under real load, then one [`ShardCluster::scrape_all`] pass
//! must deliver (1) a merged exposition whose cluster-rollup op counts
//! equal the sum of the per-instance counts, (2) a cross-node trace
//! assembled by id spanning the router and server legs, and (3) a flight
//! recorder dump provoked by an injected slow op — all from the merged
//! output, nothing asserted against a shard's private state.

use std::sync::Arc;
use std::time::Duration;

use rndi::core::env::keys;
use rndi::core::error::Result;
use rndi::core::name::CompoundSyntax;
use rndi::core::op::{NamingOp, OpOutcome};
use rndi::core::prelude::*;
use rndi::core::spi::ProviderBackend;
use rndi::obs::expo;
use rndi::providers::hdns::HdnsProviderContext;
use rndi::serve;

/// Wraps a shard backend and stalls any op whose name mentions `slow` —
/// the anomaly injector for the flight-recorder leg of the test.
struct SlowLens {
    inner: Arc<dyn ProviderBackend>,
    delay: Duration,
}

impl ProviderBackend for SlowLens {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        if op.name.to_string().contains("slow") {
            std::thread::sleep(self.delay);
        }
        self.inner.execute(op)
    }

    fn provider_id(&self) -> String {
        self.inner.provider_id()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        self.inner.compound_syntax()
    }
}

fn slow_hdns_cluster(shards: usize, env: &Environment) -> serve::ShardCluster {
    let backends = (0..shards)
        .map(|i| {
            let realm = hdns::HdnsRealm::new(
                &format!("shard-{i}"),
                1,
                groupcast::StackConfig::default(),
                None,
                i as u64 + 1,
            );
            Arc::new(SlowLens {
                inner: HdnsProviderContext::with_env(realm, 0, &format!("hdns-shard-{i}"), env),
                delay: Duration::from_millis(50),
            }) as Arc<dyn ProviderBackend>
        })
        .collect();
    serve::serve_sharded(backends, env).expect("cluster starts")
}

#[test]
fn cluster_scrape_merges_rolls_up_assembles_and_flight_records() {
    let flight_dir = std::env::temp_dir().join(format!("rndi-flight-e2e-{}", std::process::id()));
    let env = Environment::new()
        .with(keys::OBS_FLIGHT_DIR, flight_dir.to_str().unwrap())
        .with(keys::OBS_FLIGHT_MIN_SAMPLES, "32");

    let cluster = slow_hdns_cluster(4, &env);
    let ctx = cluster.connect(&env).unwrap();

    // Load: the slow probe binds FIRST (its watch is still cold, so no
    // dump fires), then enough fast traffic to establish a trailing p99.
    ctx.bind_str("slow-probe", "anomaly").unwrap();
    let names: Vec<String> = (0..32).map(|i| format!("entry-{i:02}")).collect();
    for n in &names {
        ctx.bind_str(n, format!("v-{n}").as_str()).unwrap();
    }
    for round in 0..3 {
        for n in &names {
            assert_eq!(
                ctx.lookup_str(n).unwrap().as_str(),
                Some(format!("v-{n}").as_str()),
                "round {round}"
            );
        }
    }

    // ---- (3) flight recorder: one op far past the trailing p99 dumps --
    assert!(rndi::obs::recorder::armed(), "pipeline armed the recorder");
    ctx.lookup_str("slow-probe").unwrap();
    let dumps: Vec<_> = std::fs::read_dir(&flight_dir)
        .expect("flight dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("flight-"))
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one anomaly, exactly one dump");
    let dump = std::fs::read_to_string(dumps[0].path()).unwrap();
    let header = dump.lines().next().expect("dump has a header line");
    assert!(
        header.contains("\"slow_op\"") && header.contains("\"lookup\""),
        "dump header names the trigger and op: {header}"
    );
    assert!(
        dump.lines().any(|l| l.contains("\"span\"")),
        "dump snapshots the trace ring"
    );
    assert!(
        dump.lines().last().unwrap().contains("metrics_delta"),
        "dump ends with the metrics delta"
    );

    // ------------------------------------- one cluster scrape pass ----
    let scrape = cluster.scrape_all().unwrap();
    assert_eq!(scrape.instances.len(), 4);
    assert!(scrape.unreachable.is_empty());

    // ---- (1) rollup conservation, asserted from the merged output ----
    let exposition = scrape.exposition();
    assert!(exposition.contains("instance=\"cluster\""));
    assert!(exposition.contains("instance=\"shard-0\""));
    let samples = expo::parse(&exposition).expect("merged exposition parses");
    let requests: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "rndi_net_requests_total")
        .collect();
    let rollups: Vec<_> = requests
        .iter()
        .filter(|s| s.label("instance") == Some("cluster"))
        .collect();
    assert!(!rollups.is_empty(), "rollup series present");
    for rollup in &rollups {
        let sum: f64 = requests
            .iter()
            .filter(|s| {
                s.label("instance").is_some_and(|i| i.starts_with("shard-"))
                    && s.label("op") == rollup.label("op")
                    && s.label("outcome") == rollup.label("outcome")
            })
            .map(|s| s.value)
            .sum();
        assert_eq!(
            rollup.value,
            sum,
            "cluster rollup for op={:?} outcome={:?} equals the per-instance sum",
            rollup.label("op"),
            rollup.label("outcome")
        );
    }
    // And the cluster really served the load: ≥ 129 lookups (3×32 fast
    // rounds + the slow probe) crossed the wire in total.
    let lookups: f64 = rollups
        .iter()
        .filter(|s| s.label("op") == Some("lookup") && s.label("outcome") == Some("ok"))
        .map(|s| s.value)
        .sum();
    assert!(lookups >= 97.0, "rollup counted the lookup load: {lookups}");

    // ---- (2) a cross-node trace assembled by id, router → server ----
    let assembled = scrape
        .traces
        .iter()
        .find(|t| {
            let layers = t.layers();
            layers.contains(&"router") && layers.contains(&"server")
        })
        .expect("some trace spans the router and a shard's server leg");
    assert!(
        scrape.trace(assembled.trace_id).is_some(),
        "assembled traces are addressable by id"
    );
    assert!(
        assembled
            .spans
            .iter()
            .all(|s| s.trace_id == assembled.trace_id),
        "assembly never mixes trace ids"
    );
    let router_depth = assembled
        .spans
        .iter()
        .find(|s| s.layer == "router")
        .map(|s| s.depth)
        .unwrap();
    let server_depth = assembled
        .spans
        .iter()
        .find(|s| s.layer == "server")
        .map(|s| s.depth)
        .unwrap();
    assert!(
        server_depth > router_depth,
        "the shard's server span nests below the router span"
    );

    // Derived signals come from the same merged view.
    assert!(
        scrape
            .signals
            .per_op
            .iter()
            .any(|o| o.op == "lookup" && o.count >= 97 && o.p50_ns > 0.0 && o.p99_ns >= o.p50_ns),
        "per-op latency quantiles derived from the rollup: {:?}",
        scrape.signals.per_op
    );
    assert!(scrape.signals.imbalance_pct >= 100.0);
    assert!(scrape.signals.headroom > 0.0 && scrape.signals.headroom <= 1.0);
    for inst in &scrape.instances {
        assert_eq!(inst.health.requests_err, 0, "{}", inst.id);
        assert!(inst.health.uptime_ms < 600_000);
    }

    cluster.shutdown();
    rndi::obs::recorder::disarm();
    let _ = std::fs::remove_dir_all(&flight_dir);
}
