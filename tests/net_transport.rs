//! Network transport acceptance: the same naming semantics over loopback
//! TCP as in-process, with one linked trace spanning both sides of the
//! wire, and client-pipeline retry recovering from a crashed-and-restarted
//! server.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use rndi::core::context::{Context, ContextExt, DirContext};
use rndi::core::env::{keys, Environment};
use rndi::core::error::NamingError;
use rndi::core::filter::Filter;
use rndi::core::name::CompositeName;
use rndi::core::prelude::*;
use rndi::core::spi::ProviderBackend;
use rndi::net::{NetClient, NetServer, ServerConfig};
use rndi::providers::common::{MsClock, RlusClock};
use rndi::providers::HdnsProviderContext;
use rndi::serve;

fn hdns_realm(name: &str) -> rndi::hdns::HdnsRealm {
    rndi::hdns::HdnsRealm::new(name, 2, rndi::groupcast::StackConfig::default(), None, 7)
}

fn client_env() -> Environment {
    Environment::new()
        .with(keys::RETRY_MAX_ATTEMPTS, "5")
        .with(keys::RETRY_BACKOFF_MS, "50")
}

#[test]
fn hdns_bind_lookup_search_over_loopback() {
    let server = serve::serve_hdns(hdns_realm("net-e2e"), 0, "net-e2e", &Environment::new())
        .expect("server starts");
    let remote = NetClient::connect(server.local_addr().to_string(), &client_env()).unwrap();

    // Bind (with attributes), lookup, list, and search — all through the
    // client pipeline, over the wire, into the HDNS replica.
    remote.bind_str("plain", "v1").unwrap();
    remote
        .bind_with_attrs(
            &"printer".into(),
            BoundValue::str("laser-3"),
            Attributes::new().with("building", "C").with("dpi", "1200"),
        )
        .unwrap();

    assert_eq!(remote.lookup_str("plain").unwrap().as_str(), Some("v1"));
    assert_eq!(
        remote.lookup_str("printer").unwrap().as_str(),
        Some("laser-3")
    );

    let names: Vec<String> = remote
        .list(&CompositeName::empty())
        .unwrap()
        .into_iter()
        .map(|p| p.name)
        .collect();
    assert_eq!(names, vec!["plain", "printer"]);

    let hits = remote
        .search(
            &CompositeName::empty(),
            &Filter::parse("(building=C)").unwrap(),
            &SearchControls::default(),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].name, "printer");
    assert_eq!(hits[0].attrs.get("dpi").unwrap().first_str(), Some("1200"));

    // Errors cross the wire typed, not as opaque transport failures.
    assert!(matches!(
        remote.lookup_str("missing"),
        Err(NamingError::NameNotFound { .. })
    ));
    assert!(matches!(
        remote.bind_str("plain", "dup"),
        Err(NamingError::AlreadyBound { .. })
    ));

    server.shutdown();
}

#[test]
fn one_linked_trace_spans_client_and_server() {
    let server = serve::serve_hdns(hdns_realm("net-trace"), 0, "net-trace", &Environment::new())
        .expect("server starts");
    let remote = NetClient::connect(server.local_addr().to_string(), &client_env()).unwrap();

    remote.bind_str("traced-net", "x").unwrap();
    assert_eq!(remote.lookup_str("traced-net").unwrap().as_str(), Some("x"));

    // Anchor on the net client's span for the lookup, then walk its trace:
    // client root (pipeline layer) -> ... -> net "client" span -> "server"
    // span on the far side -> the server-side backend pipeline beneath it.
    let ring = rndi::obs::trace::ring();
    let client_span = ring
        .snapshot()
        .into_iter()
        .rev()
        .find(|s| s.layer == "client" && s.provider.starts_with("net-client:") && s.op == "lookup")
        .expect("net client span recorded");
    let trace = ring.trace(client_span.trace_id);

    let roots: Vec<_> = trace.iter().filter(|s| s.parent_span == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span in the trace");
    assert_eq!(
        roots[0].layer, "pipeline",
        "the client-side pipeline owns the root span"
    );

    let server_span = trace
        .iter()
        .find(|s| s.layer == "server")
        .expect("server span joined the client's trace across the wire");
    assert_eq!(
        server_span.parent_span, client_span.span_id,
        "server span is a direct child of the net client span"
    );
    assert!(server_span.provider.starts_with("net:hdns:net-trace"));

    assert!(
        trace
            .iter()
            .any(|s| s.parent_span == server_span.span_id && s.layer == "pipeline"),
        "server-side backend pipeline nests under the server span"
    );

    server.shutdown();
}

#[test]
fn retry_recovers_from_server_crash_and_restart() {
    let realm = hdns_realm("net-crash");
    let backend: Arc<dyn ProviderBackend> =
        HdnsProviderContext::with_env(realm, 0, "net-crash", &Environment::new());
    let server = serve::serve_backend(backend.clone(), &Environment::new()).unwrap();
    let addr = server.local_addr();

    let remote = NetClient::connect(addr.to_string(), &client_env()).unwrap();
    remote.bind_str("survivor", "v").unwrap();
    assert_eq!(remote.lookup_str("survivor").unwrap().as_str(), Some("v"));

    // Crash the server mid-flight (sockets torn down, pooled client
    // connections now dead), then restart it on the same address after a
    // delay that forces the client through at least one failed attempt.
    server.abort();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        // The freed port can linger; keep trying until the bind lands.
        for _ in 0..100 {
            let config = ServerConfig {
                listen: addr.to_string(),
                max_conns: 16,
                deadline_ms: 5_000,
                shards: 1,
                ..ServerConfig::default()
            };
            match NetServer::with_config(backend.clone(), config) {
                Ok(server) => return server,
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        panic!("could not rebind {addr}");
    });

    // The pooled connection is stale and the first redial(s) hit a dead
    // port; the pipeline's retry layer turns that into a recovery once the
    // restarted server is up.
    let v = remote.lookup_str("survivor").expect("retry recovered");
    assert_eq!(v.as_str(), Some("v"));

    restarter.join().unwrap().shutdown();
}

#[test]
fn ldap_and_jini_served_over_loopback() {
    // LDAP behind the net server.
    struct ZeroClock;
    impl MsClock for ZeroClock {
        fn now_ms(&self) -> u64 {
            0
        }
    }
    let directory = rndi::ldap::DirectoryServer::new(rndi::ldap::ServerConfig {
        read_throttle_per_sec: None,
        ..Default::default()
    });
    directory
        .connect_anonymous()
        .add(
            rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("o=netdept").unwrap())
                .with("objectClass", "organization")
                .with("o", "netdept"),
        )
        .unwrap();
    let ldap_server = serve::serve_ldap(
        directory.connect_anonymous(),
        rndi::ldap::Dn::parse("o=netdept").unwrap(),
        Arc::new(ZeroClock),
        "net-dir",
        &Environment::new(),
    )
    .unwrap();
    let ldap_remote =
        NetClient::connect(ldap_server.local_addr().to_string(), &client_env()).unwrap();
    ldap_remote
        .bind_with_attrs(
            &"scanner".into(),
            BoundValue::str("flatbed"),
            Attributes::new().with("room", "217"),
        )
        .unwrap();
    assert_eq!(
        ldap_remote.lookup_str("scanner").unwrap().as_str(),
        Some("flatbed")
    );
    let hits = ldap_remote
        .search(
            &CompositeName::empty(),
            &Filter::parse("(room=217)").unwrap(),
            &SearchControls::default(),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    ldap_server.shutdown();

    // The rlus registrar (Jini analog) behind the net server.
    let rlus_clock = rndi::rlus::ManualClock::new();
    let registrar = rndi::rlus::Registrar::new(rlus_clock.clone(), u64::MAX / 4, 23);
    let jini_server = serve::serve_jini(
        registrar,
        Arc::new(RlusClock(rlus_clock as Arc<dyn rndi::rlus::Clock>)),
        "net-lus",
        &Environment::new(),
    )
    .unwrap();
    let jini_remote =
        NetClient::connect(jini_server.local_addr().to_string(), &client_env()).unwrap();
    jini_remote.bind_str("worker", "stub-7").unwrap();
    assert_eq!(
        jini_remote.lookup_str("worker").unwrap().as_str(),
        Some("stub-7")
    );
    jini_server.shutdown();
}

#[test]
fn local_only_ops_and_deadlines_fail_cleanly() {
    let server = serve::serve_hdns(hdns_realm("net-edge"), 0, "net-edge", &Environment::new())
        .expect("server starts");
    let remote = NetClient::connect(server.local_addr().to_string(), &client_env()).unwrap();

    // Live listener registration cannot cross the wire: rejected before a
    // byte is sent, not smuggled as a serialization failure.
    let listener = rndi::core::event::CollectingListener::new();
    assert!(matches!(
        remote.add_listener(&CompositeName::empty(), listener),
        Err(NamingError::NotSupported { .. })
    ));

    // A dead endpoint surfaces as a transient error (retry fuel), not a
    // panic or a hang: bind a port, drop the listener, dial it.
    let dead = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = dead.local_addr().unwrap();
    drop(dead);
    let env = Environment::new()
        .with(keys::RETRY_MAX_ATTEMPTS, "1")
        .with(keys::NET_DEADLINE_MS, "300");
    let unreachable = NetClient::connect(dead_addr.to_string(), &env).unwrap();
    let err = unreachable.lookup_str("x").unwrap_err();
    assert!(
        matches!(
            err,
            NamingError::ServiceFailure { .. } | NamingError::Timeout { .. }
        ),
        "dead endpoint maps to a transient error, got {err:?}"
    );

    server.shutdown();
}
