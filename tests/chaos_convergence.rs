//! Chaos testing: randomized fault schedules against an HDNS realm.
//!
//! Interleaves writes (from random replicas) with crashes, restarts,
//! partitions and heals; at the end, heals everything, restarts every
//! replica, and asserts all replicas hold byte-identical stores — the
//! paper's §4 resilience claims under adversarial schedules rather than
//! the hand-picked scenarios of the unit tests.

use proptest::prelude::*;

use rndi::groupcast::StackConfig;
use rndi::hdns::{HdnsEntry, HdnsRealm};

const REPLICAS: usize = 3;

#[derive(Clone, Debug)]
enum ChaosEvent {
    /// Bind/rebind `key` via replica `node` (ignored if that node is down).
    Write {
        node: u8,
        key: u8,
        val: u8,
    },
    Unbind {
        node: u8,
        key: u8,
    },
    Crash {
        node: u8,
    },
    Restart {
        node: u8,
    },
    /// Isolate one replica from the other two.
    Isolate {
        node: u8,
    },
    Heal,
}

fn event_strategy() -> impl Strategy<Value = ChaosEvent> {
    prop_oneof![
        5 => (0u8..REPLICAS as u8, 0u8..6, any::<u8>())
            .prop_map(|(node, key, val)| ChaosEvent::Write { node, key, val }),
        2 => (0u8..REPLICAS as u8, 0u8..6)
            .prop_map(|(node, key)| ChaosEvent::Unbind { node, key }),
        1 => (0u8..REPLICAS as u8).prop_map(|node| ChaosEvent::Crash { node }),
        1 => (0u8..REPLICAS as u8).prop_map(|node| ChaosEvent::Restart { node }),
        1 => (0u8..REPLICAS as u8).prop_map(|node| ChaosEvent::Isolate { node }),
        1 => Just(ChaosEvent::Heal),
    ]
}

fn alive_count(realm: &HdnsRealm) -> usize {
    (0..REPLICAS).filter(|i| realm.is_alive(*i)).count()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a full replicated deployment
        ..ProptestConfig::default()
    })]

    #[test]
    fn replicas_converge_after_arbitrary_fault_schedules(
        seed in 0u64..1_000_000,
        events in proptest::collection::vec(event_strategy(), 1..30)
    ) {
        let realm = HdnsRealm::new("chaos", REPLICAS, StackConfig::default(), None, seed);
        let mut down = [false; REPLICAS];
        let mut isolated: Option<usize> = None;

        for ev in &events {
            match ev {
                ChaosEvent::Write { node, key, val } => {
                    let node = *node as usize;
                    if !down[node] {
                        // May legitimately fail (e.g. conflicting bind);
                        // only the final convergence matters.
                        let _ = realm.rebind(
                            node,
                            &format!("k{key}"),
                            HdnsEntry::leaf(vec![*val]),
                        );
                    }
                }
                ChaosEvent::Unbind { node, key } => {
                    let node = *node as usize;
                    if !down[node] {
                        let _ = realm.unbind(node, &format!("k{key}"));
                    }
                }
                ChaosEvent::Crash { node } => {
                    let node = *node as usize;
                    // Keep at least one replica alive so the group survives.
                    if !down[node] && alive_count(&realm) > 1 {
                        realm.crash(node);
                        down[node] = true;
                        if isolated == Some(node) {
                            isolated = None;
                        }
                    }
                }
                ChaosEvent::Restart { node } => {
                    let node = *node as usize;
                    if down[node] {
                        realm.restart(node);
                        down[node] = false;
                    }
                }
                ChaosEvent::Isolate { node } => {
                    let node = *node as usize;
                    if !down[node] && isolated.is_none() {
                        let others: Vec<usize> =
                            (0..REPLICAS).filter(|i| *i != node).collect();
                        realm.partition(&[&others, &[node]]);
                        isolated = Some(node);
                    }
                }
                ChaosEvent::Heal => {
                    realm.heal();
                    isolated = None;
                }
            }
        }

        // Recovery phase: heal everything and bring every replica back.
        realm.heal();
        for (node, is_down) in down.iter().enumerate() {
            if *is_down {
                realm.restart(node);
            }
        }
        realm.drive();

        // Convergence: every replica's store is byte-identical.
        let reference = realm.store_snapshot(0);
        for node in 1..REPLICAS {
            let snap = realm.store_snapshot(node);
            prop_assert_eq!(
                &snap,
                &reference,
                "replica {} diverged after {:?}",
                node,
                events
            );
        }

        // And the realm still works: a fresh write lands everywhere.
        realm
            .rebind(0, "final", HdnsEntry::leaf(vec![99]))
            .expect("post-chaos write succeeds");
        for node in 0..REPLICAS {
            prop_assert_eq!(
                realm.lookup(node, "final").map(|e| e.value),
                Some(vec![99]),
                "replica {} serves the post-chaos write",
                node
            );
        }
    }
}
