//! End-to-end observability acceptance: a federated subtree search through
//! two real-provider mounts produces ONE linked trace — federation root,
//! one child span per mount, pipeline spans below those, and server-side
//! spans at the leaves — all retrievable from the trace sink, and the
//! exposition reports counters/histograms for every provider exercised.

use std::sync::Arc;

use rndi::core::prelude::*;
use rndi::providers::common::MsClock;
use rndi::providers::{HdnsFactory, JiniFactory, LdapFactory};

struct ZeroClock;
impl MsClock for ZeroClock {
    fn now_ms(&self) -> u64 {
        0
    }
}

/// HDNS base with two federation links: one to an LDAP directory, one to a
/// Jini lookup service. Mount names are unique to this test so trace-ring
/// lookups are immune to spans from concurrently running tests.
fn world() -> (InitialContext, Arc<ProviderRegistry>) {
    let clock: Arc<dyn MsClock> = Arc::new(ZeroClock);
    let registry = Arc::new(ProviderRegistry::new());

    let hdns_realm = rndi::hdns::HdnsRealm::new(
        "obs-acc",
        2,
        rndi::groupcast::StackConfig::default(),
        None,
        31,
    );
    let hdns_factory = HdnsFactory::new();
    hdns_factory.register_host("obs-h0", hdns_realm.clone(), 0);
    hdns_factory.register_host("obs-h1", hdns_realm, 1);
    registry.register(hdns_factory);

    let rlus_clock = rndi::rlus::ManualClock::new();
    let registrar = rndi::rlus::Registrar::new(rlus_clock.clone(), u64::MAX / 4, 17);
    let jini_realm = rndi::rlus::DiscoveryRealm::new();
    jini_realm.announce(
        rndi::rlus::discovery::LookupLocator::new("obs-lus", 4160),
        &["dept"],
        registrar,
    );
    registry.register(JiniFactory::new(
        jini_realm,
        rlus_clock as Arc<dyn rndi::rlus::Clock>,
    ));

    let ldap = rndi::ldap::DirectoryServer::new(rndi::ldap::ServerConfig {
        read_throttle_per_sec: None,
        ..Default::default()
    });
    ldap.connect_anonymous()
        .add(
            rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("o=obsdept").unwrap())
                .with("objectClass", "organization")
                .with("o", "obsdept"),
        )
        .unwrap();
    let ldap_factory = LdapFactory::new(clock);
    ldap_factory.register_host("obs-dir", ldap, rndi::ldap::Dn::parse("o=obsdept").unwrap());
    registry.register(ldap_factory);

    let ctx = InitialContext::new(registry.clone(), Environment::new()).unwrap();
    (ctx, registry)
}

#[test]
fn federated_search_produces_one_linked_trace_with_server_spans() {
    let (ctx, registry) = world();

    // Two mounts under the HDNS base, plus matching entries in each leaf.
    ctx.bind(
        "hdns://obs-h0/obs-acc-jini",
        BoundValue::Reference(Reference::url("jini://obs-lus")),
    )
    .unwrap();
    ctx.bind(
        "hdns://obs-h0/obs-acc-ldap",
        BoundValue::Reference(Reference::url("ldap://obs-dir")),
    )
    .unwrap();
    ctx.bind_with_attrs(
        "jini://obs-lus/obs-node",
        BoundValue::str("stub"),
        Attributes::new().with("svc", "obs-acc"),
    )
    .unwrap();
    ctx.bind_with_attrs(
        "ldap://obs-dir/obs-printer",
        BoundValue::str("stub"),
        Attributes::new().with("svc", "obs-acc"),
    )
    .unwrap();

    // Subtree search across the federation: base first, then both mounts.
    let base = ctx.lookup_context("hdns://obs-h0").unwrap();
    let fed = FederatedContext::new(base, registry, Environment::new());
    let controls = SearchControls {
        scope: SearchScope::Subtree,
        ..Default::default()
    };
    let hits = DirContext::search(
        fed.as_ref(),
        &CompositeName::empty(),
        &Filter::parse("(svc=obs-acc)").unwrap(),
        &controls,
    )
    .unwrap();
    let names: Vec<&str> = hits.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["obs-acc-jini/obs-node", "obs-acc-ldap/cn=obs-printer"],
        "one hit through each mount, in mount-name order"
    );

    // One linked trace: root + per-mount children + leaf-layer spans.
    let ring = rndi::obs::trace::ring();
    let anchor = ring
        .snapshot()
        .into_iter()
        .rev()
        .find(|s| s.provider.as_ref() == "obs-acc-ldap")
        .expect("per-mount child span recorded");
    let trace = ring.trace(anchor.trace_id);

    let roots: Vec<_> = trace.iter().filter(|s| s.parent_span == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span in the trace");
    let root = roots[0];
    assert_eq!(
        (root.layer.as_ref(), root.op.as_ref()),
        ("federation", "search")
    );
    assert_eq!(root.depth, 0);

    for mount in ["obs-acc-jini", "obs-acc-ldap"] {
        let m = trace
            .iter()
            .find(|s| s.provider.as_ref() == mount)
            .unwrap_or_else(|| panic!("child span for mount {mount}"));
        assert_eq!(m.parent_span, root.span_id, "mount span links to the root");
        assert_eq!(m.depth, 1);
    }
    assert!(
        trace.iter().any(|s| s.layer == "pipeline"),
        "provider pipeline spans joined the trace"
    );
    let server = trace
        .iter()
        .find(|s| s.layer == "server")
        .expect("server-side span joined the trace");
    assert_ne!(
        server.parent_span, 0,
        "server span links under a client span"
    );

    // The exposition covers every provider exercised by the search.
    let text = rndi::core::spi::telemetry::render();
    let samples = rndi::obs::expo::parse(&text).expect("exposition parses");
    let provider_of = |s: &rndi::obs::expo::Sample| {
        s.labels
            .iter()
            .find(|(k, _)| k == "provider")
            .map(|(_, v)| v.clone())
    };
    // Pipeline labels are provider ids ("hdns:obs-h0#0", "jini:obs-lus",
    // "ldap:obs-dir/o=obsdept"); match by scheme prefix.
    for scheme in ["hdns:", "jini:", "ldap:"] {
        assert!(
            samples.iter().any(|s| {
                s.name == "rndi_ops_total" && provider_of(s).is_some_and(|p| p.starts_with(scheme))
            }),
            "op counter exposed for {scheme} providers"
        );
        assert!(
            samples.iter().any(|s| {
                s.name.starts_with("rndi_op_duration_ns")
                    && provider_of(s).is_some_and(|p| p.starts_with(scheme))
            }),
            "latency histogram exposed for {scheme} providers"
        );
    }
}
