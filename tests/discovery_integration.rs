//! Jini discovery + factory integration: locating registrars through the
//! discovery realm, per-URL provider caching, and strict/relaxed context
//! separation.

use std::sync::Arc;

use rndi::core::prelude::*;
use rndi::providers::JiniFactory;
use rndi::rlus::discovery::LookupLocator;
use rndi::rlus::{DiscoveryRealm, ManualClock, Registrar};

fn deployment() -> (DiscoveryRealm, Registrar, Registrar, Arc<ManualClock>) {
    let clock = ManualClock::new();
    let realm = DiscoveryRealm::new();
    let mathcs = Registrar::new(clock.clone(), 600_000, 1);
    let physics = Registrar::new(clock.clone(), 600_000, 2);
    realm.announce(
        LookupLocator::new("mathcs-lus", 4160),
        &["public", "mathcs"],
        mathcs.clone(),
    );
    realm.announce(
        LookupLocator::new("physics-lus", 4160),
        &["public"],
        physics.clone(),
    );
    (realm, mathcs, physics, clock)
}

#[test]
fn urls_route_to_the_announced_registrars() {
    let (realm, mathcs, physics, clock) = deployment();
    let registry = Arc::new(ProviderRegistry::new());
    registry.register(JiniFactory::new(realm, clock));
    // Relaxed mode so the backends hold exactly the bindings (strict mode
    // would add lock-register entries to the item counts).
    let env = Environment::new().with(env_keys::JINI_STRICT_BIND, "false");
    let ic = InitialContext::new(registry, env).unwrap();

    ic.bind("jini://mathcs-lus/svc", "m").unwrap();
    ic.bind("jini://physics-lus/svc", "p").unwrap();

    // Each write landed on its own backend.
    assert_eq!(mathcs.item_count(), 1);
    assert_eq!(physics.item_count(), 1);
    assert_eq!(
        ic.lookup("jini://mathcs-lus/svc").unwrap().as_str(),
        Some("m")
    );
    assert_eq!(
        ic.lookup("jini://physics-lus/svc").unwrap().as_str(),
        Some("p")
    );
}

#[test]
fn unknown_locator_is_a_service_failure() {
    let (realm, _, _, clock) = deployment();
    let registry = Arc::new(ProviderRegistry::new());
    registry.register(JiniFactory::new(realm, clock));
    let ic = InitialContext::new(registry, Environment::new()).unwrap();
    assert!(matches!(
        ic.lookup("jini://nowhere-lus/x"),
        Err(NamingError::ServiceFailure { .. })
    ));
}

#[test]
fn group_discovery_finds_the_right_subset() {
    let (realm, _, _, _) = deployment();
    assert_eq!(realm.discover("public").len(), 2);
    assert_eq!(realm.discover("mathcs").len(), 1);
    assert_eq!(realm.discover("chemistry").len(), 0);
    assert!(realm
        .locate(&LookupLocator::new("mathcs-lus", 4160))
        .is_some());
    assert!(realm
        .locate(&LookupLocator::new("mathcs-lus", 9999))
        .is_none());
}

#[test]
fn provider_contexts_are_cached_per_url_and_mode() {
    // The factory shares one provider context per (authority, bind-mode):
    // lease renewal state survives across independent InitialContext
    // operations (otherwise every lookup would spawn a fresh renewal
    // manager and leases would lapse).
    let (realm, mathcs, _, clock) = deployment();
    let registry = Arc::new(ProviderRegistry::new());
    registry.register(JiniFactory::new(realm, clock.clone()));
    let env = Environment::new().with(env_keys::JINI_STRICT_BIND, "false");
    let ic = InitialContext::new(registry, env).unwrap();

    ic.bind("jini://mathcs-lus/leased", "v").unwrap();
    // A *different* operation later still renews through the same cached
    // provider context.
    let ctx = ic.lookup_context("jini://mathcs-lus").unwrap();
    assert_eq!(ctx.provider_id(), "jini:mathcs-lus:4160");

    clock.set(500_000);
    // Without renewal the 60s default lease is long gone; sweep + verify
    // the entry expired — proving renewal state is real, not a no-op.
    mathcs.sweep();
    assert!(ic.lookup("jini://mathcs-lus/leased").is_err());
}

#[test]
fn strict_and_relaxed_modes_get_distinct_contexts() {
    let (realm, _, _, clock) = deployment();
    let registry = Arc::new(ProviderRegistry::new());
    registry.register(JiniFactory::new(realm, clock));

    let strict_ic = InitialContext::new(
        registry.clone(),
        Environment::new().with(env_keys::JINI_STRICT_BIND, "true"),
    )
    .unwrap();
    let relaxed_ic = InitialContext::new(
        registry,
        Environment::new().with(env_keys::JINI_STRICT_BIND, "false"),
    )
    .unwrap();

    // Both modes interoperate on the same backend data.
    strict_ic.bind("jini://mathcs-lus/shared", "s").unwrap();
    assert_eq!(
        relaxed_ic
            .lookup("jini://mathcs-lus/shared")
            .unwrap()
            .as_str(),
        Some("s")
    );
    // And relaxed clients still see atomic-bind conflicts.
    assert!(matches!(
        relaxed_ic.bind("jini://mathcs-lus/shared", "x"),
        Err(NamingError::AlreadyBound { .. })
    ));
}
