//! Cross-crate federation integration tests: composite names resolved
//! across three heterogeneous naming systems, writes through federated
//! paths, searches through mounts, and the resolution safety rails.

use std::sync::Arc;

use rndi::core::prelude::*;
use rndi::core::value::StoredValue;
use rndi::providers::common::MsClock;
use rndi::providers::{DnsFactory, FsFactory, HdnsFactory, JiniFactory, LdapFactory};

struct ZeroClock;
impl MsClock for ZeroClock {
    fn now_ms(&self) -> u64 {
        0
    }
}

/// A full deployment: DNS root, HDNS intermediate, Jini + LDAP + FS
/// leaves, all reachable through one `InitialContext`.
struct World {
    ctx: InitialContext,
    hdns_realm: rndi::hdns::HdnsRealm,
    _fs_root: std::path::PathBuf,
}

fn world(tag: &str) -> World {
    let clock: Arc<dyn MsClock> = Arc::new(ZeroClock);
    let registry = Arc::new(ProviderRegistry::new());

    // DNS root: anchor for federation "global".
    let dns_server = rndi::dns::AuthServer::new();
    let mut zone = rndi::dns::Zone::new(rndi::dns::DnsName::parse("global.test").unwrap());
    zone.insert(rndi::dns::ResourceRecord::txt(
        "global.test",
        60,
        "hdns://h0",
    ));
    dns_server.add_zone(zone);
    let dns_factory = DnsFactory::new(clock.clone());
    dns_factory.register_anchor(
        "global",
        Arc::new(rndi::dns::Resolver::new(vec![dns_server])),
        rndi::dns::DnsName::parse("global.test").unwrap(),
    );
    registry.register(dns_factory);

    // HDNS intermediate (2 replicas).
    let hdns_realm = rndi::hdns::HdnsRealm::new(
        "fed-int",
        2,
        rndi::groupcast::StackConfig::default(),
        None,
        31,
    );
    let hdns_factory = HdnsFactory::new();
    hdns_factory.register_host("h0", hdns_realm.clone(), 0);
    hdns_factory.register_host("h1", hdns_realm.clone(), 1);
    registry.register(hdns_factory);

    // Jini leaf.
    let rlus_clock = rndi::rlus::ManualClock::new();
    let registrar = rndi::rlus::Registrar::new(rlus_clock.clone(), u64::MAX / 4, 17);
    let jini_realm = rndi::rlus::DiscoveryRealm::new();
    jini_realm.announce(
        rndi::rlus::discovery::LookupLocator::new("lus", 4160),
        &["dept"],
        registrar,
    );
    registry.register(JiniFactory::new(
        jini_realm,
        rlus_clock as Arc<dyn rndi::rlus::Clock>,
    ));

    // LDAP leaf.
    let ldap = rndi::ldap::DirectoryServer::new(rndi::ldap::ServerConfig {
        read_throttle_per_sec: None,
        ..Default::default()
    });
    ldap.connect_anonymous()
        .add(
            rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("o=dept").unwrap())
                .with("objectClass", "organization")
                .with("o", "dept"),
        )
        .unwrap();
    let ldap_factory = LdapFactory::new(clock);
    ldap_factory.register_host("dir", ldap, rndi::ldap::Dn::parse("o=dept").unwrap());
    registry.register(ldap_factory);

    // Filesystem leaf.
    let fs_root = std::env::temp_dir().join(format!("rndi-fedspan-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fs_root);
    std::fs::create_dir_all(&fs_root).unwrap();
    let fs_factory = FsFactory::new();
    fs_factory.register_root("localdisk", &fs_root);
    registry.register(fs_factory);

    let ctx = InitialContext::new(registry, Environment::new()).unwrap();
    World {
        ctx,
        hdns_realm,
        _fs_root: fs_root,
    }
}

#[test]
fn four_system_chain_resolves() {
    let w = world("chain");
    // dns://global → hdns://h0 → jini://lus → ldap://dir → value
    w.ctx
        .bind(
            "hdns://h0/dept-jini",
            BoundValue::Reference(Reference::url("jini://lus")),
        )
        .unwrap();
    w.ctx
        .bind(
            "jini://lus/dir-link",
            BoundValue::Reference(Reference::url("ldap://dir")),
        )
        .unwrap();
    w.ctx.bind("ldap://dir/treasure", "gold").unwrap();

    let got = w
        .ctx
        .lookup("dns://global/dept-jini/dir-link/treasure")
        .unwrap();
    assert_eq!(got.as_str(), Some("gold"));
}

#[test]
fn writes_flow_through_federation() {
    let w = world("writes");
    w.ctx
        .bind(
            "hdns://h0/disk",
            BoundValue::Reference(Reference::url("file://localdisk")),
        )
        .unwrap();
    // Write through DNS + HDNS into the filesystem.
    w.ctx
        .bind("dns://global/disk/config", "written-through-3-systems")
        .unwrap();
    // Direct read at the leaf agrees.
    assert_eq!(
        w.ctx.lookup("file://localdisk/config").unwrap().as_str(),
        Some("written-through-3-systems")
    );
    // Rebind and unbind also traverse.
    w.ctx.rebind("dns://global/disk/config", "v2").unwrap();
    assert_eq!(
        w.ctx.lookup("dns://global/disk/config").unwrap().as_str(),
        Some("v2")
    );
    w.ctx.unbind("dns://global/disk/config").unwrap();
    assert!(w.ctx.lookup("file://localdisk/config").is_err());
}

#[test]
fn search_through_a_mount() {
    let w = world("search");
    w.ctx
        .bind(
            "hdns://h0/registry",
            BoundValue::Reference(Reference::url("jini://lus")),
        )
        .unwrap();
    w.ctx
        .bind_with_attrs(
            "jini://lus/gpu-node",
            BoundValue::str("stub"),
            Attributes::new().with("accelerator", "gpu"),
        )
        .unwrap();
    let hits = w
        .ctx
        .search(
            "hdns://h0/registry",
            "(accelerator=gpu)",
            &SearchControls::default(),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].name, "gpu-node");
}

#[test]
fn replica_choice_is_transparent() {
    let w = world("replicas");
    w.ctx.bind("hdns://h0/entry", "via-replica-0").unwrap();
    assert_eq!(
        w.ctx.lookup("hdns://h1/entry").unwrap().as_str(),
        Some("via-replica-0"),
        "read from the other replica"
    );
}

#[test]
fn federated_atomicity_spans_systems() {
    let w = world("atomic");
    w.ctx
        .bind(
            "hdns://h0/dir",
            BoundValue::Reference(Reference::url("ldap://dir")),
        )
        .unwrap();
    w.ctx.bind("dns://global/dir/slot", "first").unwrap();
    // Second atomic bind through a *different* path to the same leaf.
    let err = w.ctx.bind("ldap://dir/slot", "second").unwrap_err();
    assert!(matches!(err, NamingError::AlreadyBound { .. }));
}

#[test]
fn broken_link_reports_missing_provider() {
    let w = world("broken");
    w.ctx
        .bind(
            "hdns://h0/dangling",
            BoundValue::Reference(Reference::url("gopher://ancient")),
        )
        .unwrap();
    let err = w.ctx.lookup("hdns://h0/dangling/x").unwrap_err();
    assert!(matches!(err, NamingError::NoProvider { scheme } if scheme == "gopher"));
}

#[test]
fn depth_guard_stops_mount_cycles() {
    let w = world("cycle");
    // h0/a → h1/b → h0/a → …
    w.ctx
        .bind(
            "hdns://h0/a",
            BoundValue::Reference(Reference::url("hdns://h1/b")),
        )
        .unwrap();
    // Bind b as a link back to a. A lookup of b itself returns the
    // reference (fine); traversals *through* it loop and must be cut off.
    w.ctx
        .bind(
            "hdns://h1/b",
            BoundValue::Reference(Reference::url("hdns://h0/a")),
        )
        .unwrap();
    let err = w.ctx.lookup("hdns://h0/a/x").unwrap_err();
    assert!(
        matches!(err, NamingError::FederationDepthExceeded { .. }),
        "got {err}"
    );
}

#[test]
fn hdns_failures_do_not_break_other_systems() {
    let w = world("isolation");
    w.ctx.bind("jini://lus/survivor", "ok").unwrap();
    w.ctx.bind("hdns://h0/doomed", "x").unwrap();
    // Take down the whole HDNS realm.
    w.hdns_realm.crash(0);
    w.hdns_realm.crash(1);
    assert!(
        w.ctx.lookup("jini://lus/survivor").is_ok(),
        "Jini unaffected"
    );
    // HDNS reads still serve from the (dead-but-addressable) replica's
    // last state or fail cleanly — either way, no panic and no cross-talk.
    let _ = w.ctx.lookup("hdns://h0/doomed");
}

#[test]
fn stored_reference_encoding_is_portable() {
    // A reference bound through one provider decodes identically from the
    // raw backend bytes — the marshalling contract between providers.
    let w = world("encoding");
    w.ctx
        .bind(
            "hdns://h0/link",
            BoundValue::Reference(Reference::url("ldap://dir")),
        )
        .unwrap();
    let raw = w.hdns_realm.lookup(0, "link").unwrap();
    let decoded = StoredValue::decode(&raw.value).unwrap().into_bound();
    assert_eq!(
        decoded.as_reference().unwrap().url_addr(),
        Some("ldap://dir")
    );
}
