//! The conformance matrix: one behavioural test suite executed against
//! every writable provider, verifying that the "lowest common denominator"
//! API really does behave identically over wildly different backends —
//! the paper's central claim.

use std::sync::Arc;

use rndi::core::context::ContextExt;
use rndi::core::prelude::*;
use rndi::providers::common::{attrs, MsClock, RlusClock};
use rndi::providers::{FsContext, HdnsProviderContext, JiniProviderContext, LdapProviderContext};

struct ZeroClock;
impl MsClock for ZeroClock {
    fn now_ms(&self) -> u64 {
        0
    }
}

/// Build one instance of every writable provider, each on a fresh backend.
fn all_providers(tag: &str) -> Vec<(&'static str, Arc<dyn DirContext>)> {
    let mut out: Vec<(&'static str, Arc<dyn DirContext>)> = Vec::new();

    out.push(("mem", Arc::new(MemContext::new())));

    let clock = rndi::rlus::ManualClock::new();
    let registrar = rndi::rlus::Registrar::new(clock.clone(), u64::MAX / 4, 5);
    out.push((
        "jini",
        JiniProviderContext::new(
            registrar,
            Arc::new(RlusClock(clock as Arc<dyn rndi::rlus::Clock>)),
            Environment::new(),
            "conformance",
        ),
    ));

    let realm = rndi::hdns::HdnsRealm::new(
        "conformance",
        2,
        rndi::groupcast::StackConfig::default(),
        None,
        9,
    );
    out.push(("hdns", HdnsProviderContext::new(realm, 0, "conformance")));

    let ldap = rndi::ldap::DirectoryServer::new(rndi::ldap::ServerConfig {
        read_throttle_per_sec: None,
        ..Default::default()
    });
    ldap.connect_anonymous()
        .add(
            rndi::ldap::LdapEntry::new(rndi::ldap::Dn::parse("o=test").unwrap())
                .with("objectClass", "organization")
                .with("o", "test"),
        )
        .unwrap();
    out.push((
        "ldap",
        LdapProviderContext::new(
            ldap.connect_anonymous(),
            rndi::ldap::Dn::parse("o=test").unwrap(),
            Arc::new(ZeroClock),
            "conformance",
        ),
    ));

    let dir = std::env::temp_dir().join(format!("rndi-conformance-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    out.push(("fs", FsContext::new(dir)));

    out
}

#[test]
fn bind_lookup_rebind_unbind_uniform() {
    for (name, ctx) in all_providers("crud") {
        ctx.bind_str("key", "v1")
            .unwrap_or_else(|e| panic!("{name}: bind: {e}"));
        assert_eq!(
            ctx.lookup_str("key").unwrap().as_str(),
            Some("v1"),
            "{name}: lookup"
        );

        // Atomic bind: second bind fails, value untouched.
        let err = ctx.bind_str("key", "v2").unwrap_err();
        assert!(
            matches!(err, NamingError::AlreadyBound { .. }),
            "{name}: expected AlreadyBound, got {err}"
        );
        assert_eq!(
            ctx.lookup_str("key").unwrap().as_str(),
            Some("v1"),
            "{name}"
        );

        // Rebind replaces.
        ctx.rebind_str("key", "v2").unwrap();
        assert_eq!(
            ctx.lookup_str("key").unwrap().as_str(),
            Some("v2"),
            "{name}"
        );

        // Unbind is idempotent.
        ctx.unbind_str("key").unwrap();
        ctx.unbind_str("key").unwrap();
        assert!(
            matches!(ctx.lookup_str("key"), Err(NamingError::NameNotFound { .. })),
            "{name}: lookup after unbind"
        );
    }
}

#[test]
fn typed_values_roundtrip_everywhere() {
    for (name, ctx) in all_providers("typed") {
        let cases: Vec<(&str, BoundValue)> = vec![
            ("t-null", BoundValue::Null),
            ("t-str", BoundValue::str("text")),
            ("t-int", BoundValue::I64(-42)),
            ("t-bool", BoundValue::Bool(true)),
            (
                "t-json",
                BoundValue::Json(serde_json::json!({"a": [1, 2, 3]})),
            ),
            (
                "t-ref",
                BoundValue::Reference(Reference::url("jini://elsewhere")),
            ),
        ];
        for (key, value) in &cases {
            ctx.bind_str(key, value.clone())
                .unwrap_or_else(|e| panic!("{name}: bind {key}: {e}"));
            let got = ctx.lookup_str(key).unwrap();
            assert_eq!(&got, value, "{name}: roundtrip of {key}");
        }
    }
}

#[test]
fn attributes_and_search_uniform() {
    for (name, ctx) in all_providers("attrs") {
        ctx.bind_with_attrs(
            &"host-a".into(),
            BoundValue::str("stub-a"),
            attrs(&[("os", "linux"), ("cpu", "32")]),
        )
        .unwrap_or_else(|e| panic!("{name}: bind_with_attrs: {e}"));
        ctx.bind_with_attrs(
            &"host-b".into(),
            BoundValue::str("stub-b"),
            attrs(&[("os", "solaris"), ("cpu", "2")]),
        )
        .unwrap();

        let got = ctx.get_attributes(&"host-a".into()).unwrap();
        assert_eq!(got.get("os").unwrap().first_str(), Some("linux"), "{name}");

        let filter = Filter::parse("(&(os=linux)(cpu>=16))").unwrap();
        let hits = ctx
            .search(&CompositeName::empty(), &filter, &SearchControls::default())
            .unwrap_or_else(|e| panic!("{name}: search: {e}"));
        assert_eq!(hits.len(), 1, "{name}: one linux host");
        assert!(hits[0].name.contains("host-a"), "{name}: {}", hits[0].name);
    }
}

#[test]
fn list_reflects_bindings_uniform() {
    for (name, ctx) in all_providers("list") {
        ctx.bind_str("alpha", "1").unwrap();
        ctx.bind_str("beta", "2").unwrap();
        let names: Vec<String> = ctx
            .list_str("")
            .unwrap_or_else(|e| panic!("{name}: list: {e}"))
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert!(
            names.iter().any(|n| n.contains("alpha")) && names.iter().any(|n| n.contains("beta")),
            "{name}: listing {names:?}"
        );
    }
}

#[test]
fn federation_mounts_continue_uniform() {
    // Every provider must signal Continue when resolution crosses a bound
    // URL reference — the SPI contract federation depends on.
    for (name, ctx) in all_providers("mount") {
        ctx.bind(
            &"mnt".into(),
            BoundValue::Reference(Reference::url("hdns://far-away")),
        )
        .unwrap();
        let err = ctx.lookup(&"mnt/deeper/obj".into()).unwrap_err();
        match err {
            NamingError::Continue {
                remaining,
                resolved,
            } => {
                assert_eq!(remaining.to_string(), "deeper/obj", "{name}");
                assert!(resolved.is_federation_link(), "{name}");
            }
            other => panic!("{name}: expected Continue, got {other}"),
        }
    }
}

#[test]
fn hierarchical_providers_support_subcontexts() {
    // The flat LUS legitimately opts out (conformance levels!); the
    // hierarchical providers must agree with each other.
    for (name, ctx) in all_providers("subctx") {
        if name == "jini" {
            assert!(matches!(
                ctx.create_subcontext(&"sub".into()),
                Err(NamingError::NotSupported { .. })
            ));
            continue;
        }
        ctx.create_subcontext(&"sub".into())
            .unwrap_or_else(|e| panic!("{name}: create_subcontext: {e}"));
        ctx.bind_str("sub/item", "deep").unwrap();
        assert_eq!(
            ctx.lookup_str("sub/item").unwrap().as_str(),
            Some("deep"),
            "{name}"
        );
        assert!(
            matches!(
                ctx.destroy_subcontext(&"sub".into()),
                Err(NamingError::ContextNotEmpty { .. })
            ),
            "{name}: destroy of non-empty context must fail"
        );
        ctx.unbind_str("sub/item").unwrap();
        ctx.destroy_subcontext(&"sub".into()).unwrap();
    }
}
