//! End-to-end overload resilience: a saturating swarm against a bounded
//! v2 server keeps goodput near peak, sheds with the *retryable*
//! `Overloaded` (never `Timeout`), rate limiting rejects deterministically
//! over both protocol versions, the shard router degrades scatters to
//! flagged partials when a leg is shed, the retry layer respects its
//! deadline budget, and the cache serves recently-expired entries through
//! an overloaded backend.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rndi::core::context::ContextExt;
use rndi::core::env::{keys, Environment};
use rndi::core::error::{NamingError, Result};
use rndi::core::lease::ManualClock;
use rndi::core::mem::MemContext;
use rndi::core::name::{CompositeName, CompoundSyntax};
use rndi::core::op::{NamingOp, OpKind, OpOutcome};
use rndi::core::spi::{
    is_transient, CacheInterceptor, ContextBackend, ProviderBackend, ProviderPipeline,
    RetryInterceptor,
};
use rndi::core::value::BoundValue;
use rndi::net::{NetClient, NetServer, ServerConfig};
use rndi::shard::{ShardInfo, ShardMap, ShardRouter};

/// A lookup backend with a fixed ≈2 ms service time — slow enough that a
/// couple dozen closed-loop clients swamp one event-loop shard.
struct SlowBackend;

impl ProviderBackend for SlowBackend {
    fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
        match op.kind {
            OpKind::Lookup => {
                std::thread::sleep(Duration::from_millis(2));
                Ok(OpOutcome::Value(BoundValue::str("payload")))
            }
            other => Err(NamingError::unsupported(format!("slow backend {other:?}"))),
        }
    }

    fn provider_id(&self) -> String {
        "slow".to_string()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }
}

/// A backend that always sheds with a fixed retry-after hint.
struct SheddingBackend {
    retry_after_ms: u64,
}

impl ProviderBackend for SheddingBackend {
    fn execute(&self, _op: &NamingOp) -> Result<OpOutcome> {
        Err(NamingError::overloaded(self.retry_after_ms))
    }

    fn provider_id(&self) -> String {
        "shedding".to_string()
    }

    fn compound_syntax(&self) -> CompoundSyntax {
        CompoundSyntax::path()
    }
}

#[derive(Default)]
struct SwarmTally {
    in_budget: u64,
    late: u64,
    shed: u64,
    timeout: u64,
}

/// Drive `clients` closed-loop threads for `window` after `warmup`;
/// every op is classified client-side against a 250 ms budget.
fn swarm(addr: &str, clients: usize, warmup: Duration, window: Duration) -> SwarmTally {
    let env = Environment::new().with(keys::NET_PROTO_VERSION, "2");
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let client = NetClient::new(addr.to_string(), &env).expect("client dials");
            let measuring = measuring.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let op = NamingOp::lookup("svc".into());
                let mut tally = SwarmTally::default();
                while !stop.load(Ordering::Relaxed) {
                    let started = Instant::now();
                    let result = client.execute(&op);
                    if !measuring.load(Ordering::Relaxed) {
                        continue;
                    }
                    match result {
                        Ok(_) if started.elapsed() <= Duration::from_millis(250) => {
                            tally.in_budget += 1
                        }
                        Ok(_) => tally.late += 1,
                        Err(e) if e.is_overloaded() => {
                            assert!(is_transient(&e), "shed ops must be retryable");
                            tally.shed += 1;
                        }
                        Err(NamingError::Timeout { .. }) => tally.timeout += 1,
                        Err(e) => panic!("unexpected swarm error: {e:?}"),
                    }
                }
                tally
            })
        })
        .collect();
    std::thread::sleep(warmup);
    measuring.store(true, Ordering::Relaxed);
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut total = SwarmTally::default();
    for w in workers {
        let t = w.join().expect("swarm worker");
        total.in_budget += t.in_budget;
        total.late += t.late;
        total.shed += t.shed;
        total.timeout += t.timeout;
    }
    total
}

#[test]
fn saturating_swarm_holds_goodput_and_sheds_overloaded_not_timeout() {
    let server = NetServer::with_config(
        Arc::new(SlowBackend),
        ServerConfig {
            max_conns: 128,
            shards: 1,
            queue_depth: 4,
            adaptive: true,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr().to_string();

    let window = Duration::from_millis(900);
    let light = swarm(&addr, 2, Duration::from_millis(200), window);
    let heavy = swarm(&addr, 24, Duration::from_millis(300), window);

    // The overload plane is observable over the admin vocabulary: shed
    // totals and the admission gauges cross the wire in both the health
    // summary and the metrics snapshot.
    let admin = NetClient::new(
        addr.clone(),
        &Environment::new().with(keys::NET_PROTO_VERSION, "2"),
    )
    .expect("admin client dials");
    let health = admin.scrape_health().expect("health scrape");
    assert!(health.shed_total > 0, "health reports sheds");
    assert!(health.concurrency_limit > 0, "admission limit exported");
    assert!((0.0..=1.0).contains(&health.admission_headroom()));
    let snap = admin.scrape_metrics().expect("metrics scrape");
    assert!(snap.counter_total(rndi::obs::metrics::names::NET_SHED) > 0);
    let exposition = snap.render();
    assert!(exposition.contains(rndi::obs::metrics::names::NET_QUEUE_DEPTH));
    assert!(exposition.contains(rndi::obs::metrics::names::NET_CONCURRENCY_LIMIT));
    server.shutdown();

    let light_goodput = light.in_budget as f64 / window.as_secs_f64();
    let heavy_goodput = heavy.in_budget as f64 / window.as_secs_f64();
    let peak = light_goodput.max(heavy_goodput);
    assert!(
        heavy_goodput >= 0.8 * peak,
        "goodput held past saturation: {heavy_goodput:.0}/s vs peak {peak:.0}/s"
    );
    assert!(
        heavy.shed > 0,
        "a 12× overload against a bounded queue must shed"
    );
    assert_eq!(
        heavy.timeout, 0,
        "shedding arrives as Overloaded, never Timeout"
    );
    assert_eq!(light.shed, 0, "no shedding below the knee");
}

#[test]
fn rate_limit_sheds_deterministically_over_both_protocols() {
    let server = NetServer::with_config(
        Arc::new(SlowBackend),
        ServerConfig {
            rate_ops: 1,
            rate_burst: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr().to_string();

    for version in ["1", "2"] {
        // One pooled connection, so both calls share one token bucket.
        let env = Environment::new()
            .with(keys::NET_PROTO_VERSION, version)
            .with(keys::NET_CLIENT_POOL_SIZE, "1");
        let client = NetClient::new(addr.clone(), &env).expect("client dials");
        let op = NamingOp::lookup("svc".into());
        client
            .execute(&op)
            .unwrap_or_else(|e| panic!("first v{version} call spends the burst token: {e:?}"));
        let err = client
            .execute(&op)
            .expect_err("second immediate call must be rate-shed");
        match err {
            NamingError::Overloaded { retry_after_ms } => {
                assert!(
                    (1..=10_000).contains(&retry_after_ms),
                    "v{version} retry-after hint {retry_after_ms} ms"
                );
            }
            other => panic!("v{version} expected Overloaded, got {other:?}"),
        }
        assert!(is_transient(&NamingError::overloaded(1)));
    }
    server.shutdown();
}

#[test]
fn scatter_degrades_to_flagged_partial_when_a_leg_is_shed() {
    let env = Environment::new();
    let map = ShardMap::new(vec![
        ShardInfo::new("a", "inproc-a"),
        ShardInfo::new("b", "inproc-b"),
    ])
    .expect("valid map");

    // Shard a answers; shard b sheds everything.
    let store = MemContext::new();
    store.bind_str("alpha", "1").unwrap();
    store.bind_str("beta", "2").unwrap();
    let healthy = Arc::new(ContextBackend::new(Arc::new(store))) as Arc<dyn ProviderBackend>;
    let shedding = Arc::new(SheddingBackend { retry_after_ms: 37 }) as Arc<dyn ProviderBackend>;
    let router = ShardRouter::new(map.clone(), vec![healthy, shedding], &env).expect("router");

    let listed = router
        .execute(&NamingOp::list(CompositeName::empty()))
        .expect("partial merge beats total failure");
    let names: Vec<String> = match listed {
        OpOutcome::Names(pairs) => pairs.into_iter().map(|p| p.name).collect(),
        other => panic!("expected names, got {other:?}"),
    };
    assert_eq!(names, vec!["alpha".to_string(), "beta".to_string()]);
    assert_eq!(router.partial_scatters(), 1, "partial was flagged");

    // Every leg shed: the scatter propagates Overloaded with the most
    // pessimistic hint, not some arbitrary first error.
    let all_shed = ShardRouter::new(
        map,
        vec![
            Arc::new(SheddingBackend { retry_after_ms: 37 }) as Arc<dyn ProviderBackend>,
            Arc::new(SheddingBackend { retry_after_ms: 99 }) as Arc<dyn ProviderBackend>,
        ],
        &env,
    )
    .expect("router");
    match all_shed.execute(&NamingOp::list(CompositeName::empty())) {
        Err(NamingError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 99),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(
        all_shed.partial_scatters(),
        0,
        "total failure is no partial"
    );
}

#[test]
fn retry_honors_hint_but_gives_up_inside_deadline_budget() {
    let backend = Arc::new(SheddingBackend {
        retry_after_ms: 500,
    });
    let op = NamingOp::lookup("svc".into());

    // Budget shorter than the server's hint: fail now, sleep never.
    let slept = Arc::new(AtomicU64::new(0));
    let s = slept.clone();
    let retry = Arc::new(
        RetryInterceptor::with_sleeper(
            4,
            Duration::from_millis(5),
            Box::new(move |d| {
                s.fetch_add(d.as_millis() as u64, Ordering::Relaxed);
            }),
        )
        .with_deadline_budget(100),
    );
    let p = ProviderPipeline::with_stack(backend.clone(), vec![retry.clone()]);
    let err = p.execute(&op).expect_err("backend always sheds");
    assert!(err.is_overloaded());
    assert_eq!(retry.retries(), 0, "no retry can fit inside the budget");
    assert_eq!(slept.load(Ordering::Relaxed), 0, "gave up without sleeping");

    // Unbounded budget: the backoff honors the server's retry-after hint
    // (base 500 ms, plus up to 25% jitter) instead of the 5 ms schedule.
    let slept = Arc::new(AtomicU64::new(0));
    let s = slept.clone();
    let retry = Arc::new(RetryInterceptor::with_sleeper(
        2,
        Duration::from_millis(5),
        Box::new(move |d| {
            s.fetch_add(d.as_millis() as u64, Ordering::Relaxed);
        }),
    ));
    let p = ProviderPipeline::with_stack(backend, vec![retry.clone()]);
    p.execute(&op).expect_err("backend always sheds");
    assert_eq!(retry.retries(), 1);
    let total = slept.load(Ordering::Relaxed);
    assert!(
        (500..=625).contains(&total),
        "backoff follows the hint, got {total} ms"
    );
}

#[test]
fn cache_serves_stale_entries_while_the_backend_sheds() {
    /// Healthy until flipped, then sheds every op.
    struct FlippableBackend {
        overloaded: AtomicBool,
    }
    impl ProviderBackend for FlippableBackend {
        fn execute(&self, op: &NamingOp) -> Result<OpOutcome> {
            if self.overloaded.load(Ordering::Relaxed) {
                return Err(NamingError::overloaded(42));
            }
            match op.kind {
                OpKind::Lookup => Ok(OpOutcome::Value(BoundValue::str("fresh"))),
                other => Err(NamingError::unsupported(format!("{other:?}"))),
            }
        }
        fn provider_id(&self) -> String {
            "flippable".to_string()
        }
        fn compound_syntax(&self) -> CompoundSyntax {
            CompoundSyntax::path()
        }
    }

    let backend = Arc::new(FlippableBackend {
        overloaded: AtomicBool::new(false),
    });
    let clock = ManualClock::new();
    let cache = Arc::new(CacheInterceptor::with_clock(100, clock.clone()).with_serve_stale_ms(500));
    let p = ProviderPipeline::with_stack(backend.clone(), vec![cache.clone()]);
    let op = NamingOp::lookup("svc".into());

    let expect_fresh = |context: &str| match p.execute(&op) {
        Ok(OpOutcome::Value(v)) => assert_eq!(v.as_str(), Some("fresh"), "{context}"),
        other => panic!("{context}: got {other:?}"),
    };

    // Prime the cache, then let the entry expire and the backend melt.
    expect_fresh("primed lookup");
    clock.advance(150);
    backend.overloaded.store(true, Ordering::Relaxed);

    // Expired 50 ms ago, grace is 500 ms: the stale value beats the error.
    expect_fresh("stale entry served through overload");
    assert_eq!(cache.stale_serves(), 1);

    // Past the grace window the rejection propagates.
    clock.set(700);
    let err = p.execute(&op).expect_err("grace exhausted");
    assert!(err.is_overloaded());
    assert_eq!(cache.stale_serves(), 1, "no stale serve past the grace");
}
