//! End-to-end sharded-namespace acceptance: N HDNS shards behind TCP
//! servers, a rendezvous-hash router in front, one flat namespace out.
//! Covers partition correctness over the wire, the fanout-invariant
//! deterministic merge (for both the shard scatter and federated search),
//! cross-shard rename, and the linked trace spanning client pipeline →
//! router → per-shard client/server spans.

use rndi::core::env::keys;
use rndi::core::prelude::*;
use rndi::net::NetClient;
use rndi::serve;

#[test]
fn router_partitions_the_namespace_across_shards() {
    let cluster = serve::serve_sharded_hdns(3, &Environment::new()).unwrap();
    let ctx = cluster.connect(&Environment::new()).unwrap();

    let names: Vec<String> = (0..24).map(|i| format!("part-entry-{i:02}")).collect();
    for n in &names {
        ctx.bind_str(n, format!("v-{n}").as_str()).unwrap();
    }
    for n in &names {
        assert_eq!(
            ctx.lookup_str(n).unwrap().as_str(),
            Some(format!("v-{n}").as_str())
        );
    }

    // A root list scatters to every shard and merges in name order.
    let listed: Vec<String> = ctx
        .list(&CompositeName::empty())
        .unwrap()
        .into_iter()
        .map(|p| p.name)
        .collect();
    assert_eq!(listed, names, "merged list is complete and name-ordered");

    // Dialing each shard directly shows it holds *exactly* the keys
    // rendezvous hashing assigns it — the namespace really partitioned.
    let mut occupied = 0;
    for (i, shard) in cluster.map().shards().iter().enumerate() {
        let direct = NetClient::connect(shard.endpoint().to_string(), &Environment::new()).unwrap();
        let got: Vec<String> = direct
            .list(&CompositeName::empty())
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        let want: Vec<String> = names
            .iter()
            .filter(|n| cluster.map().owner_index(n) == i)
            .cloned()
            .collect();
        assert_eq!(got, want, "shard {} holds exactly its keys", shard.id());
        occupied += usize::from(!got.is_empty());
    }
    assert!(occupied >= 2, "24 keys spread over more than one shard");

    cluster.shutdown();
}

#[test]
fn scatter_and_federated_merges_are_fanout_invariant() {
    // --- ShardRouter half: scatter over the wire, fanout 1 vs 8 ---
    let cluster = serve::serve_sharded_hdns(4, &Environment::new()).unwrap();
    let seed = cluster.connect(&Environment::new()).unwrap();
    for i in 0..16 {
        seed.bind_with_attrs(
            &format!("det-svc-{i:02}").as_str().into(),
            BoundValue::str(format!("endpoint-{i}")),
            Attributes::new()
                .with("tier", if i % 2 == 0 { "gold" } else { "bronze" })
                .with("slot", i.to_string()),
        )
        .unwrap();
    }

    let filter = Filter::parse("(tier=gold)").unwrap();
    let controls = SearchControls::default();
    let run = |fanout: &str| {
        let ctx = cluster
            .connect(&Environment::new().with(keys::SHARD_FANOUT, fanout))
            .unwrap();
        (
            format!("{:?}", ctx.list(&CompositeName::empty()).unwrap()),
            format!("{:?}", ctx.list_bindings(&CompositeName::empty()).unwrap()),
            format!(
                "{:?}",
                ctx.search(&CompositeName::empty(), &filter, &controls)
                    .unwrap()
            ),
        )
    };
    assert_eq!(
        run("1"),
        run("8"),
        "scatter merges are byte-identical across fan-out widths"
    );
    cluster.shutdown();

    // --- FederatedContext half: subtree search across mounts, 1 vs 8 ---
    let root = MemContext::new();
    for mount in ["det-mount-a", "det-mount-b", "det-mount-c"] {
        let far = MemContext::new();
        for i in 0..4 {
            far.bind_with_attrs(
                &format!("{mount}-hit-{i}").as_str().into(),
                BoundValue::str("x"),
                Attributes::new().with("k", "v"),
            )
            .unwrap();
        }
        root.bind(&mount.into(), BoundValue::Context(std::sync::Arc::new(far)))
            .unwrap();
    }
    let controls = SearchControls {
        scope: SearchScope::Subtree,
        ..Default::default()
    };
    let filter = Filter::parse("(k=v)").unwrap();
    let fed_run = |fanout: &str| {
        let fed = FederatedContext::new(
            std::sync::Arc::new(root.clone()),
            std::sync::Arc::new(ProviderRegistry::new()),
            Environment::new().with(keys::FEDERATION_FANOUT, fanout),
        );
        format!(
            "{:?}",
            DirContext::search(fed.as_ref(), &CompositeName::empty(), &filter, &controls).unwrap()
        )
    };
    assert_eq!(
        fed_run("1"),
        fed_run("8"),
        "federated merges are byte-identical across fan-out widths"
    );
}

#[test]
fn rename_moves_entries_between_shards() {
    let cluster = serve::serve_sharded_hdns(4, &Environment::new()).unwrap();
    let map = cluster.map().clone();

    // Pick a source/destination pair owned by different shards, and one
    // owned by the same shard, purely from the hash.
    let candidates: Vec<String> = (0..64).map(|i| format!("mv-{i:02}")).collect();
    let src = candidates[0].clone();
    let cross = candidates
        .iter()
        .find(|c| map.owner_index(c) != map.owner_index(&src))
        .expect("64 candidates hit more than one shard")
        .clone();
    let same = candidates
        .iter()
        .skip(1)
        .find(|c| map.owner_index(c) == map.owner_index(&src))
        .expect("64 candidates land two on one shard")
        .clone();

    let ctx = cluster.connect(&Environment::new()).unwrap();

    // Cross-shard: lookup → bind(dst) → unbind(src) through the router.
    ctx.bind_str(&src, "moved-payload").unwrap();
    ctx.rename(&src.as_str().into(), &cross.as_str().into())
        .unwrap();
    assert_eq!(
        ctx.lookup_str(&cross).unwrap().as_str(),
        Some("moved-payload")
    );
    assert!(
        matches!(ctx.lookup_str(&src), Err(NamingError::NameNotFound { .. })),
        "source gone after the move"
    );

    // Same-shard renames stay a single point op on the owner.
    ctx.rename(&cross.as_str().into(), &same.as_str().into())
        .unwrap();
    assert_eq!(
        ctx.lookup_str(&same).unwrap().as_str(),
        Some("moved-payload")
    );

    cluster.shutdown();
}

#[test]
fn scatter_trace_links_router_clients_and_shard_servers() {
    let cluster = serve::serve_sharded_hdns(2, &Environment::new()).unwrap();
    let ctx = cluster.connect(&Environment::new()).unwrap();
    ctx.bind_str("trace-seed", "x").unwrap();
    ctx.list_bindings(&CompositeName::empty()).unwrap();

    // The ring is process-global and other tests in this binary also
    // scatter list_bindings through *their* routers, so anchor on the
    // router label — it embeds the shard count, and only this test runs
    // a 2-shard cluster.
    let ring = rndi::obs::trace::ring();
    let anchor = ring
        .snapshot()
        .into_iter()
        .rev()
        .find(|s| {
            s.layer == "router"
                && s.op == "list_bindings"
                && s.provider.as_ref() == "shard-router(2)"
        })
        .expect("router span recorded");
    let trace = ring.trace(anchor.trace_id);

    // One root — the client-side pipeline span — with the router span
    // linked beneath it through the interceptor chain (pipeline →
    // backend obs → router).
    let roots: Vec<_> = trace.iter().filter(|s| s.parent_span == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].layer, "pipeline");
    let mut cursor = anchor.parent_span;
    let mut reaches_root = false;
    while let Some(span) = trace.iter().find(|s| s.span_id == cursor) {
        if span.span_id == roots[0].span_id {
            reaches_root = true;
            break;
        }
        cursor = span.parent_span;
    }
    assert!(
        reaches_root,
        "router span's ancestor chain reaches the pipeline root"
    );

    // One client leg per shard hangs off the router span, and each leg
    // has a server-side span linked under it — the cross-wire chain.
    let clients: Vec<_> = trace
        .iter()
        .filter(|s| s.layer == "client" && s.parent_span == anchor.span_id)
        .collect();
    assert_eq!(clients.len(), 2, "one client span per shard leg");
    for client in clients {
        assert!(
            trace
                .iter()
                .any(|s| s.layer == "server" && s.parent_span == client.span_id),
            "server span linked under the {} leg",
            client.provider
        );
    }

    cluster.shutdown();
}
