//! Lease-emulation integration tests (paper §5.1, "Handling leases"):
//! the JNDI API has no expiration concept, so the Jini provider renews
//! leases of everything it bound — until unbind or process exit — while
//! foreign registrations it did not create still expire naturally.

use std::sync::Arc;

use rndi::core::context::ContextExt;
use rndi::core::prelude::*;
use rndi::providers::common::RlusClock;
use rndi::providers::JiniProviderContext;
use rndi::rlus::{Entry, ManualClock, Registrar, ServiceItem, ServiceStub};

fn setup(
    lease_ms: u64,
) -> (
    Arc<ProviderPipeline<JiniProviderContext>>,
    Registrar,
    Arc<ManualClock>,
) {
    let clock = ManualClock::new();
    let registrar = Registrar::new(clock.clone(), u64::MAX / 4, 55);
    let env = Environment::new()
        .with(env_keys::JINI_STRICT_BIND, "false")
        .with(env_keys::LEASE_MS, lease_ms.to_string());
    let ctx = JiniProviderContext::new(
        registrar.clone(),
        Arc::new(RlusClock(clock.clone() as Arc<dyn rndi::rlus::Clock>)),
        env,
        "lease-it",
    );
    (ctx, registrar, clock)
}

#[test]
fn provider_keeps_many_bindings_alive_indefinitely() {
    let (ctx, registrar, clock) = setup(10_000);
    for i in 0..25 {
        ctx.bind_str(&format!("svc-{i}"), format!("v{i}")).unwrap();
    }
    assert_eq!(ctx.managed_leases(), 25);

    // 10 lease periods with regular renewal polling: nothing expires.
    for t in (2_000..=100_000).step_by(2_000) {
        clock.set(t);
        let failed = ctx.poll_leases();
        assert!(failed.is_empty(), "renewals failed at t={t}: {failed:?}");
        registrar.sweep();
    }
    assert_eq!(registrar.item_count(), 25);
    for i in 0..25 {
        assert!(ctx.lookup_str(&format!("svc-{i}")).is_ok());
    }
}

#[test]
fn foreign_registrations_still_expire() {
    let (ctx, registrar, clock) = setup(10_000);
    // A non-RNDI service registers directly with a short lease.
    registrar.register(
        ServiceItem::new(ServiceStub::new(vec!["Legacy".into()], vec![]))
            .with_entry(Entry::name("legacy-svc")),
        5_000,
    );
    ctx.bind_str("managed", "v").unwrap();

    clock.set(8_000);
    ctx.poll_leases();
    registrar.sweep();

    assert_eq!(registrar.item_count(), 1, "legacy expired, managed renewed");
    assert!(ctx.lookup_str("managed").is_ok());
}

#[test]
fn unbind_stops_renewal_half_of_lifecycle() {
    let (ctx, registrar, clock) = setup(10_000);
    ctx.bind_str("short-lived", "v").unwrap();
    ctx.unbind_str("short-lived").unwrap();
    assert_eq!(ctx.managed_leases(), 0, "lease dropped on unbind");
    assert_eq!(registrar.item_count(), 0);

    // Polling later renews nothing and fails nothing.
    clock.set(60_000);
    assert!(ctx.poll_leases().is_empty());
}

#[test]
fn process_exit_lets_everything_lapse() {
    let (ctx, registrar, clock) = setup(10_000);
    ctx.bind_str("ephemeral", "v").unwrap();
    // "until they are explicitly removed, or until the Java VM exits":
    // dropping the context = process exit; nobody renews.
    drop(ctx);
    clock.set(30_000);
    registrar.sweep();
    assert_eq!(registrar.item_count(), 0, "no renewer, no entry");
}

#[test]
fn renewal_failure_reported_after_external_removal() {
    let (ctx, registrar, clock) = setup(10_000);
    ctx.bind_str("contested", "v").unwrap();

    // Another client cancels it out from under us (re-registering with a
    // zero lease and sweeping — the expiry-emulation path).
    let env = Environment::new().with(env_keys::JINI_STRICT_BIND, "false");
    let other = JiniProviderContext::new(
        registrar.clone(),
        Arc::new(RlusClock(clock.clone() as Arc<dyn rndi::rlus::Clock>)),
        env,
        "other",
    );
    other.unbind_str("contested").unwrap();

    clock.set(6_000);
    let failed = ctx.poll_leases();
    assert_eq!(
        failed,
        vec!["contested".to_string()],
        "renewal failure surfaced"
    );
    assert_eq!(
        ctx.managed_leases(),
        0,
        "dead lease dropped from management"
    );
}
