//! HDNS fault-tolerance scenarios exercised through the provider layer:
//! the paper's §4.1 recovery guarantees observed from the client API.

use rndi::core::context::ContextExt;
use rndi::core::prelude::*;
use rndi::groupcast::{OrderingMode, StackConfig};
use rndi::hdns::HdnsRealm;
use rndi::providers::HdnsProviderContext;

fn realm(tag: &str, persist: bool) -> (HdnsRealm, Option<std::path::PathBuf>) {
    let dir = persist.then(|| {
        let d = std::env::temp_dir().join(format!("rndi-failover-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    });
    (
        HdnsRealm::new(tag, 3, StackConfig::default(), dir.clone(), 101),
        dir,
    )
}

#[test]
fn client_fails_over_to_surviving_replica() {
    let (realm, _) = realm("failover", false);
    let ctx0 = HdnsProviderContext::new(realm.clone(), 0, "t");
    let ctx1 = HdnsProviderContext::new(realm.clone(), 1, "t");

    ctx0.bind_str("service", "v").unwrap();
    realm.crash(0);

    // The paper's "nearest node" model: clients re-resolve to a live
    // replica and keep both reading and writing.
    assert_eq!(ctx1.lookup_str("service").unwrap().as_str(), Some("v"));
    ctx1.bind_str("after-crash", "w").unwrap();
    assert_eq!(ctx1.lookup_str("after-crash").unwrap().as_str(), Some("w"));
}

#[test]
fn restarted_replica_serves_missed_writes() {
    let (realm, _) = realm("rejoin", false);
    let ctx2 = HdnsProviderContext::new(realm.clone(), 2, "t");
    let ctx0 = HdnsProviderContext::new(realm.clone(), 0, "t");

    realm.crash(2);
    ctx0.bind_str("missed", "by-2").unwrap();
    realm.restart(2);

    assert_eq!(
        ctx2.lookup_str("missed").unwrap().as_str(),
        Some("by-2"),
        "state transfer brought the rejoiner current"
    );
}

#[test]
fn primary_partition_discards_minority_writes_via_provider() {
    let (realm, _) = realm("primary", false);
    let majority = HdnsProviderContext::new(realm.clone(), 0, "t");
    let minority = HdnsProviderContext::new(realm.clone(), 2, "t");

    realm.partition(&[&[0, 1], &[2]]);
    majority.bind_str("winner", "1").unwrap();
    minority.bind_str("loser", "2").unwrap();
    realm.heal();

    for ctx in [&majority, &minority] {
        assert_eq!(ctx.lookup_str("winner").unwrap().as_str(), Some("1"));
        assert!(ctx.lookup_str("loser").is_err(), "divergent write dropped");
    }
}

#[test]
fn conflicting_binds_across_a_partition_resolve_deterministically() {
    let (realm, _) = realm("conflict", false);
    let a = HdnsProviderContext::new(realm.clone(), 0, "t");
    let b = HdnsProviderContext::new(realm.clone(), 2, "t");

    realm.partition(&[&[0, 1], &[2]]);
    a.bind_str("same-key", "majority").unwrap();
    b.bind_str("same-key", "minority").unwrap();
    realm.heal();

    // PRIMARY_PARTITION: the majority's lineage wins everywhere.
    for (i, ctx) in [&a, &b].into_iter().enumerate() {
        assert_eq!(
            ctx.lookup_str("same-key").unwrap().as_str(),
            Some("majority"),
            "replica path {i}"
        );
    }
}

#[test]
fn full_shutdown_recovers_from_disk_snapshots() {
    let (r, dir) = realm("persist", true);
    let dir = dir.unwrap();
    {
        let ctx = HdnsProviderContext::new(r.clone(), 0, "t");
        ctx.bind_str("durable", "gold").unwrap();
        r.shutdown_replica(0);
        r.shutdown_replica(1);
        r.shutdown_replica(2);
    }
    drop(r);

    let revived = HdnsRealm::new("persist", 3, StackConfig::default(), Some(dir.clone()), 202);
    let ctx = HdnsProviderContext::new(revived, 1, "t");
    assert_eq!(ctx.lookup_str("durable").unwrap().as_str(), Some("gold"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bimodal_stack_survives_lossy_network() {
    let realm = HdnsRealm::new(
        "lossy",
        3,
        StackConfig {
            ordering: OrderingMode::Bimodal {
                loss: 0.25,
                fanout: 2,
            },
            ..Default::default()
        },
        None,
        77,
    );
    let ctx = HdnsProviderContext::new(realm.clone(), 0, "t");
    for i in 0..20 {
        ctx.rebind_str(&format!("k{i}"), format!("v{i}")).unwrap();
    }
    // Every replica converged despite 25% initial loss (gossip repaired).
    for node in 0..3 {
        for i in 0..20 {
            assert_eq!(
                realm
                    .lookup(node, &format!("k{i}"))
                    .map(|e| String::from_utf8_lossy(&e.value).to_string()),
                realm
                    .lookup(0, &format!("k{i}"))
                    .map(|e| String::from_utf8_lossy(&e.value).to_string()),
                "node {node} key k{i}"
            );
        }
    }
}

#[test]
fn events_report_remote_writes() {
    let (realm, _) = realm("events", false);
    let watcher = HdnsProviderContext::new(realm.clone(), 1, "t");
    let writer = HdnsProviderContext::new(realm, 0, "t");

    let listener = CollectingListener::new();
    watcher
        .add_listener(&CompositeName::empty(), listener.clone())
        .unwrap();

    writer.bind_str("announced", "v").unwrap();
    watcher.poll_events();
    let events = listener.drain();
    assert!(
        events
            .iter()
            .any(|e| e.event_type == EventType::ObjectAdded && e.name.to_string() == "announced"),
        "got {events:?}"
    );
}
