//! Property-based tests over the public API: parser round-trips, filter
//! dialect agreement, replicated-store convergence, and mutual-exclusion
//! safety under randomized schedules.

use proptest::prelude::*;

use rndi::core::prelude::*;

// ---------------------------------------------------------------- names --

fn component_strategy() -> impl Strategy<Value = String> {
    // Arbitrary printable components, including the characters that need
    // escaping ('/', '\\', quotes).
    proptest::string::string_regex("[ -~]{1,12}").expect("valid regex")
}

proptest! {
    #[test]
    fn composite_name_display_parse_roundtrip(
        components in proptest::collection::vec(component_strategy(), 1..6)
    ) {
        let name = CompositeName::from_components(components.clone());
        let printed = name.to_string();
        let reparsed = CompositeName::parse(&printed).expect("printed names reparse");
        prop_assert_eq!(reparsed.components(), &components[..]);
    }

    #[test]
    fn composite_name_prefix_suffix_partition(
        components in proptest::collection::vec(component_strategy(), 1..8),
        cut in 0usize..8
    ) {
        let name = CompositeName::from_components(components);
        let cut = cut.min(name.len());
        let rejoined = name.prefix(cut).join(&name.suffix(cut));
        prop_assert_eq!(rejoined, name);
    }
}

// -------------------------------------------------------------- filters --

fn attr_id() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z][a-zA-Z0-9]{0,6}").expect("valid regex")
}

fn attr_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 _.-]{1,10}").expect("valid regex")
}

/// A small random filter AST (depth-bounded).
fn filter_strategy() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        (attr_id(), attr_value()).prop_map(|(a, v)| Filter::Eq(a, v)),
        (attr_id(), attr_value()).prop_map(|(a, v)| Filter::Ge(a, v)),
        (attr_id(), attr_value()).prop_map(|(a, v)| Filter::Le(a, v)),
        (attr_id(), attr_value()).prop_map(|(a, v)| Filter::Approx(a, v)),
        attr_id().prop_map(Filter::Present),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

fn random_attrs() -> impl Strategy<Value = Attributes> {
    proptest::collection::vec((attr_id(), attr_value()), 0..6).prop_map(|pairs| {
        let mut out = Attributes::new();
        for (id, v) in pairs {
            out.add_value(&id, v);
        }
        out
    })
}

proptest! {
    #[test]
    fn filter_display_parse_roundtrip(f in filter_strategy()) {
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed).expect("printed filters reparse");
        prop_assert_eq!(reparsed, f);
    }

    #[test]
    fn filter_evaluation_stable_under_roundtrip(
        f in filter_strategy(),
        attrs in random_attrs()
    ) {
        let reparsed = Filter::parse(&f.to_string()).unwrap();
        prop_assert_eq!(f.matches(&attrs), reparsed.matches(&attrs));
    }

    #[test]
    fn not_is_involutive(f in filter_strategy(), attrs in random_attrs()) {
        let double_not = Filter::Not(Box::new(Filter::Not(Box::new(f.clone()))));
        prop_assert_eq!(f.matches(&attrs), double_not.matches(&attrs));
    }

    /// The core dialect and the LDAP server's independently written
    /// dialect must agree — otherwise provider-side filter translation
    /// silently changes query semantics.
    #[test]
    fn core_and_ldap_filter_dialects_agree(
        f in filter_strategy(),
        attrs in proptest::collection::vec((attr_id(), attr_value()), 0..6)
    ) {
        let core_attrs = {
            let mut out = Attributes::new();
            for (id, v) in &attrs {
                out.add_value(id, v.clone());
            }
            out
        };
        let ldap_entry = {
            let mut e = rndi::ldap::LdapEntry::new(rndi::ldap::Dn::root());
            for (id, v) in &attrs {
                e.add_value(id, v.clone());
            }
            e
        };
        let ldap_filter = rndi::ldap::LdapFilter::parse(&f.to_string())
            .expect("core-printed filters parse in the LDAP dialect");
        prop_assert_eq!(f.matches(&core_attrs), ldap_filter.matches(&ldap_entry));
    }
}

// ------------------------------------------------------ replicated store --

#[derive(Clone, Debug)]
enum StoreAction {
    Bind(String, Vec<u8>, bool),
    Unbind(String),
    CreateCtx(String),
    Rename(String, String),
}

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-c](/[a-c]){0,2}").expect("valid regex")
}

fn action_strategy() -> impl Strategy<Value = StoreAction> {
    prop_oneof![
        (
            path_strategy(),
            proptest::collection::vec(any::<u8>(), 0..4),
            any::<bool>()
        )
            .prop_map(|(p, v, o)| StoreAction::Bind(p, v, o)),
        path_strategy().prop_map(StoreAction::Unbind),
        path_strategy().prop_map(StoreAction::CreateCtx),
        (path_strategy(), path_strategy()).prop_map(|(a, b)| StoreAction::Rename(a, b)),
    ]
}

proptest! {
    /// Replica determinism: any op sequence applied to two fresh stores
    /// yields identical results and identical final state — the invariant
    /// HDNS's consistency rests on.
    #[test]
    fn hdns_store_is_deterministic(actions in proptest::collection::vec(action_strategy(), 0..40)) {
        use rndi::hdns::{HdnsEntry, HdnsStore, Op};
        let to_op = |a: &StoreAction| match a {
            StoreAction::Bind(p, v, o) => Op::Bind {
                path: p.clone(),
                entry: HdnsEntry::leaf(v.clone()),
                overwrite: *o,
            },
            StoreAction::Unbind(p) => Op::Unbind { path: p.clone() },
            StoreAction::CreateCtx(p) => Op::CreateContext { path: p.clone() },
            StoreAction::Rename(a, b) => Op::Rename { from: a.clone(), to: b.clone() },
        };
        let mut s1 = HdnsStore::new();
        let mut s2 = HdnsStore::new();
        for a in &actions {
            let op = to_op(a);
            prop_assert_eq!(s1.apply(&op), s2.apply(&op));
        }
        prop_assert_eq!(s1.snapshot(), s2.snapshot());
    }

    /// Structural invariant: after any op sequence, every entry's parent
    /// exists and is a context.
    #[test]
    fn hdns_store_hierarchy_invariant(actions in proptest::collection::vec(action_strategy(), 0..40)) {
        use rndi::hdns::{HdnsEntry, HdnsStore, Op};
        let mut store = HdnsStore::new();
        for a in &actions {
            let op = match a {
                StoreAction::Bind(p, v, o) => Op::Bind {
                    path: p.clone(),
                    entry: HdnsEntry::leaf(v.clone()),
                    overwrite: *o,
                },
                StoreAction::Unbind(p) => Op::Unbind { path: p.clone() },
                StoreAction::CreateCtx(p) => Op::CreateContext { path: p.clone() },
                StoreAction::Rename(x, y) => Op::Rename { from: x.clone(), to: y.clone() },
            };
            let _ = store.apply(&op);
        }
        for (path, _) in store.iter() {
            if let Some((parent, _)) = path.rsplit_once('/') {
                let p = store.get(parent);
                prop_assert!(p.is_some(), "orphan {path}");
                prop_assert!(p.unwrap().is_context, "parent of {path} not a context");
            }
        }
    }

    /// Snapshots are faithful: restore(snapshot(s)) == s.
    #[test]
    fn hdns_snapshot_roundtrip(actions in proptest::collection::vec(action_strategy(), 0..30)) {
        use rndi::hdns::{HdnsEntry, HdnsStore, Op};
        let mut store = HdnsStore::new();
        for a in &actions {
            let _ = store.apply(&match a {
                StoreAction::Bind(p, v, o) => Op::Bind {
                    path: p.clone(),
                    entry: HdnsEntry::leaf(v.clone()),
                    overwrite: *o,
                },
                StoreAction::Unbind(p) => Op::Unbind { path: p.clone() },
                StoreAction::CreateCtx(p) => Op::CreateContext { path: p.clone() },
                StoreAction::Rename(x, y) => Op::Rename { from: x.clone(), to: y.clone() },
            });
        }
        let restored = HdnsStore::restore(&store.snapshot()).unwrap();
        prop_assert_eq!(restored.snapshot(), store.snapshot());
    }
}

// ----------------------------------------------------------------- DNs --

proptest! {
    #[test]
    fn dn_display_parse_roundtrip(
        // Values avoid leading/trailing whitespace: this LDAP dialect
        // trims RDN boundaries on parse (whitespace-insensitive DNs).
        rdns in proptest::collection::vec(
            ("[a-z]{1,4}", "[a-zA-Z0-9]([a-zA-Z0-9 ,=\\\\]{0,6}[a-zA-Z0-9])?"),
            1..5
        )
    ) {
        use rndi::ldap::{Dn, Rdn};
        let dn = Dn::from_rdns(rdns.into_iter().map(|(a, v)| Rdn::new(a, v)).collect());
        let printed = dn.to_string();
        let reparsed = Dn::parse(&printed).expect("printed DNs reparse");
        prop_assert_eq!(reparsed.normalized(), dn.normalized());
    }

    #[test]
    fn dns_name_roundtrip(labels in proptest::collection::vec("[a-z0-9]{1,8}", 1..5)) {
        use rndi::dns::DnsName;
        let name = DnsName::from_labels(labels.clone());
        let reparsed = DnsName::parse(&name.to_string()).unwrap();
        prop_assert_eq!(reparsed, name);
    }
}

// --------------------------------------------------- mem-context model --

proptest! {
    /// MemContext agrees with a flat model map for single-level names.
    #[test]
    fn mem_context_matches_model(
        ops in proptest::collection::vec(
            ("[a-e]", proptest::option::of("[a-z]{1,5}")),
            0..40
        )
    ) {
        use std::collections::HashMap;
        use rndi::core::context::ContextExt;
        let ctx = MemContext::new();
        let mut model: HashMap<String, String> = HashMap::new();
        for (key, value) in ops {
            match value {
                Some(v) => {
                    let _ = ctx.rebind_str(&key, v.as_str());
                    model.insert(key, v);
                }
                None => {
                    let _ = ctx.unbind_str(&key);
                    model.remove(&key);
                }
            }
        }
        for (k, v) in &model {
            let got = ctx.lookup_str(k).unwrap();
            prop_assert_eq!(got.as_str(), Some(v.as_str()));
        }
        let listed = ctx.list_str("").unwrap();
        prop_assert_eq!(listed.len(), model.len());
    }
}
