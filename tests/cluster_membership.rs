//! Chaos end-to-end for the cluster membership plane (crates/cluster):
//! real `ClusterNode`s on loopback TCP — gossip, phi-accrual failure
//! detection, quarantine, view changes, and HDNS replication, with the
//! failures injected for real (killed servers, blocked endpoints).

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use hdns::{HdnsEntry, Op, OpOutcome};
use rndi::serve::{serve_cluster_hdns, HdnsCluster};
use rndi_cluster::{ClusterConfig, ClusterNode};
use rndi_core::env::{keys, Environment};
use rndi_net::proto::MemberState;

/// The scenarios run one at a time: each boots a full TCP cluster with a
/// millisecond-scale failure detector, and several clusters contending
/// for CPU make each other's heartbeats late enough to read as death.
fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Fast-failure-detector environment: 10ms gossip rounds put the phi
/// suspect bound around 180ms and the dead bound around 370ms, and a
/// 400ms quarantine keeps restart tests quick.
fn chaos_env() -> Environment {
    Environment::new()
        .with(keys::CLUSTER_GOSSIP_INTERVAL_MS, "10")
        .with(keys::CLUSTER_PHI_THRESHOLD, "8")
        .with(keys::CLUSTER_QUARANTINE_MS, "400")
}

/// Poll `cond` until it holds or `budget` elapses; panics with `what` on
/// timeout. Chaos tests assert convergence, never exact timing.
fn wait_for(budget: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + budget;
    loop {
        if cond() {
            return;
        }
        if Instant::now() >= deadline {
            panic!("timed out waiting for {what}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn view_members(node: &ClusterNode) -> Vec<String> {
    node.view().map(|v| v.members).unwrap_or_default()
}

fn converged(cluster: &HdnsCluster, n: usize) -> bool {
    cluster.nodes().iter().all(|node| {
        view_members(node).len() == n
            && node.members().iter().all(|m| m.state == MemberState::Alive)
            && node.members().len() == n
    })
}

fn bind_ok(node: &ClusterNode, path: &str, value: &[u8]) -> bool {
    matches!(
        node.write_sync(Op::Bind {
            path: path.to_string(),
            entry: HdnsEntry::leaf(value.to_vec()),
            overwrite: true,
        }),
        OpOutcome::Done(Ok(()))
    )
}

fn mkdir_ok(node: &ClusterNode, path: &str) -> bool {
    matches!(
        node.write_sync(Op::CreateContext {
            path: path.to_string(),
        }),
        OpOutcome::Done(Ok(()))
    )
}

#[test]
fn five_nodes_boot_from_one_seed_and_converge() {
    let _gate = exclusive();
    let env = chaos_env();
    let cluster = serve_cluster_hdns(5, "hdns-e2e", &env).expect("boot");

    wait_for(Duration::from_secs(10), "5-node convergence", || {
        converged(&cluster, 5)
    });

    // Every node agrees on the same view, coordinated by the seed.
    let reference = view_members(cluster.node(0));
    assert_eq!(reference[0], "node-0", "seed leads the lineage");
    for node in cluster.nodes() {
        assert_eq!(view_members(node), reference);
        assert!(
            node.writes_allowed(),
            "{} should accept writes",
            node.name()
        );
    }

    // A write through any replica becomes visible on every replica
    // (the context creation replicates too).
    assert!(mkdir_ok(cluster.node(1), "services"));
    assert!(bind_ok(cluster.node(3), "services/db", b"db:5432"));
    wait_for(Duration::from_secs(5), "replicated bind", || {
        cluster.nodes().iter().all(|n| {
            n.lookup("services/db")
                .is_some_and(|e| e.value == b"db:5432")
        })
    });

    cluster.shutdown();
}

#[test]
fn killed_node_is_suspected_then_excised_while_writes_continue() {
    let _gate = exclusive();
    let env = chaos_env();
    let mut cluster = serve_cluster_hdns(4, "hdns-kill", &env).expect("boot");
    wait_for(Duration::from_secs(10), "4-node convergence", || {
        converged(&cluster, 4)
    });

    // A write burst straddles the crash: writes before, during, and
    // after the kill of a non-coordinator replica.
    assert!(mkdir_ok(cluster.node(0), "burst"));
    for i in 0..5 {
        assert!(bind_ok(cluster.node(0), &format!("burst/pre-{i}"), b"v"));
    }
    let victim = cluster.take(3);
    assert_eq!(victim.name(), "node-3");
    victim.kill(); // sockets torn down, no goodbye

    // Phi accrues: the survivors demote node-3 (Suspect on the way to
    // Dead — at 10ms gossip the whole slide takes well under a second),
    // and the view shrinks to the 3 survivors.
    wait_for(Duration::from_secs(10), "node-3 declared dead", || {
        cluster.nodes().iter().all(|n| {
            n.members()
                .iter()
                .any(|m| m.name == "node-3" && m.state >= MemberState::Dead)
        })
    });
    wait_for(Duration::from_secs(10), "view excises node-3", || {
        cluster
            .nodes()
            .iter()
            .all(|n| view_members(n) == vec!["node-0", "node-1", "node-2"])
    });

    // 3 of 4 known members is still a quorum: writes keep flowing.
    assert!(bind_ok(cluster.node(1), "burst/post", b"v"));
    wait_for(Duration::from_secs(5), "post-kill write replicates", || {
        cluster
            .nodes()
            .iter()
            .all(|n| n.lookup("burst/post").is_some())
    });
    // Nothing acknowledged before the crash was lost.
    for i in 0..5 {
        for n in cluster.nodes() {
            assert!(
                n.lookup(&format!("burst/pre-{i}")).is_some(),
                "acked pre-kill write burst/pre-{i} lost on {}",
                n.name()
            );
        }
    }

    cluster.shutdown();
}

#[test]
fn restarted_node_rejoins_with_a_bumped_incarnation() {
    let _gate = exclusive();
    let env = chaos_env();
    let mut cluster = serve_cluster_hdns(3, "hdns-restart", &env).expect("boot");
    wait_for(Duration::from_secs(10), "3-node convergence", || {
        converged(&cluster, 3)
    });
    assert!(mkdir_ok(cluster.node(0), "persist"));
    assert!(bind_ok(cluster.node(0), "persist/me", b"survives"));

    let victim = cluster.take(2);
    victim.kill();
    wait_for(Duration::from_secs(10), "node-2 declared dead", || {
        cluster.nodes().iter().all(|n| {
            n.members()
                .iter()
                .any(|m| m.name == "node-2" && m.state >= MemberState::Dead)
        })
    });

    // Restart under the same name (fresh port): the first gossip
    // exchange teaches it the cluster holds it dead, it refutes with a
    // bumped incarnation, and quarantine admits it once the 400ms
    // cooldown has served.
    let seeded = chaos_env().with(keys::CLUSTER_SEED, cluster.node(0).endpoint());
    let reborn =
        ClusterNode::start(ClusterConfig::from_env("node-2", "hdns-restart", &seeded).unwrap())
            .expect("restart");
    cluster.push(reborn);

    wait_for(Duration::from_secs(15), "node-2 re-admitted", || {
        converged(&cluster, 3)
    });
    let reborn = cluster.node(2);
    assert!(
        reborn.incarnation() > 1,
        "rejoin must carry a bumped incarnation, got {}",
        reborn.incarnation()
    );
    // State transfer on the re-admitting view change restores the data.
    wait_for(Duration::from_secs(5), "state transfer to node-2", || {
        cluster
            .node(2)
            .lookup("persist/me")
            .is_some_and(|e| e.value == b"survives")
    });

    cluster.shutdown();
}

#[test]
fn partition_keeps_one_primary_and_loses_no_acknowledged_write() {
    let _gate = exclusive();
    let env = chaos_env();
    let cluster = serve_cluster_hdns(5, "hdns-split", &env).expect("boot");
    wait_for(Duration::from_secs(10), "5-node convergence", || {
        converged(&cluster, 5)
    });
    assert!(mkdir_ok(cluster.node(0), "split"));
    assert!(bind_ok(cluster.node(0), "split/before", b"v"));
    wait_for(Duration::from_secs(5), "pre-split write replicates", || {
        cluster
            .nodes()
            .iter()
            .all(|n| n.lookup("split/before").is_some())
    });

    // Partition the seed-side minority {0,1} from the majority {2,3,4}
    // by symmetric endpoint blocks — the harder direction: the old
    // coordinator lands in the minority.
    let endpoints: Vec<String> = cluster
        .nodes()
        .iter()
        .map(|n| n.endpoint().to_string())
        .collect();
    let minority = &endpoints[..2];
    let majority = &endpoints[2..];
    for i in 0..2 {
        cluster.node(i).block_endpoints(majority);
    }
    for i in 2..5 {
        cluster.node(i).block_endpoints(minority);
    }

    // The majority elects the senior survivor (node-2) and keeps
    // writing; the minority freezes on its stale view and refuses.
    wait_for(
        Duration::from_secs(15),
        "majority forms its own view",
        || (2..5).all(|i| view_members(cluster.node(i)) == vec!["node-2", "node-3", "node-4"]),
    );
    wait_for(Duration::from_secs(10), "minority refuses writes", || {
        !cluster.node(0).writes_allowed() && !cluster.node(1).writes_allowed()
    });
    assert!(
        !bind_ok(cluster.node(0), "split/minority", b"must-not-ack"),
        "a minority write must not be acknowledged"
    );
    assert!(bind_ok(cluster.node(2), "split/majority", b"acked"));

    // Heal. Refutation bumps + the quarantine cooldown re-admit both
    // sides into one lineage again; the majority's history wins.
    for n in cluster.nodes() {
        n.clear_blocked();
    }
    wait_for(Duration::from_secs(20), "post-heal convergence", || {
        converged(&cluster, 5)
    });
    let reference = view_members(cluster.node(0));
    assert_eq!(
        reference[0], "node-2",
        "the healed lineage descends from the majority's view"
    );
    for n in cluster.nodes() {
        assert_eq!(view_members(n), reference);
    }

    // No acknowledged write was lost, on either side of the split...
    wait_for(
        Duration::from_secs(10),
        "acked writes on every node",
        || {
            cluster
                .nodes()
                .iter()
                .all(|n| n.lookup("split/before").is_some() && n.lookup("split/majority").is_some())
        },
    );
    // ...and the refused minority write never materialised.
    for n in cluster.nodes() {
        assert!(
            n.lookup("split/minority").is_none(),
            "unacknowledged minority write leaked into {}",
            n.name()
        );
    }

    cluster.shutdown();
}
