#!/usr/bin/env bash
# Workspace verification: build, tests, formatting, lints.
# Everything runs offline — all dependencies are vendored under vendor/.
# fmt/clippy run on the product crates only: the vendored stand-ins keep
# their upstream-derived style and are exempt from local lint policy.
set -euo pipefail

cd "$(dirname "$0")/.."

PRODUCT_CRATES=(
  rndi rndi-core rndi-obs rndi-net rndi-shard rndi-cluster simnet groupcast
  rlus hdns minidns dirserv rndi-providers rndi-bench
)
pkg_flags=()
for crate in "${PRODUCT_CRATES[@]}"; do
  pkg_flags+=(-p "$crate")
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check "${pkg_flags[@]}"

echo "==> cargo clippy -D warnings"
cargo clippy "${pkg_flags[@]}" --all-targets -- -D warnings

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> net smoke: mixed-version interop + concurrency bench builds"
cargo test -q -p rndi-net --test interop
cargo bench -p rndi-bench --bench net_concurrency --no-run

echo "==> shard smoke: rendezvous props + sharded e2e + example + bench builds"
cargo test -q -p rndi-shard
cargo test -q --test sharded_namespace
cargo bench -p rndi-bench --bench shard_scale --no-run
shard_out="$(cargo run -q --example sharded_namespace)"
grep -q "sharded_namespace OK" <<<"$shard_out"

echo "==> overload smoke: admission/shedding e2e + goodput bench builds"
cargo test -q --test overload_resilience
cargo bench -p rndi-bench --bench overload_goodput --no-run

echo "==> obs cluster smoke: merge props + scrape/flight e2e + example + bench builds"
cargo test -q -p rndi-obs --test merge_props
cargo test -q --test obs_cluster
cargo bench -p rndi-bench --bench obs_overhead --no-run
top_out="$(cargo run -q --example cluster_top)"
grep -q 'instance="cluster"' <<<"$top_out"
grep -q 'instance="shard-0"' <<<"$top_out"
grep -q "cluster_top OK"     <<<"$top_out"

echo "==> cluster smoke: membership props + chaos e2e + example"
cargo test -q -p rndi-cluster
cargo test -q --test cluster_membership
member_out="$(cargo run -q --example cluster_membership)"
grep -q "rndi_cluster_members"   <<<"$member_out"
grep -q "cluster_membership OK"  <<<"$member_out"

echo "==> obs smoke: fig8_federation --obs-dump emits the exposition"
fig8_out="$(RNDI_BENCH_QUICK=1 RNDI_OBS_DUMP=1 cargo bench -p rndi-bench --bench fig8_federation 2>/dev/null)"
grep -q "obs dump: metrics exposition" <<<"$fig8_out"
grep -q "rndi_ops_total"               <<<"$fig8_out"
grep -q "rndi_op_duration_ns_bucket"   <<<"$fig8_out"
grep -q "slowest traces"               <<<"$fig8_out"

echo "verify: OK"
