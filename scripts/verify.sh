#!/usr/bin/env bash
# Workspace verification: build, tests, formatting, lints.
# Everything runs offline — all dependencies are vendored under vendor/.
# fmt/clippy run on the product crates only: the vendored stand-ins keep
# their upstream-derived style and are exempt from local lint policy.
set -euo pipefail

cd "$(dirname "$0")/.."

PRODUCT_CRATES=(
  rndi rndi-core simnet groupcast rlus hdns minidns dirserv
  rndi-providers rndi-bench
)
pkg_flags=()
for crate in "${PRODUCT_CRATES[@]}"; do
  pkg_flags+=(-p "$crate")
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check "${pkg_flags[@]}"

echo "==> cargo clippy -D warnings"
cargo clippy "${pkg_flags[@]}" --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "verify: OK"
